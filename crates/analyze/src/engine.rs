//! The fixed-point analysis engine.
//!
//! One [`analyze_design`] run performs three rounds:
//!
//! 1. a worklist fixed point over every signal-flow graph with control
//!    signals assumed in `[0, 1]`,
//! 2. an FSM pass computing the interval each control signal can hold
//!    (per-state data-path evaluation joined over all reachable states,
//!    with `'above`/guard facts refining quantity reads on state entry),
//! 3. a second graph fixed point using the refined control intervals,
//!    so switches and muxes gated by proven-constant controls sharpen.
//!
//! The graph solver is a classic worklist iteration: blocks start at
//! bottom, value sources (inputs, constants, integrators) seed the
//! queue, and a changed block re-queues its fanout. Stateful blocks
//! widen (with thresholds drawn from the annotations) after a few
//! updates, so feedback loops converge instead of climbing forever; a
//! narrowing sweep afterwards recovers precision clipped by limiters.
//! Every cycle in a valid graph passes through a stateful block
//! ([`vase_vhif::SignalFlowGraph::validate`] rejects combinational
//! cycles), so widening there bounds the whole iteration; a global
//! iteration cap backstops malformed graphs and reports degradation
//! ([`Code::A205`]) instead of looping or bailing silently.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use vase_diag::{Code, Diagnostic};
use vase_vhif::{
    BlockId, BlockKind, DpBinaryOp, DpExpr, Event, Fsm, GraphBounds, SignalFlowGraph, StateId,
    Trigger, VhifDesign,
};

use crate::interval::Interval;
use crate::AnalysisContext;

/// Result of analyzing one design.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Proven finite per-block bounds, one entry per graph.
    pub bounds: Vec<GraphBounds>,
    /// Range verdicts (`A200`/`A201`/`A203`/`A204`) and degradation
    /// notes (`A205`), sorted for reporting.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether every graph's fixed point stabilized under the iteration
    /// cap (widening makes this the norm; `false` only for pathological
    /// graphs, which also carry an `A205` note).
    pub converged: bool,
    /// Total transfer-function evaluations across all rounds.
    pub iterations: usize,
    /// Whether a [`vase_budget::CancelToken`] stopped the worklist
    /// early. The bounds are then the sound all-top degradation (as on
    /// an iteration-cap hit) and `converged` is `false`.
    pub cancelled: bool,
}

/// How many times a stateful block may update before widening kicks in.
const WIDEN_AFTER: u32 = 2;

/// Per-graph iteration cap: generous (widening converges far earlier)
/// but proportional, so even adversarial graphs terminate quickly.
fn iteration_cap(len: usize) -> usize {
    len * 16 + 64
}

/// Analyze every graph of `design` under `ctx`. See the module docs for
/// the round structure.
pub fn analyze_design(design: &VhifDesign, ctx: &AnalysisContext) -> AnalysisResult {
    analyze_design_with_cancel(design, ctx, None)
}

/// [`analyze_design`] with a cooperative cancellation token, for
/// deadline-bounded service jobs. The worklists check the token every
/// [`vase_budget::CHECK_STRIDE`] pops (including the first); a tripped
/// token degrades the affected graphs exactly like an iteration-cap
/// hit (all-top environment, `converged = false`, an `A205` note) and
/// flags the result `cancelled`. A `None` token is bit-identical to
/// [`analyze_design`].
pub fn analyze_design_with_cancel(
    design: &VhifDesign,
    ctx: &AnalysisContext,
    token: Option<&vase_budget::CancelToken>,
) -> AnalysisResult {
    let thresholds = collect_thresholds(ctx);
    let mut result = AnalysisResult {
        bounds: Vec::new(),
        diagnostics: Vec::new(),
        converged: true,
        iterations: 0,
        cancelled: false,
    };

    // Round 1: graphs with unrefined controls.
    let mut envs: Vec<Vec<Interval>> = Vec::new();
    let controls: BTreeMap<String, Interval> = BTreeMap::new();
    for g in &design.graphs {
        let (env, _) = graph_fixpoint(g, ctx, &controls, &thresholds, token, &mut result);
        envs.push(env);
    }

    // Round 2: control-signal intervals from the FSMs, reading the
    // round-1 quantity bounds.
    let controls = fsm_signal_intervals(design, &envs);

    // Round 3: graphs again with the refined controls (skipped when the
    // FSMs constrain nothing beyond the default [0, 1]).
    let mut converged_all = true;
    for (gi, g) in design.graphs.iter().enumerate() {
        let (env, converged) = graph_fixpoint(g, ctx, &controls, &thresholds, token, &mut result);
        converged_all &= converged;
        if !converged {
            result.diagnostics.push(
                Diagnostic::new(
                    Code::A205,
                    format!(
                        "range analysis of graph `{}` hit its iteration cap before \
                         stabilizing; remaining intervals were widened to unbounded",
                        g.name()
                    ),
                )
                .with_note("verdicts for this graph are conservative (possibly incomplete)"),
            );
        }
        emit_verdicts(g, &env, ctx, &mut result.diagnostics);
        result.bounds.push(export_bounds(g, &env));
        envs[gi] = env;
    }
    result.converged = converged_all;

    if ctx.value_ranges.is_empty() && !design.graphs.is_empty() {
        result.diagnostics.push(
            Diagnostic::new(
                Code::A205,
                "no usable `range` annotations: external inputs are assumed unbounded, so \
                 only constant-driven values receive finite bounds",
            )
            .with_note("annotate port quantities with `range lo to hi` to enable verdicts"),
        );
    }

    vase_diag::sort(&mut result.diagnostics);
    result
}

/// Widening thresholds: the unit landmarks plus every annotation bound.
fn collect_thresholds(ctx: &AnalysisContext) -> Vec<f64> {
    let mut t = vec![-1.0, 0.0, 1.0];
    for &(lo, hi) in ctx.value_ranges.values() {
        t.push(lo);
        t.push(hi);
    }
    t.retain(|v| v.is_finite());
    t.sort_by(f64::total_cmp);
    t.dedup();
    t
}

/// Worklist fixed point over one graph. Returns the final environment
/// and whether it stabilized under the cap.
fn graph_fixpoint(
    g: &SignalFlowGraph,
    ctx: &AnalysisContext,
    controls: &BTreeMap<String, Interval>,
    thresholds: &[f64],
    token: Option<&vase_budget::CancelToken>,
    result: &mut AnalysisResult,
) -> (Vec<Interval>, bool) {
    let n = g.len();
    let mut env: Vec<Interval> = vec![Interval::Bottom; n];
    let mut queued = vec![true; n];
    let mut updates = vec![0u32; n];
    let mut work: VecDeque<BlockId> = (0..n).map(BlockId::from_index).collect();
    let cap = iteration_cap(n);
    let mut steps = 0usize;
    let mut converged = true;

    while let Some(id) = work.pop_front() {
        queued[id.index()] = false;
        let cancel_hit = (steps as u64).is_multiple_of(vase_budget::CHECK_STRIDE)
            && token.is_some_and(|t| t.is_cancelled());
        if cancel_hit {
            result.cancelled = true;
        }
        if steps >= cap || cancel_hit {
            // Degrade soundly: the in-flight updates never propagated,
            // so only the all-top environment is a safe post-fixpoint.
            // The narrowing sweep below recovers what it can from it.
            converged = false;
            env.fill(Interval::TOP);
            break;
        }
        steps += 1;
        let new = transfer(g, id, &env, ctx, controls);
        let old = env[id.index()];
        let next = if old == new {
            continue;
        } else if g.block(id).kind.is_stateful() && updates[id.index()] >= WIDEN_AFTER {
            old.widen(old.join(new), thresholds)
        } else {
            old.join(new)
        };
        if next == old {
            continue;
        }
        updates[id.index()] += 1;
        env[id.index()] = next;
        for (consumer, _) in g.fanout(id) {
            if !queued[consumer.index()] {
                queued[consumer.index()] = true;
                work.push_back(consumer);
            }
        }
    }

    // Narrowing: decreasing iterations from the post-fixpoint recover
    // precision the widening jumped over (e.g. a limiter's clamp band
    // inside a feedback loop). Each step applies the transfer function
    // and keeps the meet, which stays an over-approximation.
    for _ in 0..2 {
        for i in 0..n {
            let id = BlockId::from_index(i);
            steps += 1;
            let new = transfer(g, id, &env, ctx, controls);
            env[i] = env[i].meet(new);
        }
    }

    result.iterations += steps;
    (env, converged)
}

/// The transfer function: the abstract counterpart of one block's
/// simulator arithmetic.
fn transfer(
    g: &SignalFlowGraph,
    id: BlockId,
    env: &[Interval],
    ctx: &AnalysisContext,
    controls: &BTreeMap<String, Interval>,
) -> Interval {
    let input = |p: usize| -> Interval {
        match g.try_block_inputs(id).and_then(|ports| ports.get(p).copied().flatten()) {
            Some(d) if d.index() < env.len() => env[d.index()],
            // Missing or dangling driver: assume anything (sound, and
            // keeps the analysis total on malformed graphs).
            _ => Interval::TOP,
        }
    };
    match &g.block(id).kind {
        BlockKind::Input { name } => ctx
            .value_ranges
            .get(name)
            .map_or(Interval::TOP, |&(lo, hi)| Interval::new(lo, hi)),
        BlockKind::ControlInput { name } => {
            controls.get(name).copied().unwrap_or_else(|| Interval::new(0.0, 1.0))
        }
        BlockKind::Const { value } => Interval::point(*value),
        BlockKind::Scale { gain } => input(0).scale(*gain),
        BlockKind::Add { arity } => {
            let mut acc = Interval::point(0.0);
            for p in 0..*arity {
                acc = acc.add(input(p));
            }
            acc
        }
        BlockKind::Sub => input(0).sub(input(1)),
        BlockKind::Mul => input(0).mul(input(1)),
        BlockKind::Div => input(0).div(input(1)),
        // An integrator's output is the accumulated state: unbounded in
        // general (the simulator imposes no clamp), so top — which also
        // seeds every integrator-broken feedback loop.
        BlockKind::Integrate { .. } | BlockKind::Differentiate { .. } => Interval::TOP,
        BlockKind::Log => input(0).ln(),
        BlockKind::Antilog => input(0).exp(),
        BlockKind::Abs => input(0).abs(),
        BlockKind::Limiter { level } => input(0).clamp_sym(*level),
        BlockKind::OutputStage { limit, .. } => match limit {
            Some(l) => input(0).clamp_sym(*l),
            None => input(0),
        },
        // Track-and-hold: the output is the held state, which starts at
        // 0 (the simulator zero-initializes state) and afterwards holds
        // past values of the data input.
        BlockKind::SampleHold => input(0).join(Interval::point(0.0)),
        BlockKind::Switch => {
            let data = input(0);
            match input(1) {
                c if c == Interval::point(1.0) => data,
                c if c == Interval::point(0.0) => Interval::point(0.0),
                _ => data.join(Interval::point(0.0)),
            }
        }
        BlockKind::Mux { arity } => {
            // A select proven constant picks exactly one data leg.
            if let Some((lo, hi)) = input(*arity).bounds() {
                if lo == hi && lo.fract() == 0.0 && lo >= 0.0 && (lo as usize) < *arity {
                    return input(lo as usize);
                }
            }
            let mut acc = Interval::Bottom;
            for p in 0..*arity {
                acc = acc.join(input(p));
            }
            acc
        }
        BlockKind::Output { name: _ } => input(0),
        // Bit-valued control producers.
        BlockKind::Comparator { .. }
        | BlockKind::SchmittTrigger { .. }
        | BlockKind::Logic { .. } => Interval::new(0.0, 1.0),
        // An ADC word spans its full code range.
        BlockKind::Adc { bits } => {
            Interval::new(0.0, (1u64 << (*bits).min(52)) as f64 - 1.0)
        }
        // A memory holds past values of its stored signal; its label
        // names that signal, whose FSM-side interval we may know.
        BlockKind::Memory => match g.block(id).label.as_deref().and_then(|l| controls.get(l)) {
            Some(&iv) => iv.join(input(0)).join(Interval::point(0.0)),
            None => Interval::TOP,
        },
    }
}

/// Interval each FSM-driven signal can hold: the initial value `0.0`
/// joined with every reachable state's assignments, quantity reads
/// refined by the `'above`/guard facts of the state's incoming arcs.
/// Iterated to a small fixed point because data-path ops may read other
/// signals; the cap degrades to top, never diverges.
fn fsm_signal_intervals(
    design: &VhifDesign,
    envs: &[Vec<Interval>],
) -> BTreeMap<String, Interval> {
    let quantity = |name: &str| -> Interval {
        for (g, env) in design.graphs.iter().zip(envs) {
            if let Some(id) = g.find_labelled(name).or_else(|| g.find_interface(name)) {
                if id.index() < env.len() {
                    return env[id.index()];
                }
            }
        }
        Interval::TOP
    };

    let mut signals: BTreeMap<String, Interval> = BTreeMap::new();
    for f in &design.fsms {
        for s in f.assigned_signals() {
            signals.insert(s, Interval::point(0.0));
        }
    }

    for round in 0..32 {
        let mut changed = false;
        for f in &design.fsms {
            for sid in reachable_states(f) {
                let facts = entry_facts(f, sid);
                for op in &f.state(sid).ops {
                    let v = eval_dp(&op.value, &signals, &facts, &quantity, 0);
                    let cur = signals.get(&op.target).copied().unwrap_or(Interval::Bottom);
                    let joined = cur.join(v);
                    if joined != cur {
                        signals.insert(op.target.clone(), joined);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
        if round == 31 {
            // Unstabilized chains of signal-to-signal assignments: give
            // up soundly rather than loop further.
            for v in signals.values_mut() {
                *v = Interval::TOP;
            }
        }
    }
    signals
}

/// States reachable from `start` (unreachable states never execute, so
/// their assignments do not contribute).
fn reachable_states(f: &Fsm) -> Vec<StateId> {
    let n = f.state_count();
    let mut seen = vec![false; n];
    if f.start().index() < n {
        seen[f.start().index()] = true;
    }
    let mut stack = vec![f.start()];
    while let Some(s) = stack.pop() {
        for t in f.outgoing(s) {
            if t.to.index() < n && !seen[t.to.index()] {
                seen[t.to.index()] = true;
                stack.push(t.to);
            }
        }
    }
    (0..n).map(StateId::from_index).filter(|s| seen[s.index()]).collect()
}

/// Facts known about quantities at the instant a state is entered: a
/// quantity maps to a refining interval only when *every* incoming arc
/// implies it (joined over the arcs). The ops of a state execute on
/// entry, so an entry-instant fact is sound for them — it is *not* a
/// state invariant.
fn entry_facts(f: &Fsm, state: StateId) -> BTreeMap<String, Interval> {
    let mut per_arc: Vec<BTreeMap<String, Interval>> = Vec::new();
    let mut any = false;
    for t in f.transitions().iter().filter(|t| t.to == state) {
        any = true;
        per_arc.push(trigger_facts(&t.trigger));
    }
    if !any {
        return BTreeMap::new();
    }
    // A quantity is refined only if every arc constrains it.
    let mut names: BTreeSet<&String> = per_arc[0].keys().collect();
    for arc in &per_arc[1..] {
        names.retain(|n| arc.contains_key(*n));
    }
    let mut out = BTreeMap::new();
    for name in names {
        let mut iv = Interval::Bottom;
        for arc in &per_arc {
            iv = iv.join(arc[name]);
        }
        out.insert(name.clone(), iv);
    }
    out
}

/// Quantity constraints implied by one trigger being taken.
fn trigger_facts(trigger: &Trigger) -> BTreeMap<String, Interval> {
    let mut out = BTreeMap::new();
    match trigger {
        Trigger::Always => {}
        Trigger::AnyEvent(events) => {
            // An `'above` event fires when the quantity crosses the
            // threshold upward, so at entry the quantity sits at it.
            // Only a single-event list is a definite fact (an OR of
            // events identifies no single cause).
            if let [Event::Above { quantity, threshold }] = events.as_slice() {
                out.insert(quantity.clone(), Interval::new(*threshold, f64::INFINITY));
            }
        }
        Trigger::Guard(g) => comparison_facts(g, &mut out),
    }
    out
}

/// Facts from a guard of the shape `quantity <op> constant` (or the
/// mirrored constant-first shape), including `'above` levels used as
/// boolean guards.
fn comparison_facts(g: &DpExpr, out: &mut BTreeMap<String, Interval>) {
    match g {
        DpExpr::EventLevel(Event::Above { quantity, threshold }) => {
            out.insert(quantity.clone(), Interval::new(*threshold, f64::INFINITY));
        }
        DpExpr::Binary { op, lhs, rhs } => {
            let fact = match (lhs.as_ref(), rhs.as_ref()) {
                (DpExpr::Quantity(q), DpExpr::Real(c)) => Some((q, *op, *c)),
                (DpExpr::Real(c), DpExpr::Quantity(q)) => Some((q, mirror(*op), *c)),
                _ => None,
            };
            if let Some((q, op, c)) = fact {
                let iv = match op {
                    DpBinaryOp::Gt | DpBinaryOp::GtEq => Interval::new(c, f64::INFINITY),
                    DpBinaryOp::Lt | DpBinaryOp::LtEq => Interval::new(f64::NEG_INFINITY, c),
                    DpBinaryOp::Eq => Interval::point(c),
                    _ => Interval::TOP,
                };
                if !iv.is_top() {
                    out.insert(q.clone(), iv);
                }
            }
        }
        _ => {}
    }
}

/// Mirror a comparison when its operands were swapped.
fn mirror(op: DpBinaryOp) -> DpBinaryOp {
    match op {
        DpBinaryOp::Lt => DpBinaryOp::Gt,
        DpBinaryOp::LtEq => DpBinaryOp::GtEq,
        DpBinaryOp::Gt => DpBinaryOp::Lt,
        DpBinaryOp::GtEq => DpBinaryOp::LtEq,
        other => other,
    }
}

/// Abstract evaluation of a data-path expression.
fn eval_dp(
    e: &DpExpr,
    signals: &BTreeMap<String, Interval>,
    facts: &BTreeMap<String, Interval>,
    quantity: &dyn Fn(&str) -> Interval,
    depth: usize,
) -> Interval {
    if depth > 64 {
        return Interval::TOP;
    }
    match e {
        DpExpr::Bit(b) => Interval::point(f64::from(u8::from(*b))),
        DpExpr::Real(v) => Interval::point(*v),
        // External signals (never FSM-assigned) are bit-valued ports.
        DpExpr::Signal(n) => {
            signals.get(n).copied().unwrap_or_else(|| Interval::new(0.0, 1.0))
        }
        DpExpr::Quantity(n) => {
            let base = quantity(n);
            match facts.get(n) {
                Some(&f) => {
                    let refined = base.meet(f);
                    // A contradictory fact (disjoint with the proven
                    // quantity bound) means the arc cannot actually be
                    // taken with those bounds; stay with the base
                    // rather than claim unreachability.
                    if refined == Interval::Bottom {
                        base
                    } else {
                        refined
                    }
                }
                None => base,
            }
        }
        DpExpr::EventLevel(_) => Interval::new(0.0, 1.0),
        DpExpr::Adc(_) => Interval::TOP,
        DpExpr::Not(inner) => {
            let v = eval_dp(inner, signals, facts, quantity, depth + 1);
            if v == Interval::point(0.0) {
                Interval::point(1.0)
            } else if v == Interval::point(1.0) {
                Interval::point(0.0)
            } else {
                Interval::new(0.0, 1.0)
            }
        }
        DpExpr::Binary { op, lhs, rhs } => {
            let a = eval_dp(lhs, signals, facts, quantity, depth + 1);
            let b = eval_dp(rhs, signals, facts, quantity, depth + 1);
            match op {
                DpBinaryOp::Add => a.add(b),
                DpBinaryOp::Sub => a.sub(b),
                DpBinaryOp::Mul => a.mul(b),
                DpBinaryOp::Div => a.div(b),
                // Comparisons and logic produce bits.
                _ => Interval::new(0.0, 1.0),
            }
        }
    }
}

/// Emit the range verdicts for one analyzed graph.
///
/// Soundness shapes the verdict rules: the computed interval is an
/// over-approximation of the actual value set, so
///
/// * a divisor proven exactly `[0, 0]` divides by zero for *every*
///   reachable value — proven, [`Code::A203`];
/// * a finite divisor interval straddling zero only *may* contain a
///   real zero — possible, [`Code::A200`]; an unbounded divisor stays
///   quiet (unknowns never warn, matching the pre-analysis behavior);
/// * a computed output interval disjoint from its annotation means the
///   actual values (a subset) are all outside it — proven,
///   [`Code::A204`];
/// * a finite computed endpoint beyond the annotation is a possible
///   excursion — [`Code::A201`]; infinite endpoints stay quiet.
fn emit_verdicts(
    g: &SignalFlowGraph,
    env: &[Interval],
    ctx: &AnalysisContext,
    diags: &mut Vec<Diagnostic>,
) {
    let graph_note = format!("in graph `{}`", g.name());
    for (id, block) in g.iter() {
        match &block.kind {
            BlockKind::Div => {
                let divisor = g
                    .try_block_inputs(id)
                    .and_then(|p| p.get(1).copied().flatten())
                    .and_then(|d| env.get(d.index()).copied())
                    .unwrap_or(Interval::TOP);
                if divisor == Interval::point(0.0) {
                    diags.push(
                        Diagnostic::new(
                            Code::A203,
                            format!("divider {id} ({block}) always divides by zero"),
                        )
                        .with_note(graph_note.clone())
                        .with_note(
                            "the analysis proves the divisor is exactly 0 for every \
                             valuation of the annotated ranges",
                        ),
                    );
                } else if let Some((lo, hi)) = divisor.finite_bounds() {
                    if lo <= 0.0 && hi >= 0.0 {
                        diags.push(
                            Diagnostic::new(
                                Code::A200,
                                format!("divider {id} ({block}) may divide by zero"),
                            )
                            .with_note(graph_note.clone())
                            .with_note(format!(
                                "the annotated ranges give the divisor the interval \
                                 [{lo}, {hi}], which contains zero"
                            )),
                        );
                    }
                }
            }
            BlockKind::Output { name } => {
                let Some(&(lo, hi)) = ctx.value_ranges.get(name) else { continue };
                let Some((clo, chi)) = env.get(id.index()).copied().and_then(Interval::bounds)
                else {
                    continue;
                };
                let tol = 1e-9 * lo.abs().max(hi.abs()).max(1.0);
                if clo > hi + tol || chi < lo - tol {
                    diags.push(
                        Diagnostic::new(
                            Code::A204,
                            format!(
                                "output `{name}` always violates its annotated range \
                                 [{lo}, {hi}]"
                            ),
                        )
                        .with_note(graph_note.clone())
                        .with_note(format!(
                            "the driven value is proven to lie in [{clo}, {chi}], which \
                             does not intersect the annotation"
                        )),
                    );
                } else if (clo.is_finite() && clo < lo - tol)
                    || (chi.is_finite() && chi > hi + tol)
                {
                    diags.push(
                        Diagnostic::new(
                            Code::A201,
                            format!(
                                "output `{name}` can leave its annotated range [{lo}, {hi}]"
                            ),
                        )
                        .with_note(graph_note.clone())
                        .with_note(format!(
                            "interval propagation bounds the driven value to [{clo}, {chi}]"
                        )),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Export only finite proven bounds (top and half-bounded intervals
/// carry no usable sizing information downstream).
fn export_bounds(g: &SignalFlowGraph, env: &[Interval]) -> GraphBounds {
    let mut out = GraphBounds::unknown(g);
    for (i, iv) in env.iter().enumerate().take(out.blocks.len()) {
        out.blocks[i] = iv.finite_bounds();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vase_diag::Severity;

    fn ctx_with(ranges: &[(&str, f64, f64)]) -> AnalysisContext {
        let mut ctx = AnalysisContext::default();
        for (name, lo, hi) in ranges {
            ctx.value_ranges.insert((*name).to_owned(), (*lo, *hi));
        }
        ctx
    }

    fn codes(r: &AnalysisResult) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    // Migrated from the old `verify.rs` interval tests: the analyzer
    // owns the A200/A201 verdicts now.
    #[test]
    fn division_by_possibly_zero_range_warns() {
        let mut g = SignalFlowGraph::new("main");
        let a = g.add(BlockKind::Input { name: "num".into() });
        let b = g.add(BlockKind::Input { name: "den".into() });
        let div = g.add(BlockKind::Div);
        let y = g.add(BlockKind::Output { name: "q".into() });
        g.connect(a, div, 0).expect("wire");
        g.connect(b, div, 1).expect("wire");
        g.connect(div, y, 0).expect("wire");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        let r = analyze_design(&d, &ctx_with(&[("den", -1.0, 1.0)]));
        assert_eq!(codes(&r), vec![Code::A200]);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        // A divisor bounded away from zero is quiet.
        let r = analyze_design(&d, &ctx_with(&[("den", 0.5, 1.0)]));
        assert_eq!(codes(&r), vec![]);
        // An unbounded divisor (no annotation) is quiet too.
        let r = analyze_design(&d, &ctx_with(&[("num", 0.0, 1.0)]));
        assert_eq!(codes(&r), vec![]);
    }

    #[test]
    fn division_by_proven_zero_is_an_error() {
        let mut g = SignalFlowGraph::new("main");
        let a = g.add(BlockKind::Input { name: "num".into() });
        let z = g.add(BlockKind::Const { value: 0.0 });
        let div = g.add(BlockKind::Div);
        let y = g.add(BlockKind::Output { name: "q".into() });
        g.connect(a, div, 0).expect("wire");
        g.connect(z, div, 1).expect("wire");
        g.connect(div, y, 0).expect("wire");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        let r = analyze_design(&d, &ctx_with(&[("num", 0.0, 1.0)]));
        assert_eq!(codes(&r), vec![Code::A203]);
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn out_of_range_drive_warns_and_unknowns_stay_quiet() {
        let mut g = SignalFlowGraph::new("main");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let k = g.add(BlockKind::Scale { gain: 3.0 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, k, 0).expect("wire");
        g.connect(k, y, 0).expect("wire");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        let r = analyze_design(&d, &ctx_with(&[("x", -1.0, 1.0), ("y", -1.0, 1.0)]));
        assert_eq!(codes(&r), vec![Code::A201]);
        // No range on the input → conservative silence.
        let r = analyze_design(&d, &ctx_with(&[("y", -1.0, 1.0)]));
        assert_eq!(codes(&r), vec![]);
        // Gain that keeps the drive in range → silence.
        let r = analyze_design(&d, &ctx_with(&[("x", -0.25, 0.25), ("y", -1.0, 1.0)]));
        assert_eq!(codes(&r), vec![]);
    }

    #[test]
    fn disjoint_output_range_is_proven_violation() {
        let mut g = SignalFlowGraph::new("main");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let k = g.add(BlockKind::Scale { gain: 4.0 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, k, 0).expect("wire");
        g.connect(k, y, 0).expect("wire");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        // x ∈ [2, 3] → y ∈ [8, 12], annotation says [-1, 1]: disjoint.
        let r = analyze_design(&d, &ctx_with(&[("x", 2.0, 3.0), ("y", -1.0, 1.0)]));
        assert_eq!(codes(&r), vec![Code::A204]);
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn feedback_loop_through_integrator_converges() {
        // x --(+)--> integ --> limiter --> y, with the limiter output
        //      ^____________________|
        // fed back into the adder: the old topological pass bailed out
        // here; the worklist must converge and bound y by the clamp.
        let mut g = SignalFlowGraph::new("loop");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let add = g.add(BlockKind::Add { arity: 2 });
        let integ = g.add(BlockKind::Integrate { gain: 1.0, initial: 0.0 });
        let lim = g.add(BlockKind::Limiter { level: 2.0 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, add, 0).expect("wire");
        g.connect(lim, add, 1).expect("wire");
        g.connect(add, integ, 0).expect("wire");
        g.connect(integ, lim, 0).expect("wire");
        g.connect(lim, y, 0).expect("wire");
        g.validate().expect("stateful feedback is legal");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        let r = analyze_design(&d, &ctx_with(&[("x", -1.0, 1.0), ("y", -2.0, 2.0)]));
        assert!(r.converged);
        assert_eq!(codes(&r), vec![], "clamped loop output fits its annotation");
        let lim_bound = r.bounds[0].get(lim);
        assert_eq!(lim_bound, Some((-2.0, 2.0)), "limiter bound survives the loop");
    }

    #[test]
    fn iterative_halving_loop_converges_with_thresholds() {
        // v(n+1) = 0.5 * v(n) held by a sample-and-hold pair: the
        // widening thresholds keep the interval finite instead of
        // blowing the lower bound to -inf.
        let mut g = SignalFlowGraph::new("halve");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let clk = g.add(BlockKind::ControlInput { name: "clk".into() });
        let sh = g.add(BlockKind::SampleHold);
        let half = g.add(BlockKind::Scale { gain: 0.5 });
        let add = g.add(BlockKind::Add { arity: 2 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, add, 0).expect("wire");
        g.connect(half, add, 1).expect("wire");
        g.connect(add, sh, 0).expect("wire");
        g.connect(clk, sh, 1).expect("wire");
        g.connect(sh, half, 0).expect("wire");
        g.connect(sh, y, 0).expect("wire");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        // The loop sums to at most 2 = 1/(1-0.5); the y annotation
        // donates the threshold 2.0 the widening lands on, so the
        // interval stays finite instead of blowing out to +inf.
        let r = analyze_design(&d, &ctx_with(&[("x", 0.0, 1.0), ("y", 0.0, 2.0)]));
        assert!(r.converged);
        assert_eq!(r.bounds[0].get(sh), Some((0.0, 2.0)));
        assert_eq!(codes(&r), vec![], "y stays within its annotation");
        // Without the landmark the bound widens to [0, +inf): sound,
        // not finite, and still quiet (infinite endpoints never warn).
        let r = analyze_design(&d, &ctx_with(&[("x", 0.0, 1.0)]));
        assert!(r.converged);
        assert_eq!(r.bounds[0].get(sh), None);
        assert_eq!(codes(&r), vec![]);
    }

    #[test]
    fn fsm_proven_constant_control_sharpens_switch() {
        // An FSM that only ever assigns c1 <= '0' keeps the switch
        // open: the output is proven 0 even though the data input is 5.
        let mut g = SignalFlowGraph::new("main");
        let k = g.add(BlockKind::Const { value: 5.0 });
        let c = g.add(BlockKind::ControlInput { name: "c1".into() });
        let sw = g.add(BlockKind::Switch);
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(k, sw, 0).expect("wire");
        g.connect(c, sw, 1).expect("wire");
        g.connect(sw, y, 0).expect("wire");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        let mut f = Fsm::new("ctl");
        let start = f.start();
        let s = f.add_state("s");
        f.state_mut(s).ops.push(vase_vhif::DataOp::new("c1", DpExpr::Bit(false)));
        f.add_transition(start, s, Trigger::Always);
        f.add_transition(s, start, Trigger::Always);
        d.fsms.push(f);
        let r = analyze_design(&d, &ctx_with(&[("y", -1.0, 1.0)]));
        assert_eq!(r.bounds[0].get(y), Some((0.0, 0.0)));
        assert_eq!(codes(&r), vec![]);
        // Without the FSM the control could be high: y may be 5 → A201.
        d.fsms.clear();
        let r = analyze_design(&d, &ctx_with(&[("y", -1.0, 1.0)]));
        assert_eq!(codes(&r), vec![Code::A201]);
    }

    #[test]
    fn above_guard_refines_entered_state_reads() {
        // The FSM samples a quantity only after crossing 0.5 upward, so
        // the stored signal is bounded below by the threshold.
        let mut g = SignalFlowGraph::new("main");
        let x = g.add(BlockKind::Input { name: "vin".into() });
        let k = g.add(BlockKind::Scale { gain: 1.0 });
        g.set_label(k, "vin_q");
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, k, 0).expect("wire");
        g.connect(k, y, 0).expect("wire");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        let mut f = Fsm::new("sampler");
        let start = f.start();
        let s = f.add_state("latch");
        f.state_mut(s)
            .ops
            .push(vase_vhif::DataOp::new("held", DpExpr::Quantity("vin_q".into())));
        f.add_transition(
            start,
            s,
            Trigger::AnyEvent(vec![Event::Above { quantity: "vin_q".into(), threshold: 0.5 }]),
        );
        f.add_transition(s, start, Trigger::Always);
        d.fsms.push(f);
        let r = analyze_design(&d, &ctx_with(&[("vin", -1.0, 1.0)]));
        assert!(r.converged);
        // Without refinement `held` would be [-1, 1] ⊔ {0} = [-1, 1];
        // the entry fact vin_q ≥ 0.5 tightens it to {0} ⊔ [0.5, 1].
        let internal = fsm_signal_intervals(&d, &[vec![
            Interval::new(-1.0, 1.0),
            Interval::new(-1.0, 1.0),
            Interval::new(-1.0, 1.0),
        ]]);
        assert_eq!(internal.get("held"), Some(&Interval::new(0.0, 1.0)));
    }

    #[test]
    fn degenerate_empty_context_reports_note_not_silence() {
        let mut g = SignalFlowGraph::new("main");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, y, 0).expect("wire");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        let r = analyze_design(&d, &AnalysisContext::default());
        assert_eq!(codes(&r), vec![Code::A205]);
        assert_eq!(r.diagnostics[0].severity, Severity::Note);
    }

    #[test]
    fn bounds_cover_every_graph_and_block() {
        let mut g = SignalFlowGraph::new("main");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let k = g.add(BlockKind::Scale { gain: -2.0 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, k, 0).expect("wire");
        g.connect(k, y, 0).expect("wire");
        let mut d = VhifDesign::new("t");
        d.graphs.push(g);
        let r = analyze_design(&d, &ctx_with(&[("x", -1.0, 2.0)]));
        assert_eq!(r.bounds.len(), 1);
        assert_eq!(r.bounds[0].blocks.len(), 3);
        assert_eq!(r.bounds[0].get(x), Some((-1.0, 2.0)));
        // Negative gain flips the interval.
        assert_eq!(r.bounds[0].get(k), Some((-4.0, 2.0)));
        assert_eq!(r.bounds[0].get(y), Some((-4.0, 2.0)));
    }
}
