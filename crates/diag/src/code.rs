//! The stable lint-code registry.
//!
//! Every diagnostic the toolchain can emit carries one of these codes.
//! Codes are grouped by the pipeline stage that detects the problem:
//!
//! * `V0xx` — frontend (lexing, parsing, semantic analysis, the VASS
//!   restrictions of paper Section 3);
//! * `I1xx` — VHIF verifier (structural invariants of the compiled
//!   signal-flow graphs and FSMs);
//! * `A2xx` — annotation/interval analysis (value and frequency range
//!   propagation);
//! * `O3xx` — optimization passes (informational notes about what each
//!   transform rewrote or removed);
//! * `S4xx` — simulation runtime (numerical faults detected by the
//!   compiled RK4 stepper and their recovery outcomes).
//!
//! Codes are append-only: a released code never changes meaning or
//! number, so scripts that match on them keep working.
//! `docs/lint-codes.md` is generated from this table (see
//! [`reference_markdown`]) and a test asserts it stays in sync.

use crate::diagnostic::Severity;

/// A stable diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // each variant is documented by its registry entry
pub enum Code {
    V001,
    V002,
    V010,
    V011,
    V012,
    V013,
    V014,
    V015,
    I100,
    I101,
    I102,
    I103,
    I104,
    I105,
    I106,
    I107,
    I108,
    I109,
    I110,
    I111,
    A200,
    A201,
    A202,
    A203,
    A204,
    A205,
    A210,
    A211,
    A212,
    A220,
    A221,
    O300,
    O301,
    O302,
    O303,
    O304,
    O305,
    S400,
    S401,
    S402,
    S403,
    S404,
}

/// One row of the code registry.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// The code itself.
    pub code: Code,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Default severity (promotable with `--deny warnings`).
    pub severity: Severity,
    /// One-line description for the reference table.
    pub description: &'static str,
}

/// The full registry, in code order.
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: Code::V001,
        name: "lex-error",
        severity: Severity::Error,
        description: "the source text could not be tokenized",
    },
    CodeInfo {
        code: Code::V002,
        name: "parse-error",
        severity: Severity::Error,
        description: "the token stream does not form a valid VASS design file",
    },
    CodeInfo {
        code: Code::V010,
        name: "undeclared-name",
        severity: Severity::Error,
        description: "a name is referenced but never declared",
    },
    CodeInfo {
        code: Code::V011,
        name: "duplicate-declaration",
        severity: Severity::Error,
        description: "a name is declared more than once in the same scope",
    },
    CodeInfo {
        code: Code::V012,
        name: "type-mismatch",
        severity: Severity::Error,
        description: "an expression or assignment has mismatched types",
    },
    CodeInfo {
        code: Code::V013,
        name: "restriction-violation",
        severity: Severity::Error,
        description: "a VASS synthesizability restriction is violated (paper Section 3): \
                      `wait`, non-static `for` bounds, signal read-after-write, or a signal \
                      assignment inside a `while` sampling loop",
    },
    CodeInfo {
        code: Code::V014,
        name: "bad-annotation",
        severity: Severity::Error,
        description: "a synthesis annotation is malformed or contradicts another annotation",
    },
    CodeInfo {
        code: Code::V015,
        name: "invalid-use",
        severity: Severity::Error,
        description: "a declared object is used in an inappropriate role (e.g. assigning to \
                      an `in` port)",
    },
    CodeInfo {
        code: Code::I100,
        name: "compile-error",
        severity: Severity::Error,
        description: "VASS-to-VHIF lowering failed (unsupported construct, unsolvable DAE \
                      set, or use before definition)",
    },
    CodeInfo {
        code: Code::I101,
        name: "dangling-edge",
        severity: Severity::Error,
        description: "a signal-flow connection or FSM transition references a block, port, \
                      or state that does not exist",
    },
    CodeInfo {
        code: Code::I102,
        name: "undriven-port",
        severity: Severity::Error,
        description: "a block input port has no driver, or a control input is produced by \
                      no FSM and is not an external signal",
    },
    CodeInfo {
        code: Code::I103,
        name: "algebraic-loop",
        severity: Severity::Error,
        description: "a combinational cycle is not broken by any stateful block \
                      (integrator, sample-and-hold, memory, Schmitt trigger)",
    },
    CodeInfo {
        code: Code::I104,
        name: "class-mismatch",
        severity: Severity::Error,
        description: "an analog output drives a control port, or a control output drives a \
                      data port",
    },
    CodeInfo {
        code: Code::I105,
        name: "memory-conflict",
        severity: Severity::Error,
        description: "the one-memory-block-per-signal rule is violated at the IR level: a \
                      signal is stored by more than one memory, assigned twice in one FSM \
                      state, or driven by several FSMs",
    },
    CodeInfo {
        code: Code::I106,
        name: "bad-sampling-structure",
        severity: Severity::Error,
        description: "a lowered `while` sampling structure does not match paper Fig. 4: \
                      two condition networks plus an S/H pair bridged by a switch",
    },
    CodeInfo {
        code: Code::I107,
        name: "unreachable-state",
        severity: Severity::Error,
        description: "an FSM state cannot be reached from the start state",
    },
    CodeInfo {
        code: Code::I108,
        name: "ambiguous-transitions",
        severity: Severity::Error,
        description: "a state has two unconditional outgoing arcs, or two arcs triggered \
                      by the same `'above` event",
    },
    CodeInfo {
        code: Code::I109,
        name: "overlapping-above",
        severity: Severity::Warning,
        description: "two transitions from one state watch `'above` of the same quantity \
                      at different thresholds; both can be pending at once, which the \
                      paper's one-event-at-a-time model does not arbitrate",
    },
    CodeInfo {
        code: Code::I110,
        name: "dead-state",
        severity: Severity::Warning,
        description: "a non-start FSM state has no outgoing transition, so the machine \
                      can never return to its suspended state",
    },
    CodeInfo {
        code: Code::I111,
        name: "kind-mismatch",
        severity: Severity::Error,
        description: "a wire connects ports of different electrical kinds (a voltage \
                      quantity feeding a current port, or vice versa)",
    },
    CodeInfo {
        code: Code::A200,
        name: "possible-division-by-zero",
        severity: Severity::Warning,
        description: "interval propagation of the `range` annotations shows a divider \
                      whose divisor interval contains zero",
    },
    CodeInfo {
        code: Code::A201,
        name: "out-of-range-drive",
        severity: Severity::Warning,
        description: "interval propagation shows an output can exceed its annotated \
                      `range` or drive amplitude",
    },
    CodeInfo {
        code: Code::A202,
        name: "degenerate-range",
        severity: Severity::Warning,
        description: "a `range` or `frequency` annotation has its lower bound above its \
                      upper bound and is ignored by the interval analysis",
    },
    CodeInfo {
        code: Code::A203,
        name: "proven-division-by-zero",
        severity: Severity::Error,
        description: "fixed-point range analysis proves a divider's divisor is exactly \
                      zero for every reachable valuation of the annotated ranges",
    },
    CodeInfo {
        code: Code::A204,
        name: "proven-out-of-range-drive",
        severity: Severity::Error,
        description: "fixed-point range analysis proves an output's value interval is \
                      disjoint from its annotated `range`: every reachable value violates \
                      the annotation",
    },
    CodeInfo {
        code: Code::A205,
        name: "range-analysis-degraded",
        severity: Severity::Note,
        description: "the range analysis could not produce useful bounds (no usable \
                      `range` annotations, or the fixed-point iteration cap was reached \
                      and remaining intervals were widened to unbounded); range verdicts \
                      for the affected graph are conservative",
    },
    CodeInfo {
        code: Code::A210,
        name: "mapping-budget-exhausted",
        severity: Severity::Warning,
        description: "the branch-and-bound mapper hit its compute budget (deadline, node \
                      cap, or cancellation) and returned its best incumbent architecture \
                      instead of a proven optimum",
    },
    CodeInfo {
        code: Code::A211,
        name: "cover-cache-hit",
        severity: Severity::Note,
        description: "one or more signal-flow graphs were mapped from the content-addressed \
                      cover cache (validated best-known cover) instead of running the \
                      branch-and-bound search",
    },
    CodeInfo {
        code: Code::A212,
        name: "cover-cache-miss",
        severity: Severity::Note,
        description: "a cover cache was supplied but one or more signal-flow graphs had no \
                      valid cached cover; the search ran and its result was recorded for \
                      next time",
    },
    CodeInfo {
        code: Code::A220,
        name: "job-deadline-exceeded",
        severity: Severity::Warning,
        description: "a service job hit its per-request `deadline_ms` and was cancelled \
                      cooperatively; the response carries the best results produced so far \
                      (partial traces, incumbent architectures, or widened ranges)",
    },
    CodeInfo {
        code: Code::A221,
        name: "service-overloaded",
        severity: Severity::Warning,
        description: "the service queue was full (`--queue-depth`) when the request \
                      arrived, so it was shed without running; the response includes a \
                      retry-after hint instead of growing the queue without bound",
    },
    CodeInfo {
        code: Code::O300,
        name: "opt-summary",
        severity: Severity::Note,
        description: "summary of an optimization pipeline run: total blocks and edges \
                      before and after the passes",
    },
    CodeInfo {
        code: Code::O301,
        name: "opt-const-folded",
        severity: Severity::Note,
        description: "the `const-fold` pass replaced literal-fed arithmetic blocks with \
                      constants (computed with the simulator's own arithmetic)",
    },
    CodeInfo {
        code: Code::O302,
        name: "opt-cse-merged",
        severity: Severity::Note,
        description: "the `cse` pass merged identical pure blocks fed by the same drivers",
    },
    CodeInfo {
        code: Code::O303,
        name: "opt-dead-blocks-removed",
        severity: Severity::Note,
        description: "the `dce` pass removed blocks with no path to an output port, \
                      memory block, sampling structure, or FSM-read quantity",
    },
    CodeInfo {
        code: Code::O304,
        name: "opt-copies-coalesced",
        severity: Severity::Note,
        description: "the `coalesce` pass spliced out gain-1.0 scale blocks (copies)",
    },
    CodeInfo {
        code: Code::O305,
        name: "opt-solver-variants-pruned",
        severity: Severity::Note,
        description: "the `prune-solvers` pass dropped candidate solver lowerings that \
                      are invalid or strictly dominated by another lowering with the \
                      same interface",
    },
    CodeInfo {
        code: Code::S400,
        name: "sim-numerical-fault",
        severity: Severity::Error,
        description: "the transient simulation produced a non-finite value (NaN or \
                      infinity) that step-halving could not repair; the run aborted \
                      early and the result carries the partial trace",
    },
    CodeInfo {
        code: Code::S401,
        name: "sim-step-halved",
        severity: Severity::Warning,
        description: "the transient simulation recovered from a numerical fault by \
                      re-integrating one or more steps at a reduced internal step size",
    },
    CodeInfo {
        code: Code::S402,
        name: "sim-divergence",
        severity: Severity::Error,
        description: "the transient simulation state exceeded the divergence threshold \
                      and could not be repaired by step-halving; the run aborted early \
                      and the result carries the partial trace",
    },
    CodeInfo {
        code: Code::S403,
        name: "sim-fault-injection-active",
        severity: Severity::Note,
        description: "deterministic fault injection perturbed block evaluations during \
                      this run (test/diagnostic mode); traces do not reflect the \
                      unperturbed design",
    },
    CodeInfo {
        code: Code::S404,
        name: "sim-lane-degraded",
        severity: Severity::Warning,
        description: "one or more lanes of a batched simulation retired early with an \
                      unrecoverable numerical fault; the remaining lanes completed \
                      normally and the degraded lanes carry partial traces",
    },
];

impl Code {
    /// The code as printed, e.g. `"I102"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::V001 => "V001",
            Code::V002 => "V002",
            Code::V010 => "V010",
            Code::V011 => "V011",
            Code::V012 => "V012",
            Code::V013 => "V013",
            Code::V014 => "V014",
            Code::V015 => "V015",
            Code::I100 => "I100",
            Code::I101 => "I101",
            Code::I102 => "I102",
            Code::I103 => "I103",
            Code::I104 => "I104",
            Code::I105 => "I105",
            Code::I106 => "I106",
            Code::I107 => "I107",
            Code::I108 => "I108",
            Code::I109 => "I109",
            Code::I110 => "I110",
            Code::I111 => "I111",
            Code::A200 => "A200",
            Code::A201 => "A201",
            Code::A202 => "A202",
            Code::A203 => "A203",
            Code::A204 => "A204",
            Code::A205 => "A205",
            Code::A210 => "A210",
            Code::A211 => "A211",
            Code::A212 => "A212",
            Code::A220 => "A220",
            Code::A221 => "A221",
            Code::O300 => "O300",
            Code::O301 => "O301",
            Code::O302 => "O302",
            Code::O303 => "O303",
            Code::O304 => "O304",
            Code::O305 => "O305",
            Code::S400 => "S400",
            Code::S401 => "S401",
            Code::S402 => "S402",
            Code::S403 => "S403",
            Code::S404 => "S404",
        }
    }

    /// This code's registry row.
    pub fn info(self) -> &'static CodeInfo {
        REGISTRY
            .iter()
            .find(|i| i.code == self)
            .expect("every code has a registry entry")
    }

    /// Short kebab-case name, e.g. `"undriven-port"`.
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// The severity this code carries unless promoted.
    pub fn default_severity(self) -> Severity {
        self.info().severity
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Render the registry as the markdown reference table committed at
/// `docs/lint-codes.md`. A test asserts the file matches this output
/// exactly, so regenerating after editing the registry is:
///
/// ```text
/// cargo test -p vase-diag   # fails and prints the expected content
/// ```
pub fn reference_markdown() -> String {
    let mut out = String::new();
    out.push_str("# Lint codes\n\n");
    out.push_str(
        "Stable diagnostic codes emitted by `vase lint` and the in-flow verifier.\n\
         `V0xx` codes come from the frontend, `I1xx` from the VHIF verifier, `A2xx`\n\
         from the annotation/interval analysis (including the `A210`\n\
         mapping-budget report), `O3xx` are informational notes from the\n\
         optimization passes, and `S4xx` report numerical faults detected by the\n\
         simulation runtime. Warnings become errors under\n\
         `--deny warnings`; notes are never promoted.\n\n\
         This file is generated from `crates/diag/src/code.rs` (`REGISTRY`); a test\n\
         in that crate asserts it stays in sync.\n\n",
    );
    out.push_str("| code | name | severity | description |\n");
    out.push_str("|------|------|----------|-------------|\n");
    for info in REGISTRY {
        // Collapse the multi-line string-literal continuations into
        // single spaces so the table stays one row per code.
        let description = info.description.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            info.code.as_str(),
            info.name,
            info.severity,
            description
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_sorted_and_unique() {
        assert!(REGISTRY.windows(2).all(|w| w[0].code < w[1].code));
        for info in REGISTRY {
            assert_eq!(info.code.info().name, info.name);
            assert_eq!(info.code.to_string(), info.code.as_str());
            assert!(!info.description.is_empty());
        }
        // as_str matches the group prefix conventions.
        for info in REGISTRY {
            let s = info.code.as_str();
            assert!(
                s.starts_with('V')
                    || s.starts_with('I')
                    || s.starts_with('A')
                    || s.starts_with('O')
                    || s.starts_with('S'),
                "{s}"
            );
            assert_eq!(s.len(), 4, "{s}");
        }
    }

    #[test]
    fn reference_table_lists_every_code() {
        let md = reference_markdown();
        for info in REGISTRY {
            assert!(md.contains(info.code.as_str()), "missing {}", info.code);
            assert!(md.contains(info.name), "missing name {}", info.name);
        }
    }

    #[test]
    fn lint_codes_doc_is_in_sync() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/lint-codes.md");
        let expected = reference_markdown();
        if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
            std::fs::write(path, &expected).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            return;
        }
        let on_disk = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        assert!(
            on_disk == expected,
            "docs/lint-codes.md is out of date; regenerate with \
             UPDATE_SNAPSHOTS=1 cargo test -p vase-diag, expected:\n\n{expected}"
        );
    }
}
