//! Conversions from the frontend's error types onto the diagnostics
//! engine, assigning each existing check a stable `V0xx` code.
//!
//! The frontend keeps its own error types (`vase-diag` depends on
//! `vase-frontend` for [`vase_frontend::span::Span`], so the dependency
//! cannot point the other way); these conversions are the single place
//! where those types gain codes, making every lex/parse/sema check
//! reportable through `vase lint` without loss.

use vase_frontend::error::{FrontendError, LexError, ParseError, SemaError, SemaErrorKind};

use crate::code::Code;
use crate::diagnostic::Diagnostic;

/// The stable code for a semantic-error category.
pub fn code_for_sema(kind: SemaErrorKind) -> Code {
    match kind {
        SemaErrorKind::UndeclaredName => Code::V010,
        SemaErrorKind::DuplicateDeclaration => Code::V011,
        SemaErrorKind::TypeMismatch => Code::V012,
        SemaErrorKind::RestrictionViolation => Code::V013,
        SemaErrorKind::BadAnnotation => Code::V014,
        SemaErrorKind::InvalidUse => Code::V015,
    }
}

impl From<&LexError> for Diagnostic {
    fn from(e: &LexError) -> Self {
        Diagnostic::new(Code::V001, &e.message).with_span(e.span)
    }
}

impl From<&ParseError> for Diagnostic {
    fn from(e: &ParseError) -> Self {
        Diagnostic::new(Code::V002, &e.message).with_span(e.span)
    }
}

impl From<&SemaError> for Diagnostic {
    fn from(e: &SemaError) -> Self {
        Diagnostic::new(code_for_sema(e.kind), &e.message).with_span(e.span)
    }
}

/// Every diagnostic carried by a [`FrontendError`] (a lex or parse
/// failure yields one, semantic analysis yields all it collected).
pub fn frontend_diagnostics(err: &FrontendError) -> Vec<Diagnostic> {
    match err {
        FrontendError::Lex(e) => vec![e.into()],
        FrontendError::Parse(e) => vec![e.into()],
        FrontendError::Sema(errs) => errs.iter().map(Diagnostic::from).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vase_frontend::span::Span;

    #[test]
    fn every_sema_kind_maps_to_a_distinct_code() {
        let kinds = [
            SemaErrorKind::UndeclaredName,
            SemaErrorKind::DuplicateDeclaration,
            SemaErrorKind::TypeMismatch,
            SemaErrorKind::RestrictionViolation,
            SemaErrorKind::BadAnnotation,
            SemaErrorKind::InvalidUse,
        ];
        let codes: Vec<Code> = kinds.iter().map(|k| code_for_sema(*k)).collect();
        for (i, a) in codes.iter().enumerate() {
            assert!(a.as_str().starts_with('V'));
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn conversions_keep_span_and_message() {
        let span = Span::default();
        let lex = LexError { message: "bad char".into(), span };
        let d: Diagnostic = (&lex).into();
        assert_eq!(d.code, Code::V001);
        assert_eq!(d.message, "bad char");
        assert_eq!(d.span, span);

        let sema = SemaError::new(SemaErrorKind::RestrictionViolation, "wait", span);
        let d: Diagnostic = (&sema).into();
        assert_eq!(d.code, Code::V013);

        let all = frontend_diagnostics(&FrontendError::Sema(vec![sema.clone(), sema]));
        assert_eq!(all.len(), 2);
        let one = frontend_diagnostics(&FrontendError::Lex(lex));
        assert_eq!(one.len(), 1);
    }
}
