//! # vase-diag
//!
//! The unified diagnostics engine of the VASE toolchain: one value type
//! ([`Diagnostic`]) with stable codes ([`Code`], registry in
//! [`code::REGISTRY`]), caret-annotated text rendering ([`render`]),
//! and machine-readable JSON output ([`json`]).
//!
//! Three code groups cover the pipeline: `V0xx` for frontend findings
//! (every [`vase_frontend::error::SemaError`] maps onto a code via
//! [`frontend::code_for_sema`]), `I1xx` for the VHIF verifier, and
//! `A2xx` for annotation/interval analysis. `vase lint` and the in-flow
//! verifier gate both speak this type.
//!
//! # Examples
//!
//! ```
//! use vase_diag::{Code, Diagnostic};
//! use vase_frontend::span::{Position, Span};
//!
//! let start = Position { line: 2, column: 9, offset: 20 };
//! let end = Position { line: 2, column: 13, offset: 24 };
//! let d = Diagnostic::new(Code::V013, "`wait` is not allowed in VASS")
//!     .with_span(Span { start, end });
//! let text = vase_diag::render::render(&d, "entity e is\n        wait;\n", "e.vhd");
//! assert!(text.contains("error[V013]"));
//! assert!(text.contains("^^^^"));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod code;
pub mod diagnostic;
pub mod frontend;
pub mod json;
pub mod render;

pub use code::{reference_markdown, Code, CodeInfo, REGISTRY};
pub use diagnostic::{deny_warnings, has_errors, sort, summary, Diagnostic, Severity};
pub use frontend::{code_for_sema, frontend_diagnostics};
pub use json::Json;
pub use render::{render, render_all};

// Re-exported so IR-level crates can build spanned diagnostics without
// depending on the frontend directly.
pub use vase_frontend::span::{Position, Span};
