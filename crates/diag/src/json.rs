//! Minimal JSON reader/writer shared by `vase lint --format json`, the
//! benchmark reports (`vase-bench` re-exports this module), and the
//! `vase serve` request protocol.
//!
//! The offline build environment has no `serde_json`, so a tiny
//! explicit value tree with a pretty-printer and a recursive-descent
//! parser covers everything needed. Keys keep insertion order so
//! reports diff cleanly run-over-run.

use std::fmt::Write as _;

use crate::diagnostic::{Diagnostic, Severity};

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i128),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parse a JSON document. Rejects trailing garbage, unterminated
    /// strings/containers, and nesting deeper than 128 levels (a
    /// malformed request must produce an error, never a stack
    /// overflow in a service worker).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Look up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload; floats with an exact integer value count.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(x) if x.fract() == 0.0 && x.is_finite() => Some(*x as i128),
            _ => None,
        }
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline,
    /// matching the layout `serde_json::to_string_pretty` produced for
    /// the earlier reports.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render compactly on one line (no spaces or newlines) — the
    /// newline-delimited wire form of the `vase serve` protocol.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            // The scalar forms are already single-line.
            other => other.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's float Display is the shortest round-trip
                    // form; force a decimal point so readers keep the
                    // value typed as a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent parser over the raw bytes; positions in error
/// messages are byte offsets into the input.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs in one slice; the input is valid
            // UTF-8 (it came from a &str), so any multi-byte sequence
            // between quotes passes through intact.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!("bad surrogate pair at byte {}", self.pos));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(
                                c.ok_or_else(|| format!("invalid escape at byte {}", self.pos))?,
                            );
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at byte {}", self.pos));
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    /// Read exactly four hex digits and return their value; `pos` ends
    /// past the digits.
    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let s = std::str::from_utf8(digits)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(format!("bad number `{text}` at byte {start}")),
        }
    }
}

/// One diagnostic as a JSON object. Synthetic (IR-level) spans carry
/// `null` line/column so consumers can distinguish "no source location"
/// from line 1.
pub fn diagnostic_to_json(d: &Diagnostic) -> Json {
    let (line, column) = if d.span.is_synthetic() {
        (Json::Null, Json::Null)
    } else {
        (Json::Int(d.span.start.line as i128), Json::Int(d.span.start.column as i128))
    };
    Json::obj([
        ("code", Json::str(d.code.as_str())),
        ("name", Json::str(d.code.name())),
        ("severity", Json::str(d.severity.to_string())),
        ("line", line),
        ("column", column),
        ("message", Json::str(&d.message)),
        ("notes", Json::Arr(d.notes.iter().map(Json::str).collect())),
    ])
}

/// The machine-readable lint report for one file.
pub fn report_to_json(file: &str, diags: &[Diagnostic]) -> Json {
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count() as i128;
    Json::obj([
        ("file", Json::str(file)),
        ("errors", Json::Int(count(Severity::Error))),
        ("warnings", Json::Int(count(Severity::Warning))),
        ("notes", Json::Int(count(Severity::Note))),
        ("diagnostics", Json::Arr(diags.iter().map(diagnostic_to_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Code;
    use vase_frontend::span::{Position, Span};

    #[test]
    fn diagnostics_serialize_with_span_or_null() {
        let p = Position { line: 3, column: 7, offset: 42 };
        let with_span = Diagnostic::new(Code::V012, "real vs bit")
            .with_span(Span { start: p, end: p })
            .with_note("declared here");
        let ir_level = Diagnostic::new(Code::I102, "port 1 of b4 undriven");
        let report = report_to_json("bad.vhd", &[with_span.clone(), ir_level]);
        let text = report.to_string_pretty();
        assert!(text.contains("\"file\": \"bad.vhd\""));
        assert!(text.contains("\"errors\": 2"));
        assert!(text.contains("\"warnings\": 0"));
        assert!(text.contains("\"code\": \"V012\""));
        assert!(text.contains("\"name\": \"type-mismatch\""));
        assert!(text.contains("\"line\": 3"));
        assert!(text.contains("\"column\": 7"));
        assert!(text.contains("\"notes\": [\n"));
        // the IR-level diagnostic has null position
        assert!(text.contains("\"line\": null"));
    }

    #[test]
    fn renders_nested_report_shape() {
        let report = Json::obj([
            ("benchmark", Json::str("demo")),
            ("jobs", Json::Int(4)),
            ("ok", Json::Bool(true)),
            (
                "apps",
                Json::Arr(vec![Json::obj([
                    ("name", Json::str("a\"b")),
                    ("speedup", Json::Num(2.0)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = report.to_string_pretty();
        assert!(text.starts_with("{\n  \"benchmark\": \"demo\""));
        assert!(text.contains("\"jobs\": 4"));
        assert!(text.contains("\"name\": \"a\\\"b\""));
        assert!(text.contains("\"speedup\": 2.0"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    /// The emitted text is machine-parseable JSON: balanced braces and
    /// brackets outside strings, terminated strings, no NaN/Infinity
    /// tokens — checked against the report shape the bench binaries
    /// emit, without needing a JSON parser.
    #[test]
    fn report_output_is_well_formed() {
        let text = Json::obj([
            ("benchmark", Json::str("sim")),
            ("jobs", Json::Int(4)),
            (
                "apps",
                Json::Arr(vec![Json::obj([
                    ("application", Json::str("receiver \"v2\"")),
                    ("steps_per_second", Json::Num(1.25e6)),
                    ("speedup", Json::Num(f64::NAN)), // must become null
                ])]),
            ),
        ])
        .to_string_pretty();
        assert!(text.starts_with('{') && text.ends_with("}\n"));
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in text.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in:\n{text}");
        }
        assert_eq!(depth, 0, "unbalanced JSON:\n{text}");
        assert!(!in_str, "unterminated string:\n{text}");
        for banned in ["NaN", "Infinity"] {
            assert!(!text.contains(banned), "non-JSON token `{banned}`:\n{text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).to_string_pretty(), "null\n");
        assert_eq!(Json::Num(1.5).to_string_pretty(), "1.5\n");
    }

    #[test]
    fn parse_round_trips_the_emitted_shape() {
        let original = Json::obj([
            ("id", Json::Int(7)),
            ("op", Json::str("synth")),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("ratio", Json::Num(2.5)),
            ("tricky", Json::str("a\"b\\c\nd\te\u{1}f")),
            ("unicode", Json::str("péd — Δ")),
            (
                "nested",
                Json::Arr(vec![Json::Int(-3), Json::obj([("deep", Json::Arr(vec![]))])]),
            ),
        ]);
        let parsed = Json::parse(&original.to_string_pretty()).expect("round trip");
        assert_eq!(parsed, original);
    }

    #[test]
    fn to_line_is_compact_and_round_trips() {
        let value = Json::obj([
            ("id", Json::str("a b")),
            ("n", Json::Num(1.0)),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Null])),
            ("obj", Json::obj([("k", Json::Bool(false))])),
        ]);
        let line = value.to_line();
        assert!(!line.contains('\n'), "wire form must be one line");
        assert_eq!(line, r#"{"id":"a b","n":1.0,"arr":[1,null],"obj":{"k":false}}"#);
        assert_eq!(Json::parse(&line).expect("round trip"), value);
    }

    #[test]
    fn parse_accessors_read_request_fields() {
        let req = Json::parse(r#"{"id": 3, "op": "lint", "deadline_ms": 250, "x": 1.5}"#)
            .expect("valid request");
        assert_eq!(req.get("id").and_then(Json::as_int), Some(3));
        assert_eq!(req.get("op").and_then(Json::as_str), Some("lint"));
        assert_eq!(req.get("deadline_ms").and_then(Json::as_int), Some(250));
        assert_eq!(req.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(req.get("missing"), None);
    }

    #[test]
    fn parse_handles_escapes_and_surrogate_pairs() {
        let v = Json::parse(r#""\u0041\u00e9\ud83d\ude00\n\/""#).expect("escapes");
        assert_eq!(v, Json::str("Aé😀\n/"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "{\"a\" 1}",
            "\"unterminated",
            "nul",
            "01x",
            "1 2",
            "{\"a\": 1} trailing",
            "[1,]",
            "\"\\ud800\"", // lone surrogate
            "\"\\q\"",
            "- ",
            "1e999", // overflows to infinity
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_err(), "unbounded recursion on deep nesting");
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn parse_keeps_integers_and_floats_distinct() {
        assert_eq!(Json::parse("42"), Ok(Json::Int(42)));
        assert_eq!(Json::parse("-7"), Ok(Json::Int(-7)));
        assert_eq!(Json::parse("42.0"), Ok(Json::Num(42.0)));
        assert_eq!(Json::parse("1e3"), Ok(Json::Num(1000.0)));
    }
}
