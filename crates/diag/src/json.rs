//! Minimal JSON writer shared by `vase lint --format json` and the
//! benchmark reports (`vase-bench` re-exports this module).
//!
//! The offline build environment has no `serde_json`, and these tools
//! only ever *emit* JSON, so a tiny explicit value tree with a
//! pretty-printer covers everything needed. Keys keep insertion order
//! so reports diff cleanly run-over-run.

use std::fmt::Write as _;

use crate::diagnostic::{Diagnostic, Severity};

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i128),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Pretty-print with two-space indentation and a trailing newline,
    /// matching the layout `serde_json::to_string_pretty` produced for
    /// the earlier reports.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's float Display is the shortest round-trip
                    // form; force a decimal point so readers keep the
                    // value typed as a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One diagnostic as a JSON object. Synthetic (IR-level) spans carry
/// `null` line/column so consumers can distinguish "no source location"
/// from line 1.
pub fn diagnostic_to_json(d: &Diagnostic) -> Json {
    let (line, column) = if d.span.is_synthetic() {
        (Json::Null, Json::Null)
    } else {
        (Json::Int(d.span.start.line as i128), Json::Int(d.span.start.column as i128))
    };
    Json::obj([
        ("code", Json::str(d.code.as_str())),
        ("name", Json::str(d.code.name())),
        ("severity", Json::str(d.severity.to_string())),
        ("line", line),
        ("column", column),
        ("message", Json::str(&d.message)),
        ("notes", Json::Arr(d.notes.iter().map(Json::str).collect())),
    ])
}

/// The machine-readable lint report for one file.
pub fn report_to_json(file: &str, diags: &[Diagnostic]) -> Json {
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count() as i128;
    Json::obj([
        ("file", Json::str(file)),
        ("errors", Json::Int(count(Severity::Error))),
        ("warnings", Json::Int(count(Severity::Warning))),
        ("notes", Json::Int(count(Severity::Note))),
        ("diagnostics", Json::Arr(diags.iter().map(diagnostic_to_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Code;
    use vase_frontend::span::{Position, Span};

    #[test]
    fn diagnostics_serialize_with_span_or_null() {
        let p = Position { line: 3, column: 7, offset: 42 };
        let with_span = Diagnostic::new(Code::V012, "real vs bit")
            .with_span(Span { start: p, end: p })
            .with_note("declared here");
        let ir_level = Diagnostic::new(Code::I102, "port 1 of b4 undriven");
        let report = report_to_json("bad.vhd", &[with_span.clone(), ir_level]);
        let text = report.to_string_pretty();
        assert!(text.contains("\"file\": \"bad.vhd\""));
        assert!(text.contains("\"errors\": 2"));
        assert!(text.contains("\"warnings\": 0"));
        assert!(text.contains("\"code\": \"V012\""));
        assert!(text.contains("\"name\": \"type-mismatch\""));
        assert!(text.contains("\"line\": 3"));
        assert!(text.contains("\"column\": 7"));
        assert!(text.contains("\"notes\": [\n"));
        // the IR-level diagnostic has null position
        assert!(text.contains("\"line\": null"));
    }

    #[test]
    fn renders_nested_report_shape() {
        let report = Json::obj([
            ("benchmark", Json::str("demo")),
            ("jobs", Json::Int(4)),
            ("ok", Json::Bool(true)),
            (
                "apps",
                Json::Arr(vec![Json::obj([
                    ("name", Json::str("a\"b")),
                    ("speedup", Json::Num(2.0)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = report.to_string_pretty();
        assert!(text.starts_with("{\n  \"benchmark\": \"demo\""));
        assert!(text.contains("\"jobs\": 4"));
        assert!(text.contains("\"name\": \"a\\\"b\""));
        assert!(text.contains("\"speedup\": 2.0"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    /// The emitted text is machine-parseable JSON: balanced braces and
    /// brackets outside strings, terminated strings, no NaN/Infinity
    /// tokens — checked against the report shape the bench binaries
    /// emit, without needing a JSON parser.
    #[test]
    fn report_output_is_well_formed() {
        let text = Json::obj([
            ("benchmark", Json::str("sim")),
            ("jobs", Json::Int(4)),
            (
                "apps",
                Json::Arr(vec![Json::obj([
                    ("application", Json::str("receiver \"v2\"")),
                    ("steps_per_second", Json::Num(1.25e6)),
                    ("speedup", Json::Num(f64::NAN)), // must become null
                ])]),
            ),
        ])
        .to_string_pretty();
        assert!(text.starts_with('{') && text.ends_with("}\n"));
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in text.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in:\n{text}");
        }
        assert_eq!(depth, 0, "unbalanced JSON:\n{text}");
        assert!(!in_str, "unterminated string:\n{text}");
        for banned in ["NaN", "Infinity"] {
            assert!(!text.contains(banned), "non-JSON token `{banned}`:\n{text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).to_string_pretty(), "null\n");
        assert_eq!(Json::Num(1.5).to_string_pretty(), "1.5\n");
    }
}
