//! The diagnostic value type and helpers over collections of them.

use std::fmt;

use vase_frontend::span::Span;

use crate::code::Code;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational (optimization-pass reports); never promoted
    /// and never counted against the flow.
    Note,
    /// Reported, but does not by itself stop the flow (unless promoted
    /// with `--deny warnings`).
    Warning,
    /// Stops the flow: the design is not synthesized.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic: a stable code, a severity, a source location, a
/// message, and optional notes adding structural context (block ids,
/// FSM state names, propagated intervals).
///
/// # Examples
///
/// ```
/// use vase_diag::{Code, Diagnostic, Severity};
///
/// let d = Diagnostic::new(Code::I102, "input port 1 of b3 (sh) has no driver")
///     .with_note("graph `main`");
/// assert_eq!(d.severity, Severity::Error);
/// assert!(d.span.is_synthetic()); // IR-level: no source span
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code (see [`crate::code::REGISTRY`]).
    pub code: Code,
    /// Severity; starts at the code's default, promotable.
    pub severity: Severity,
    /// Source location; [`Span::synthetic`] for IR-level findings.
    pub span: Span,
    /// Human-readable description of the problem.
    pub message: String,
    /// Extra context lines rendered after the caret excerpt.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and a synthetic
    /// (no-source) span.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span: Span::synthetic(),
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Append a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Whether this diagnostic is (currently) an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

/// `Display` is the single-line form `severity[code] at loc: message`
/// used when no source text is available for caret rendering.
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if !self.span.is_synthetic() {
            write!(f, " at {}", self.span)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Sort diagnostics for reporting: source-anchored ones first in file
/// order, then IR-level (synthetic-span) ones, ties broken by code.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by_key(|d| {
        (d.span.is_synthetic(), d.span.start.offset, d.span.start.line, d.code)
    });
}

/// Whether any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Promote every warning to an error (`--deny warnings`). Notes are
/// informational and stay notes.
pub fn deny_warnings(diags: &mut [Diagnostic]) {
    for d in diags {
        if d.severity == Severity::Warning {
            d.severity = Severity::Error;
        }
    }
}

/// A one-line count summary, e.g. `"2 errors, 1 warning"`; empty string
/// when there are no diagnostics. Notes are listed only when present.
pub fn summary(diags: &[Diagnostic]) -> String {
    let count =
        |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    let errors = count(Severity::Error);
    let warnings = count(Severity::Warning);
    let notes = count(Severity::Note);
    let plural = |n: usize, word: &str| {
        format!("{n} {word}{}", if n == 1 { "" } else { "s" })
    };
    let mut parts = Vec::new();
    if errors > 0 {
        parts.push(plural(errors, "error"));
    }
    if warnings > 0 {
        parts.push(plural(warnings, "warning"));
    }
    if notes > 0 {
        parts.push(plural(notes, "note"));
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vase_frontend::span::Position;

    fn at(line: u32, column: u32) -> Span {
        let p = Position { line, column, offset: (line - 1) * 100 + column };
        Span { start: p, end: p }
    }

    #[test]
    fn builder_defaults_from_code() {
        let d = Diagnostic::new(Code::A200, "x / y may divide by zero");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.span.is_synthetic());
        let d = d.with_span(at(3, 7)).with_note("divisor interval [-1, 1]");
        assert!(!d.span.is_synthetic());
        assert_eq!(d.notes.len(), 1);
        assert!(!d.is_error());
        assert!(Diagnostic::new(Code::V013, "wait").is_error());
    }

    #[test]
    fn display_single_line() {
        let d = Diagnostic::new(Code::V010, "no `x`").with_span(at(2, 5));
        assert_eq!(d.to_string(), "error[V010] at 2:5: no `x`");
        let d = Diagnostic::new(Code::I103, "loop through b2");
        assert_eq!(d.to_string(), "error[I103]: loop through b2");
    }

    #[test]
    fn sort_puts_source_spans_first_in_file_order() {
        let mut v = vec![
            Diagnostic::new(Code::I102, "ir"),
            Diagnostic::new(Code::V012, "late").with_span(at(9, 1)),
            Diagnostic::new(Code::V010, "early").with_span(at(1, 2)),
        ];
        sort(&mut v);
        assert_eq!(v[0].message, "early");
        assert_eq!(v[1].message, "late");
        assert_eq!(v[2].message, "ir");
    }

    #[test]
    fn deny_warnings_promotes_and_summary_counts() {
        let mut v = vec![
            Diagnostic::new(Code::A200, "w"),
            Diagnostic::new(Code::V013, "e"),
        ];
        assert!(has_errors(&v));
        assert_eq!(summary(&v), "1 error, 1 warning");
        deny_warnings(&mut v);
        assert!(v.iter().all(Diagnostic::is_error));
        assert_eq!(summary(&v), "2 errors");
        assert_eq!(summary(&[]), "");
    }

    #[test]
    fn notes_are_never_promoted_and_counted_separately() {
        let mut v = vec![
            Diagnostic::new(Code::O303, "removed 3 dead blocks"),
            Diagnostic::new(Code::A200, "w"),
        ];
        assert_eq!(v[0].severity, Severity::Note);
        assert!(!has_errors(&v));
        assert_eq!(summary(&v), "1 warning, 1 note");
        deny_warnings(&mut v);
        assert_eq!(v[0].severity, Severity::Note, "notes stay notes");
        assert_eq!(v[1].severity, Severity::Error);
        assert_eq!(summary(&v), "1 error, 1 note");
    }
}
