//! Text rendering of diagnostics with source-line caret excerpts.

use crate::diagnostic::Diagnostic;

/// Render one diagnostic against its source text:
///
/// ```text
/// error[V013]: `wait` statements are not allowed ...
///   --> bad.vhd:7:9
///    |
///  7 |         wait;
///    |         ^^^^^
///    = note: ...
/// ```
///
/// Diagnostics with synthetic spans (IR-level findings) skip the
/// excerpt and keep only the header and notes.
pub fn render(diag: &Diagnostic, source: &str, file: &str) -> String {
    let mut out = format!("{}[{}]: {}\n", diag.severity, diag.code, diag.message);
    if !diag.span.is_synthetic() {
        let line_no = diag.span.start.line;
        let col = diag.span.start.column.max(1) as usize;
        out.push_str(&format!("  --> {file}:{line_no}:{col}\n"));
        if let Some(line) = source.lines().nth(line_no.saturating_sub(1) as usize) {
            let gutter = line_no.to_string();
            let pad = " ".repeat(gutter.len());
            let width = caret_width(diag, line, col);
            out.push_str(&format!(" {pad} |\n"));
            out.push_str(&format!(" {gutter} | {line}\n"));
            out.push_str(&format!(" {pad} | {}{}\n", " ".repeat(col - 1), "^".repeat(width)));
        }
    }
    for note in &diag.notes {
        out.push_str(&format!("   = note: {note}\n"));
    }
    out
}

/// How many carets to draw: the span width when it stays on one line,
/// clamped to the visible remainder of the line, at least one.
fn caret_width(diag: &Diagnostic, line: &str, col: usize) -> usize {
    let span = diag.span;
    let width = if span.end.line == span.start.line && span.end.column > span.start.column {
        (span.end.column - span.start.column) as usize
    } else {
        1
    };
    let remaining = line.chars().count().saturating_sub(col - 1).max(1);
    width.min(remaining)
}

/// Render a whole listing: every diagnostic in order, then a count
/// summary line when anything was reported.
pub fn render_all(diags: &[Diagnostic], source: &str, file: &str) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render(d, source, file));
    }
    let summary = crate::diagnostic::summary(diags);
    if !summary.is_empty() {
        out.push_str(&format!("{file}: {summary}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Code;
    use vase_frontend::span::{Position, Span};

    fn span(line: u32, col: u32, width: u32) -> Span {
        let start = Position { line, column: col, offset: 0 };
        let end = Position { line, column: col + width, offset: width };
        Span { start, end }
    }

    #[test]
    fn caret_under_the_offending_token() {
        let source = "entity e is\n  port (x : in real);\nend entity;\n";
        let d = Diagnostic::new(Code::V010, "undeclared name `x`").with_span(span(2, 9, 1));
        let text = render(&d, source, "t.vhd");
        assert!(text.contains("error[V010]: undeclared name `x`"));
        assert!(text.contains("--> t.vhd:2:9"));
        assert!(text.contains(" 2 |   port (x : in real);"));
        let caret_line = text.lines().find(|l| l.contains('^')).expect("caret line");
        assert_eq!(caret_line.find('^'), Some(" 2 | ".len() + 8));
    }

    #[test]
    fn multi_column_span_draws_wide_caret() {
        let source = "y == x / z;\n";
        let d = Diagnostic::new(Code::A200, "divisor may be zero")
            .with_span(span(1, 6, 5))
            .with_note("divisor interval [-1, 1]");
        let text = render(&d, source, "t.vhd");
        assert!(text.contains("^^^^^"), "{text}");
        assert!(text.contains("= note: divisor interval [-1, 1]"));
    }

    #[test]
    fn synthetic_span_skips_excerpt() {
        let d = Diagnostic::new(Code::I103, "combinational cycle through b2")
            .with_note("graph `main`");
        let text = render(&d, "whatever", "t.vhd");
        assert!(!text.contains("-->"));
        assert!(!text.contains('^'));
        assert!(text.contains("note: graph `main`"));
    }

    #[test]
    fn caret_clamped_to_line_end() {
        let source = "short\n";
        let d = Diagnostic::new(Code::V002, "eof").with_span(span(1, 5, 40));
        let text = render(&d, source, "t.vhd");
        let caret_line = text.lines().find(|l| l.contains('^')).expect("caret line");
        assert_eq!(caret_line.matches('^').count(), 1);
    }

    #[test]
    fn render_all_appends_summary() {
        let source = "x\n";
        let diags = vec![
            Diagnostic::new(Code::V010, "a").with_span(span(1, 1, 1)),
            Diagnostic::new(Code::A200, "b"),
        ];
        let text = render_all(&diags, source, "t.vhd");
        assert!(text.ends_with("t.vhd: 1 error, 1 warning\n"), "{text}");
        assert_eq!(render_all(&[], source, "t.vhd"), "");
    }
}
