//! Regenerate the lint-code reference table:
//!
//! ```text
//! cargo run -p vase-diag --example gen_lint_codes > docs/lint-codes.md
//! ```

fn main() {
    print!("{}", vase_diag::reference_markdown());
}
