//! The service loop: a bounded job queue feeding a fixed worker pool,
//! with a deadline watchdog and per-job panic isolation.
//!
//! The failure model (DESIGN.md §14) in one paragraph: every job runs
//! under `catch_unwind`, so a panicking handler degrades exactly one
//! response to `panicked` and the pool keeps serving; every job
//! carries a [`CancelToken`] that a watchdog thread trips when the
//! job's wall-clock deadline passes, turning the response into
//! `deadline-exceeded` (A220) with whatever best-so-far results the
//! handler salvaged; and requests beyond the bounded queue's depth are
//! shed immediately as `overloaded` (A221) with a retry-after hint
//! instead of growing the queue without bound.

use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use vase_budget::CancelToken;
use vase_diag::json::Json;
use vase_diag::{Code, Diagnostic};

use crate::inject::{Fault, FaultPlan};
use crate::proto::{exit_for_status, Op, Request, Response};

/// What one job produced. The server owns status → exit mapping and
/// the deadline/panic overrides; handlers only describe their result.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// `ok`, `budget-exhausted`, or `error` (empty means `ok`).
    pub status: String,
    /// Hard-failure description when `status` is `error`.
    pub error: Option<String>,
    /// Flow diagnostics, in report order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-design result objects (op-specific shape).
    pub designs: Vec<Json>,
    /// Per-phase timings object, [`Json::Null`] when not measured.
    pub timings: Json,
}

impl JobOutput {
    /// An empty `ok` output.
    pub fn ok() -> JobOutput {
        JobOutput {
            status: "ok".into(),
            error: None,
            diagnostics: Vec::new(),
            designs: Vec::new(),
            timings: Json::Null,
        }
    }

    /// An `error` output with a description.
    pub fn error(message: impl Into<String>) -> JobOutput {
        JobOutput { status: "error".into(), error: Some(message.into()), ..JobOutput::ok() }
    }
}

/// What the server runs per request. Implementations must be
/// panic-tolerant in aggregate (the server isolates each call) and
/// check the token cooperatively so deadlines actually stop work.
pub trait JobHandler: Sync {
    /// Run one job. `deadline_ms` is the effective deadline (request
    /// override or server default) so handlers can derive an internal
    /// [`vase_budget::Budget`] from it; the `token` is tripped by the
    /// watchdog when that deadline passes.
    fn handle(&self, request: &Request, token: &CancelToken, deadline_ms: Option<u64>)
        -> JobOutput;

    /// Persist warm state (caches). Called between jobs on the
    /// snapshot cadence and once at shutdown; must be atomic against
    /// `kill -9` (write-temp-then-rename).
    fn snapshot(&self) {}
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before shedding.
    pub queue_depth: usize,
    /// Default per-job deadline when a request does not set one.
    pub default_deadline_ms: Option<u64>,
    /// Call [`JobHandler::snapshot`] every N completed jobs
    /// (0 = only at shutdown).
    pub snapshot_every: u64,
    /// Armed fault schedule (tests and `--inject`).
    pub inject: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            default_deadline_ms: None,
            snapshot_every: 0,
            inject: None,
        }
    }
}

/// What happened over one [`serve`] session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Request lines read (including malformed and shed ones).
    pub requests: u64,
    /// Response lines written.
    pub responses: u64,
    /// Jobs that ran to completion on a worker.
    pub completed: u64,
    /// Requests shed with `overloaded` (A221).
    pub shed: u64,
    /// Jobs whose handler panicked (isolated to their response).
    pub panicked: u64,
    /// Jobs stopped by the deadline watchdog (A220).
    pub deadline_hits: u64,
    /// Lines that failed to parse as requests.
    pub malformed: u64,
    /// Whether a `shutdown` op (rather than EOF) ended the session.
    pub shutdown: bool,
}

/// How often the watchdog rescans active jobs for expired deadlines.
const WATCHDOG_TICK: Duration = Duration::from_millis(2);

/// Deterministic backpressure hint: long enough for one queue depth's
/// worth of typical jobs to drain.
fn retry_after_ms(queue_depth: usize) -> u64 {
    25 * (queue_depth as u64 + 1)
}

struct Job {
    request: Request,
    fault: Option<Fault>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct ActiveJob {
    token: CancelToken,
    deadline: Option<Instant>,
    fired: Arc<AtomicBool>,
}

struct Counters {
    completed: AtomicU64,
    shed: AtomicU64,
    panicked: AtomicU64,
    deadline_hits: AtomicU64,
    responses: AtomicU64,
}

struct Shared<'h, W: Write> {
    handler: &'h dyn JobHandler,
    writer: Mutex<W>,
    queue: Mutex<QueueState>,
    ready: Condvar,
    active: Mutex<Vec<Option<ActiveJob>>>,
    counters: Counters,
    workers_done: AtomicBool,
    default_deadline_ms: Option<u64>,
    snapshot_every: u64,
}

/// Poison-proof lock: a worker panic is already isolated by
/// `catch_unwind`, so a poisoned mutex only means "a panic happened
/// nearby", never that the data is torn.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<W: Write> Shared<'_, W> {
    /// Write one response line. Client-side write failures (a hung-up
    /// pipe) are swallowed: a dead client must not kill the daemon.
    fn respond(&self, response: &Response) {
        let line = response.to_json().to_line();
        let mut w = relock(&self.writer);
        if writeln!(w, "{line}").is_ok() {
            let _ = w.flush();
        }
        self.counters.responses.fetch_add(1, Ordering::Relaxed);
    }

    /// [`JobHandler::snapshot`] under `catch_unwind`: persistence
    /// trouble degrades the snapshot, never the daemon.
    fn snapshot_guarded(&self) {
        let _ = catch_unwind(AssertUnwindSafe(|| self.handler.snapshot()));
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

fn run_job<W: Write>(shared: &Shared<'_, W>, slot: usize, job: Job) -> Response {
    let started = Instant::now();
    let token = CancelToken::new();
    let fired = Arc::new(AtomicBool::new(false));
    let deadline_ms = job.request.deadline_ms.or(shared.default_deadline_ms);
    if job.fault == Some(Fault::Timeout) {
        // Injected timeout: behave exactly as if the watchdog had
        // already fired, without waiting out a real deadline.
        token.cancel();
        fired.store(true, Ordering::Relaxed);
    }
    relock(&shared.active)[slot] = Some(ActiveJob {
        token: token.clone(),
        deadline: deadline_ms.map(|ms| started + Duration::from_millis(ms)),
        fired: Arc::clone(&fired),
    });
    let inject_panic = job.fault == Some(Fault::Panic);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected fault: worker panic");
        }
        shared.handler.handle(&job.request, &token, deadline_ms)
    }));
    relock(&shared.active)[slot] = None;

    let mut response = match outcome {
        Ok(output) => {
            let status = if output.status.is_empty() { "ok".to_owned() } else { output.status };
            Response {
                id: job.request.id.clone(),
                exit: exit_for_status(&status),
                status,
                retry_after_ms: None,
                error: output.error,
                diagnostics: output.diagnostics,
                designs: output.designs,
                timings: output.timings,
                elapsed_ms: 0.0,
            }
        }
        Err(payload) => {
            shared.counters.panicked.fetch_add(1, Ordering::Relaxed);
            let mut r = Response::bare(job.request.id.clone(), "panicked");
            r.error = Some(panic_message(payload));
            r
        }
    };
    // A fired deadline downgrades an otherwise-successful job to
    // best-so-far (A220). A panic stays a panic: it is the harder
    // failure and its response must say so.
    if fired.load(Ordering::Relaxed) && response.status != "panicked" {
        shared.counters.deadline_hits.fetch_add(1, Ordering::Relaxed);
        response.status = "deadline-exceeded".into();
        response.exit = exit_for_status(&response.status);
        response.diagnostics.push(Diagnostic::new(
            Code::A220,
            format!(
                "job deadline of {} ms exceeded; returning best-so-far partial results",
                deadline_ms.unwrap_or(0)
            ),
        ));
    }
    response.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    response
}

fn worker<W: Write>(shared: &Shared<'_, W>, slot: usize) {
    loop {
        let job = {
            let mut q = relock(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.closed {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let response = run_job(shared, slot, job);
        shared.respond(&response);
        let done = shared.counters.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if shared.snapshot_every > 0 && done.is_multiple_of(shared.snapshot_every) {
            shared.snapshot_guarded();
        }
    }
}

fn watchdog<W: Write>(shared: &Shared<'_, W>) {
    while !shared.workers_done.load(Ordering::Relaxed) {
        std::thread::sleep(WATCHDOG_TICK);
        let now = Instant::now();
        for slot in relock(&shared.active).iter() {
            let Some(active) = slot else { continue };
            let Some(deadline) = active.deadline else { continue };
            if now >= deadline && !active.fired.swap(true, Ordering::Relaxed) {
                active.token.cancel();
            }
        }
    }
}

/// Run the service loop over a newline-delimited JSON request stream
/// until EOF or a `shutdown` op, answering on `writer`. Responses are
/// id-correlated and may complete out of order. Designed to run
/// equally over stdin/stdout, a Unix-socket connection, or in-process
/// byte buffers (tests and the soak harness).
///
/// # Errors
///
/// Only reader I/O errors propagate; handler panics, deadline hits,
/// malformed lines, and client write failures each degrade exactly
/// one response.
pub fn serve<R, W, H>(
    reader: R,
    writer: W,
    handler: &H,
    config: ServerConfig,
) -> io::Result<ServeStats>
where
    R: BufRead,
    W: Write + Send,
    H: JobHandler,
{
    let mut stats = ServeStats::default();
    let mut inject = config.inject.clone();
    let shared = Shared {
        handler,
        writer: Mutex::new(writer),
        queue: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
        ready: Condvar::new(),
        active: Mutex::new((0..config.workers.max(1)).map(|_| None).collect()),
        counters: Counters {
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            deadline_hits: AtomicU64::new(0),
            responses: AtomicU64::new(0),
        },
        workers_done: AtomicBool::new(false),
        default_deadline_ms: config.default_deadline_ms,
        snapshot_every: config.snapshot_every,
    };

    let mut read_result: io::Result<()> = Ok(());
    std::thread::scope(|scope| {
        let shared = &shared;
        let workers: Vec<_> = (0..config.workers.max(1))
            .map(|slot| scope.spawn(move || worker(shared, slot)))
            .collect();
        let dog = scope.spawn(move || watchdog(shared));

        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    read_result = Err(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            stats.requests += 1;
            let fault = inject.as_mut().and_then(FaultPlan::draw);
            let effective =
                if fault == Some(Fault::Malformed) { FaultPlan::corrupt(&line) } else { line };
            let request = match Request::parse(&effective) {
                Ok(r) => r,
                Err(e) => {
                    stats.malformed += 1;
                    let mut r = Response::bare(e.id, "malformed");
                    r.error = Some(e.message);
                    shared.respond(&r);
                    continue;
                }
            };
            match request.op {
                // Control ops are answered by the reader itself: a
                // probe must succeed even when every worker is busy.
                Op::Ping => shared.respond(&Response::bare(request.id, "ok")),
                Op::Shutdown => {
                    stats.shutdown = true;
                    shared.respond(&Response::bare(request.id, "ok"));
                    break;
                }
                _ => {
                    let mut q = relock(&shared.queue);
                    if q.jobs.len() >= config.queue_depth {
                        drop(q);
                        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                        let mut r = Response::bare(request.id, "overloaded");
                        let hint = retry_after_ms(config.queue_depth);
                        r.retry_after_ms = Some(hint);
                        r.diagnostics.push(Diagnostic::new(
                            Code::A221,
                            format!(
                                "service overloaded: queue depth {} reached; \
                                 retry in {hint} ms",
                                config.queue_depth
                            ),
                        ));
                        shared.respond(&r);
                    } else {
                        q.jobs.push_back(Job { request, fault });
                        drop(q);
                        shared.ready.notify_one();
                    }
                }
            }
        }

        relock(&shared.queue).closed = true;
        shared.ready.notify_all();
        for w in workers {
            let _ = w.join();
        }
        shared.workers_done.store(true, Ordering::Relaxed);
        let _ = dog.join();
    });

    // Warm state survives restarts: one last crash-safe snapshot on
    // every clean exit path (EOF and shutdown alike).
    shared.snapshot_guarded();
    stats.responses = shared.counters.responses.load(Ordering::Relaxed);
    stats.completed = shared.counters.completed.load(Ordering::Relaxed);
    stats.shed = shared.counters.shed.load(Ordering::Relaxed);
    stats.panicked = shared.counters.panicked.load(Ordering::Relaxed);
    stats.deadline_hits = shared.counters.deadline_hits.load(Ordering::Relaxed);
    read_result?;
    Ok(stats)
}
