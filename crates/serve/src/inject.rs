//! Deterministic fault injection for resilience testing.
//!
//! `--inject panic:2,timeout:1,malformed:3` arms the server with
//! fault budgets; which request each fault lands on is drawn from a
//! SplitMix64 stream, so a given `(spec, seed)` pair replays the same
//! fault schedule on every run. Counts are maxima: a fault kind stops
//! firing once its budget is spent, and a short request stream may
//! leave part of a budget undrawn.

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker panics inside its `catch_unwind` before running the
    /// job (exercises panic isolation).
    Panic,
    /// The job's cancel token is tripped immediately and the deadline
    /// is marked fired (exercises the A220 best-so-far path without
    /// waiting out a real deadline).
    Timeout,
    /// The request line is corrupted before parsing (exercises the
    /// malformed-request path).
    Malformed,
}

/// SplitMix64 (Steele, Lea & Flood 2014) — the same offline PRNG the
/// simulator and benchmark crates use; fault schedules must be
/// bit-reproducible from their seed with no external `rand`.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// An armed fault schedule: per-kind budgets plus the seeded stream
/// that decides which requests draw a fault.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SplitMix64,
    panic_left: u64,
    timeout_left: u64,
    malformed_left: u64,
}

impl FaultPlan {
    /// Parse an `--inject` spec: comma-separated `kind:count` pairs
    /// with kinds `panic`, `timeout`, `malformed`.
    ///
    /// # Errors
    ///
    /// A message describing the first bad pair.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            rng: SplitMix64::new(seed),
            panic_left: 0,
            timeout_left: 0,
            malformed_left: 0,
        };
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let Some((kind, count)) = part.split_once(':') else {
                return Err(format!("bad --inject entry `{part}` (want kind:count)"));
            };
            let n: u64 = count
                .parse()
                .map_err(|e| format!("bad --inject count in `{part}`: {e}"))?;
            match kind {
                "panic" => plan.panic_left += n,
                "timeout" => plan.timeout_left += n,
                "malformed" => plan.malformed_left += n,
                other => {
                    return Err(format!(
                        "unknown --inject kind `{other}` (panic, timeout, malformed)"
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Whether any fault budget remains.
    pub fn is_exhausted(&self) -> bool {
        self.panic_left == 0 && self.timeout_left == 0 && self.malformed_left == 0
    }

    /// Draw the fault (if any) for the next arriving request. One
    /// stream step per request keeps the schedule a pure function of
    /// `(spec, seed, arrival index)`.
    pub fn draw(&mut self) -> Option<Fault> {
        if self.is_exhausted() {
            return None;
        }
        // One lane per fault kind plus an empty lane, so roughly 3 of
        // 4 requests pass through unfaulted while budgets last.
        let (fault, left) = match self.rng.next_u64() % 4 {
            0 => (Fault::Panic, &mut self.panic_left),
            1 => (Fault::Timeout, &mut self.timeout_left),
            2 => (Fault::Malformed, &mut self.malformed_left),
            _ => return None,
        };
        if *left == 0 {
            return None;
        }
        *left -= 1;
        Some(fault)
    }

    /// Corrupt a request line (the [`Fault::Malformed`] action):
    /// truncating at half keeps the prefix of a JSON object, which is
    /// never itself valid JSON.
    pub fn corrupt(line: &str) -> String {
        let mut cut = line.len() / 2;
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}\u{7f}", &line[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_specs_and_rejects_garbage() {
        let p = FaultPlan::parse("panic:2,timeout:1,malformed:3", 1).expect("valid spec");
        assert_eq!((p.panic_left, p.timeout_left, p.malformed_left), (2, 1, 3));
        assert!(FaultPlan::parse("", 1).expect("empty spec").is_exhausted());
        assert!(FaultPlan::parse("panic", 1).is_err());
        assert!(FaultPlan::parse("panic:x", 1).is_err());
        assert!(FaultPlan::parse("abort:1", 1).is_err());
    }

    #[test]
    fn schedules_replay_bit_identically_per_seed() {
        let draw_all = |seed: u64| -> Vec<Option<Fault>> {
            let mut p = FaultPlan::parse("panic:3,timeout:3,malformed:3", seed).expect("spec");
            (0..64).map(|_| p.draw()).collect()
        };
        assert_eq!(draw_all(42), draw_all(42));
        assert_ne!(draw_all(42), draw_all(43), "different seeds shuffle the schedule");
    }

    #[test]
    fn budgets_are_hard_caps() {
        let mut p = FaultPlan::parse("panic:1", 7).expect("spec");
        let fired: Vec<Fault> = (0..256).filter_map(|_| p.draw()).collect();
        assert_eq!(fired, vec![Fault::Panic], "exactly the budgeted fault fires");
        assert!(p.is_exhausted());
    }

    #[test]
    fn corrupt_always_breaks_a_request_object() {
        for line in [r#"{"op":"ping"}"#, "{}", r#"{"id":"péd","op":"synth"}"#] {
            let bad = FaultPlan::corrupt(line);
            assert!(
                vase_diag::json::Json::parse(&bad).is_err(),
                "corrupted `{bad}` still parsed"
            );
        }
    }
}
