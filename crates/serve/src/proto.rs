//! The newline-delimited JSON wire protocol of `vase serve`.
//!
//! One request per line in, one response per line out. Requests are
//! JSON objects; every response echoes the request's `id` verbatim so
//! clients can correlate out-of-order completions. A malformed line
//! degrades to a single `malformed` response — it never takes the
//! service down.

use std::fmt;

use vase_diag::json::{diagnostic_to_json, Json};
use vase_diag::Diagnostic;

/// The operations a request can ask for, mirroring the CLI
/// subcommands they reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; answered by the server itself.
    Ping,
    /// Frontend + semantic checks only (`vase lint`).
    Lint,
    /// Range analysis over the compiled design (`vase analyze`).
    Analyze,
    /// Full synthesis to a netlist (`vase synth`).
    Synth,
    /// Synthesis followed by transient simulation (`vase sim`).
    Sim,
    /// Drain the queue, snapshot warm state, and exit cleanly.
    Shutdown,
}

impl Op {
    /// Parse the request's `op` field.
    pub fn parse(s: &str) -> Option<Op> {
        Some(match s {
            "ping" => Op::Ping,
            "lint" => Op::Lint,
            "analyze" => Op::Analyze,
            "synth" => Op::Synth,
            "sim" => Op::Sim,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Ping => "ping",
            Op::Lint => "lint",
            Op::Analyze => "analyze",
            Op::Synth => "synth",
            Op::Sim => "sim",
            Op::Shutdown => "shutdown",
        })
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed verbatim ([`Json::Null`] when
    /// absent).
    pub id: Json,
    /// What to do.
    pub op: Op,
    /// Inline VHDL-AMS source text.
    pub source: Option<String>,
    /// Path of a source file to read instead of `source`.
    pub path: Option<String>,
    /// Per-job wall-clock deadline in milliseconds; overrides the
    /// server default when present.
    pub deadline_ms: Option<u64>,
    /// Optimization level (`-O0`..`-O2`); server default when absent.
    pub opt_level: Option<u8>,
    /// Simulation end time in seconds (`sim` op only).
    pub tend: Option<f64>,
    /// Simulation step in seconds (`sim` op only).
    pub dt: Option<f64>,
}

/// Why a request line could not become a [`Request`]. Carries the
/// `id` if one was recovered, so the error response still correlates.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Echoed id ([`Json::Null`] when unrecoverable).
    pub id: Json,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Request {
    /// Parse one request line. Never panics on any input.
    pub fn parse(line: &str) -> Result<Request, RequestError> {
        let bad = |id: Json, message: String| Err(RequestError { id, message });
        let value = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return bad(Json::Null, format!("malformed request: {e}")),
        };
        let Json::Obj(_) = value else {
            return bad(Json::Null, "request must be a JSON object".into());
        };
        let id = value.get("id").cloned().unwrap_or(Json::Null);
        let Some(op_str) = value.get("op").and_then(Json::as_str) else {
            return bad(id, "request is missing a string `op` field".into());
        };
        let Some(op) = Op::parse(op_str) else {
            return bad(
                id,
                format!("unknown op `{op_str}` (ping, lint, analyze, synth, sim, shutdown)"),
            );
        };
        let int_field = |name: &str| -> Result<Option<u64>, RequestError> {
            match value.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => match v.as_int() {
                    Some(n) if n >= 0 => Ok(Some(n as u64)),
                    _ => Err(RequestError {
                        id: id.clone(),
                        message: format!("`{name}` must be a non-negative integer"),
                    }),
                },
            }
        };
        let num_field = |name: &str| -> Result<Option<f64>, RequestError> {
            match value.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => match v.as_f64() {
                    Some(x) if x.is_finite() && x > 0.0 => Ok(Some(x)),
                    _ => Err(RequestError {
                        id: id.clone(),
                        message: format!("`{name}` must be a positive number"),
                    }),
                },
            }
        };
        let request = Request {
            id: id.clone(),
            op,
            source: value.get("source").and_then(Json::as_str).map(str::to_owned),
            path: value.get("path").and_then(Json::as_str).map(str::to_owned),
            deadline_ms: int_field("deadline_ms")?,
            opt_level: match int_field("opt_level")? {
                Some(n) if n <= 2 => Some(n as u8),
                Some(n) => {
                    return bad(id, format!("`opt_level` must be 0..=2, got {n}"));
                }
                None => None,
            },
            tend: num_field("tend")?,
            dt: num_field("dt")?,
        };
        Ok(request)
    }
}

/// One response line. The `status` vocabulary and its exit mapping
/// reuse the CLI's per-design contract (0 ok / 1 hard fail / 3
/// degraded) so a serve client and a batch caller read the same
/// statuses.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's `id`, echoed verbatim.
    pub id: Json,
    /// `ok`, `budget-exhausted`, `deadline-exceeded`, `overloaded`,
    /// `error`, `panicked`, or `malformed`.
    pub status: String,
    /// The exit code the CLI would have returned for this outcome.
    pub exit: u8,
    /// Backpressure hint: retry after this many milliseconds
    /// (`overloaded` responses only).
    pub retry_after_ms: Option<u64>,
    /// Hard-failure description (`error`/`panicked`/`malformed`).
    pub error: Option<String>,
    /// Flow diagnostics, in report order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-design result objects (op-specific shape).
    pub designs: Vec<Json>,
    /// Per-phase wall-clock timings object ([`Json::Null`] when the
    /// job never ran).
    pub timings: Json,
    /// End-to-end service time for this request in milliseconds.
    pub elapsed_ms: f64,
}

/// Exit code for a response status, mirroring the CLI contract.
pub fn exit_for_status(status: &str) -> u8 {
    match status {
        "ok" => 0,
        // Degraded-but-usable results: best-so-far under a budget or
        // deadline, or shed load the client should retry.
        "budget-exhausted" | "deadline-exceeded" | "overloaded" => 3,
        // error | panicked | malformed
        _ => 1,
    }
}

impl Response {
    /// A response with nothing but an id and a status; callers fill
    /// in the rest.
    pub fn bare(id: Json, status: &str) -> Response {
        Response {
            id,
            status: status.to_owned(),
            exit: exit_for_status(status),
            retry_after_ms: None,
            error: None,
            diagnostics: Vec::new(),
            designs: Vec::new(),
            timings: Json::Null,
            elapsed_ms: 0.0,
        }
    }

    /// Render as the single-line JSON wire form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", self.id.clone()),
            ("status", Json::str(&self.status)),
            ("exit", Json::Int(self.exit as i128)),
        ];
        if let Some(ms) = self.retry_after_ms {
            fields.push(("retry_after_ms", Json::Int(ms as i128)));
        }
        if let Some(e) = &self.error {
            fields.push(("error", Json::str(e)));
        }
        fields.push((
            "diagnostics",
            Json::Arr(self.diagnostics.iter().map(diagnostic_to_json).collect()),
        ));
        fields.push(("designs", Json::Arr(self.designs.clone())));
        fields.push(("timings", self.timings.clone()));
        fields.push(("elapsed_ms", Json::Num(self.elapsed_ms)));
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = Request::parse(
            r#"{"id": 7, "op": "synth", "source": "entity e is end;", "deadline_ms": 250, "opt_level": 2}"#,
        )
        .expect("parses");
        assert_eq!(r.id, Json::Int(7));
        assert_eq!(r.op, Op::Synth);
        assert_eq!(r.source.as_deref(), Some("entity e is end;"));
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.opt_level, Some(2));
        assert_eq!(r.tend, None);
    }

    #[test]
    fn malformed_lines_degrade_to_errors_not_panics() {
        for line in ["", "{", "[1,2]", "42", r#"{"op": 3}"#, r#"{"op": "fry"}"#] {
            let e = Request::parse(line).expect_err(line);
            assert!(!e.message.is_empty());
        }
        // A recoverable id still correlates the error response.
        let e = Request::parse(r#"{"id": "j1", "op": "nope"}"#).expect_err("bad op");
        assert_eq!(e.id, Json::str("j1"));
    }

    #[test]
    fn rejects_bad_field_types_with_the_id_attached() {
        let e = Request::parse(r#"{"id": 1, "op": "synth", "deadline_ms": -4}"#)
            .expect_err("negative deadline");
        assert_eq!(e.id, Json::Int(1));
        let e = Request::parse(r#"{"id": 1, "op": "synth", "opt_level": 9}"#)
            .expect_err("opt level out of range");
        assert!(e.message.contains("opt_level"));
        let e =
            Request::parse(r#"{"id": 1, "op": "sim", "tend": 0}"#).expect_err("tend must be > 0");
        assert!(e.message.contains("tend"));
    }

    #[test]
    fn status_exit_mapping_matches_the_cli_contract() {
        assert_eq!(exit_for_status("ok"), 0);
        assert_eq!(exit_for_status("budget-exhausted"), 3);
        assert_eq!(exit_for_status("deadline-exceeded"), 3);
        assert_eq!(exit_for_status("overloaded"), 3);
        assert_eq!(exit_for_status("error"), 1);
        assert_eq!(exit_for_status("panicked"), 1);
        assert_eq!(exit_for_status("malformed"), 1);
    }

    #[test]
    fn response_wire_form_round_trips() {
        let mut r = Response::bare(Json::str("a"), "overloaded");
        r.retry_after_ms = Some(50);
        r.elapsed_ms = 1.25;
        let line = r.to_json().to_line();
        let back = Json::parse(&line).expect("wire form parses");
        assert_eq!(back.get("id").and_then(Json::as_str), Some("a"));
        assert_eq!(back.get("status").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(back.get("exit").and_then(Json::as_int), Some(3));
        assert_eq!(back.get("retry_after_ms").and_then(Json::as_int), Some(50));
        assert!(back.get("error").is_none(), "no error key unless set");
    }
}
