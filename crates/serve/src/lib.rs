//! # vase-serve
//!
//! Fault-tolerant service substrate for `vase serve`: a long-lived
//! daemon loop that reads newline-delimited JSON requests, schedules
//! them across a fixed worker pool, and degrades *per request* rather
//! than per process.
//!
//! The crate is deliberately flow-agnostic — it knows about requests,
//! deadlines, queues, and panics, but not about VHDL-AMS. The `vase`
//! core crate plugs the synthesis flow in through [`JobHandler`]; the
//! tests here drive the substrate with toy handlers, which is exactly
//! how the soak harness (`vase-fuzz --soak`) drives the real one.
//!
//! Resilience contract (DESIGN.md §14):
//!
//! * a panicking job degrades one response to `panicked` — the pool
//!   keeps serving (`catch_unwind` isolation);
//! * a job past its `deadline_ms` is cancelled cooperatively and
//!   answers `deadline-exceeded` with diagnostic `A220` plus whatever
//!   best-so-far results the handler salvaged;
//! * requests beyond `--queue-depth` are shed immediately as
//!   `overloaded` with diagnostic `A221` and a retry-after hint;
//! * a malformed line answers `malformed` without touching the pool;
//! * warm state is snapshotted crash-safely (write-temp-then-rename)
//!   on a cadence and at shutdown.
//!
//! # Examples
//!
//! ```
//! use vase_serve::{serve, JobHandler, JobOutput, Request, ServerConfig};
//! use vase_budget::CancelToken;
//!
//! struct Echo;
//! impl JobHandler for Echo {
//!     fn handle(&self, req: &Request, _: &CancelToken, _: Option<u64>) -> JobOutput {
//!         let mut out = JobOutput::ok();
//!         out.designs.push(vase_diag::json::Json::str(format!("{}", req.op)));
//!         out
//!     }
//! }
//!
//! let input = b"{\"id\": 1, \"op\": \"synth\", \"source\": \"\"}\n" as &[u8];
//! let mut output = Vec::new();
//! let stats = serve(input, &mut output, &Echo, ServerConfig::default()).unwrap();
//! assert_eq!(stats.responses, 1);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod inject;
pub mod proto;
pub mod server;

pub use inject::{Fault, FaultPlan};
pub use proto::{exit_for_status, Op, Request, RequestError, Response};
pub use server::{serve, JobHandler, JobOutput, ServeStats, ServerConfig};

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    use vase_budget::CancelToken;
    use vase_diag::json::Json;

    use super::*;

    /// A toy handler whose behavior is scripted by the request's
    /// `source` field — the same way the soak harness stresses the
    /// real flow handler.
    #[derive(Default)]
    struct Scripted {
        snapshots: AtomicU64,
        handled: AtomicU64,
    }

    impl JobHandler for Scripted {
        fn handle(&self, req: &Request, token: &CancelToken, _: Option<u64>) -> JobOutput {
            self.handled.fetch_add(1, Ordering::Relaxed);
            match req.source.as_deref() {
                Some("panic") => panic!("scripted handler panic"),
                Some("spin") => {
                    // Cooperative long-running job: salvages a partial
                    // result when the watchdog trips the token.
                    for _ in 0..5_000 {
                        if token.is_cancelled() {
                            let mut out = JobOutput::ok();
                            out.designs.push(Json::str("best-so-far"));
                            return out;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    JobOutput::ok()
                }
                Some("sleep") => {
                    std::thread::sleep(Duration::from_millis(25));
                    JobOutput::ok()
                }
                Some("fail") => JobOutput::error("scripted failure"),
                _ => JobOutput::ok(),
            }
        }

        fn snapshot(&self) {
            self.snapshots.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn run(input: &str, config: ServerConfig) -> (ServeStats, Vec<Json>, Scripted) {
        let handler = Scripted::default();
        let mut out = Vec::new();
        let stats =
            serve(input.as_bytes(), &mut out, &handler, config).expect("in-process serve");
        let responses = String::from_utf8(out)
            .expect("responses are UTF-8")
            .lines()
            .map(|l| Json::parse(l).expect("every response line is valid JSON"))
            .collect();
        (stats, responses, handler)
    }

    fn status_of(r: &Json) -> &str {
        r.get("status").and_then(Json::as_str).expect("status field")
    }

    #[test]
    fn one_response_per_request_with_ids_echoed() {
        let input = r#"
            {"id": "a", "op": "ping"}
            {"id": "b", "op": "synth", "source": ""}
            {"id": "c", "op": "lint", "source": ""}
        "#;
        let (stats, responses, _) = run(input, ServerConfig::default());
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.responses, 3);
        assert!(!stats.shutdown, "EOF, not shutdown");
        let mut ids: Vec<&str> = responses
            .iter()
            .map(|r| r.get("id").and_then(Json::as_str).expect("id echoed"))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, ["a", "b", "c"]);
        assert!(responses.iter().all(|r| status_of(r) == "ok"));
        assert!(responses.iter().all(|r| r.get("exit").and_then(Json::as_int) == Some(0)));
    }

    #[test]
    fn a_panicking_job_degrades_one_response_never_the_daemon() {
        let input = r#"
            {"id": 1, "op": "synth", "source": "panic"}
            {"id": 2, "op": "synth", "source": ""}
            {"id": 3, "op": "synth", "source": "panic"}
            {"id": 4, "op": "synth", "source": ""}
        "#;
        let (stats, responses, _) = run(input, ServerConfig::default());
        assert_eq!(stats.responses, 4, "the daemon outlives every panic");
        assert_eq!(stats.panicked, 2);
        let by_id = |n: i128| {
            responses
                .iter()
                .find(|r| r.get("id").and_then(Json::as_int) == Some(n))
                .expect("response present")
        };
        for id in [1, 3] {
            let r = by_id(id);
            assert_eq!(status_of(r), "panicked");
            assert_eq!(r.get("exit").and_then(Json::as_int), Some(1));
            assert!(
                r.get("error").and_then(Json::as_str).expect("panic message").contains("panic"),
            );
        }
        for id in [2, 4] {
            assert_eq!(status_of(by_id(id)), "ok");
        }
    }

    #[test]
    fn deadline_trips_the_token_and_answers_a220_best_so_far() {
        let input = r#"{"id": 1, "op": "synth", "source": "spin", "deadline_ms": 30}"#;
        let (stats, responses, _) = run(input, ServerConfig::default());
        assert_eq!(stats.deadline_hits, 1);
        let r = &responses[0];
        assert_eq!(status_of(r), "deadline-exceeded");
        assert_eq!(r.get("exit").and_then(Json::as_int), Some(3));
        let diags = r.get("diagnostics").and_then(Json::as_arr).expect("diagnostics");
        assert!(
            diags.iter().any(|d| d.get("code").and_then(Json::as_str) == Some("A220")),
            "deadline must surface as A220"
        );
        let designs = r.get("designs").and_then(Json::as_arr).expect("designs");
        assert_eq!(
            designs.first().and_then(Json::as_str),
            Some("best-so-far"),
            "partial results survive the deadline"
        );
    }

    #[test]
    fn overload_sheds_with_a221_and_a_retry_hint() {
        let mut lines = String::new();
        for i in 0..8 {
            lines.push_str(&format!(
                "{{\"id\": {i}, \"op\": \"synth\", \"source\": \"sleep\"}}\n"
            ));
        }
        let config =
            ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() };
        let (stats, responses, _) = run(&lines, config);
        assert_eq!(stats.responses, 8, "shed requests still get answers");
        assert!(stats.shed >= 1, "an 8-deep burst over a 1-deep queue must shed");
        assert_eq!(stats.shed + stats.completed, 8);
        let shed: Vec<&Json> =
            responses.iter().filter(|r| status_of(r) == "overloaded").collect();
        assert_eq!(shed.len() as u64, stats.shed);
        for r in shed {
            assert_eq!(r.get("exit").and_then(Json::as_int), Some(3));
            assert!(r.get("retry_after_ms").and_then(Json::as_int).expect("hint") > 0);
            let diags = r.get("diagnostics").and_then(Json::as_arr).expect("diagnostics");
            assert!(diags
                .iter()
                .any(|d| d.get("code").and_then(Json::as_str) == Some("A221")));
        }
    }

    #[test]
    fn malformed_lines_answer_malformed_without_reaching_the_pool() {
        let input = "this is not json\n{\"id\": 1, \"op\": \"ping\"}\n{\"op\": \"warp\"}\n";
        let (stats, responses, handler) = run(input, ServerConfig::default());
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.responses, 3);
        assert_eq!(handler.handled.load(Ordering::Relaxed), 0, "no job ever ran");
        let statuses: Vec<&str> = responses.iter().map(status_of).collect();
        assert_eq!(statuses.iter().filter(|s| **s == "malformed").count(), 2);
        assert_eq!(statuses.iter().filter(|s| **s == "ok").count(), 1);
    }

    #[test]
    fn shutdown_drains_and_snapshots() {
        let input = r#"
            {"id": 1, "op": "synth", "source": ""}
            {"id": 2, "op": "shutdown"}
            {"id": 3, "op": "synth", "source": "never read"}
        "#;
        let (stats, responses, handler) = run(input, ServerConfig::default());
        assert!(stats.shutdown);
        assert_eq!(stats.requests, 2, "reading stops at the shutdown op");
        assert_eq!(responses.len(), 2);
        assert!(handler.snapshots.load(Ordering::Relaxed) >= 1, "final snapshot ran");
    }

    #[test]
    fn snapshot_cadence_counts_completed_jobs() {
        let mut lines = String::new();
        for i in 0..6 {
            lines.push_str(&format!("{{\"id\": {i}, \"op\": \"synth\", \"source\": \"\"}}\n"));
        }
        let config = ServerConfig { workers: 1, snapshot_every: 2, ..ServerConfig::default() };
        let (_, _, handler) = run(&lines, config);
        // 6 jobs / every 2 = 3 cadence snapshots + 1 final.
        assert_eq!(handler.snapshots.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn injected_faults_are_deterministic_and_all_answered() {
        // Each fault lane is drawn with probability 1/4 per request,
        // so 96 requests drain a 2-per-kind budget with certainty for
        // this fixed seed (checked: all six faults fire).
        let mut lines = String::new();
        for i in 0..96 {
            lines.push_str(&format!("{{\"id\": {i}, \"op\": \"synth\", \"source\": \"\"}}\n"));
        }
        let run_once = || {
            let config = ServerConfig {
                workers: 1,
                // Deep enough that the instant 96-request burst never
                // sheds — only injected faults may perturb a status.
                queue_depth: 4096,
                inject: Some(
                    FaultPlan::parse("panic:2,timeout:2,malformed:2", 0xF00D).expect("spec"),
                ),
                ..ServerConfig::default()
            };
            let (stats, responses, _) = run(&lines, config);
            assert_eq!(stats.responses, 96, "every faulted request is still answered");
            let mut statuses: Vec<String> =
                responses.iter().map(|r| status_of(r).to_owned()).collect();
            statuses.sort_unstable();
            statuses
        };
        let first = run_once();
        assert_eq!(first, run_once(), "same seed, same fault schedule");
        assert_eq!(first.iter().filter(|s| *s == "panicked").count(), 2);
        assert_eq!(first.iter().filter(|s| *s == "deadline-exceeded").count(), 2);
        assert_eq!(first.iter().filter(|s| *s == "malformed").count(), 2);
        assert_eq!(first.iter().filter(|s| *s == "ok").count(), 90);
    }
}
