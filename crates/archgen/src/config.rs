//! Mapper configuration and search statistics.

use std::fmt;

use serde::{Deserialize, Serialize};
use vase_budget::Budget;
use vase_library::MatchOptions;

/// Which search algorithm explores the mapping decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum SearchStrategy {
    /// The paper's depth-first branch-and-bound (Fig. 5): exact, with
    /// the largest-cover-first sequencing rule and the
    /// `opamps · MinArea` bounding rule.
    #[default]
    Exact,
    /// Model-guided best-first search: candidates are expanded in order
    /// of an estimator-derived score (placed-component area plus a
    /// remaining-coverage heuristic) and pruned against the incumbent
    /// with the *admissible* placed-area lower bound — a much tighter
    /// bound than `opamps · MinArea`. Run to completion it returns the
    /// same optimal netlist as [`SearchStrategy::Exact`]
    /// (property-tested bit-identical); under a limited
    /// [`Budget`] it is anytime exactly like the exact search. The
    /// guided search is sequential — `parallelism` is ignored.
    Guided,
}

/// Configuration of the architecture generator. The boolean switches
/// correspond to the algorithm ingredients of paper Section 5 and feed
/// the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Pattern families available to the branching rule.
    pub match_options: MatchOptions,
    /// Enable the bounding rule (`(opamps + comp) · MinArea <
    /// current_best`).
    pub bounding: bool,
    /// Enable the sequencing rule (visit larger-cover alternatives
    /// first; sharing before allocation). Disabled, alternatives are
    /// visited smallest-first.
    pub sequencing: bool,
    /// Enable hardware sharing between blocks in different signal paths.
    pub sharing: bool,
    /// Interfacing transformation: insert a follower when a component
    /// output drives more than this many consumers.
    pub fanout_limit: usize,
    /// Safety cap on visited decision-tree nodes; the search returns
    /// the best solution found so far when exceeded. Shared across all
    /// workers in a parallel run.
    pub node_limit: u64,
    /// Dominance memoization (an extension beyond the paper): prune a
    /// partial mapping whose covered-block set was already reached with
    /// no more op amps. Collapses the exponential revisiting the paper
    /// identifies as the algorithm's scaling limit, while preserving
    /// the optimum on every workload we test.
    pub memoize: bool,
    /// Worker threads for the branch-and-bound search: `0` auto-detects
    /// from the host's available cores, `1` (the default) runs the
    /// sequential search, `n > 1` splits the decision tree into subtree
    /// tasks executed by `n` scoped threads around a shared incumbent
    /// bound. The parallel search returns the same optimal area as the
    /// sequential one (property-tested).
    #[serde(default = "default_parallelism")]
    pub parallelism: usize,
    /// How many decision-tree levels are expanded sequentially into
    /// subtree tasks before the workers take over. `0` (the default)
    /// auto-sizes: levels are expanded until roughly four tasks per
    /// worker exist.
    #[serde(default)]
    pub split_depth: usize,
    /// Caller-facing compute budget (wall-clock deadline and/or node
    /// cap) on top of the `node_limit` safety cap. When any limit here
    /// is set the search runs in *anytime* mode: a greedy mapping seeds
    /// the incumbent up front, and budget exhaustion returns the best
    /// plan found so far flagged [`MapStats::budget_exhausted`].
    #[serde(default)]
    pub budget: Budget,
    /// Which algorithm explores the decision tree (exact depth-first
    /// branch-and-bound by default; model-guided best-first with
    /// [`SearchStrategy::Guided`]).
    #[serde(default)]
    pub strategy: SearchStrategy,
    /// Use the proven value bounds the `vase-analyze` fixed point
    /// attaches to the design to prune dominated candidates: at a block
    /// whose output range is proven, an alternative sized for more
    /// swing headroom than the proof allows is skipped when another
    /// alternative with the same cover and inputs meets the spec at
    /// the proven swing with no more area or op amps. Off by default —
    /// mapping results with this disabled are bit-identical whether or
    /// not bounds are attached.
    #[serde(default)]
    pub range_prune: bool,
}

fn default_parallelism() -> usize {
    1
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            match_options: MatchOptions::default(),
            bounding: true,
            sequencing: true,
            sharing: true,
            fanout_limit: 3,
            node_limit: 2_000_000,
            memoize: true,
            parallelism: default_parallelism(),
            split_depth: 0,
            budget: Budget::unlimited(),
            strategy: SearchStrategy::default(),
            range_prune: false,
        }
    }
}

impl MapperConfig {
    /// A truly exhaustive configuration — no bounding rule *and* no
    /// dominance memoization, so every decision-tree node is visited.
    /// This is the baseline the bounding-rule ablation compares
    /// against; it is exponentially slow beyond small graphs.
    pub fn exhaustive() -> Self {
        MapperConfig {
            bounding: false,
            memoize: false,
            ..MapperConfig::default()
        }
    }

    /// No bounding rule but dominance memoization kept on — the
    /// tractable stand-in for [`MapperConfig::exhaustive`] on larger
    /// graphs (memoization alone keeps the tree polynomial-ish while
    /// still exploring every non-dominated alternative).
    pub fn exhaustive_memoized() -> Self {
        MapperConfig {
            bounding: false,
            ..MapperConfig::default()
        }
    }

    /// The default configuration with auto-detected parallelism: one
    /// worker per available core.
    pub fn parallel() -> Self {
        MapperConfig {
            parallelism: 0,
            ..MapperConfig::default()
        }
    }

    /// The default configuration with the model-guided best-first
    /// search strategy.
    pub fn guided() -> Self {
        MapperConfig {
            strategy: SearchStrategy::Guided,
            ..MapperConfig::default()
        }
    }

    /// The number of worker threads this configuration resolves to:
    /// `parallelism`, or the host's available core count when it is
    /// `0` (auto).
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// The budget a search meter actually enforces: the caller-facing
    /// [`budget`](MapperConfig::budget) with the `node_limit` safety
    /// cap folded into its node cap (whichever is smaller wins).
    pub fn effective_budget(&self) -> Budget {
        Budget {
            deadline_ms: self.budget.deadline_ms,
            max_nodes: Some(match self.budget.max_nodes {
                Some(n) => n.min(self.node_limit),
                None => self.node_limit,
            }),
        }
    }
}

/// Statistics of one mapping run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MapStats {
    /// Decision-tree nodes visited.
    pub visited_nodes: u64,
    /// Nodes pruned by the bounding rule (or by component-level
    /// infeasibility).
    pub pruned_nodes: u64,
    /// Nodes pruned by dominance memoization.
    pub memo_pruned: u64,
    /// Complete mappings reached (leaves of the decision tree).
    pub complete_mappings: u64,
    /// Complete mappings rejected as constraint-infeasible.
    pub infeasible_mappings: u64,
    /// Wall-clock search time in microseconds.
    #[serde(default)]
    pub elapsed_us: u64,
    /// Whether the search stopped on a compute budget (deadline, node
    /// cap, or cancellation) rather than proving its result optimal.
    /// When set, the returned mapping is the best *incumbent* — still
    /// verifier-clean and constraint-feasible, but possibly not the
    /// minimum-area architecture.
    #[serde(default)]
    pub budget_exhausted: bool,
    /// Graphs answered from the content-addressed cover cache without
    /// any search (one per cached graph in the design).
    #[serde(default)]
    pub cache_hits: u64,
    /// Graphs that consulted a cover cache and had to search (their
    /// results were recorded for future reuse).
    #[serde(default)]
    pub cache_misses: u64,
    /// Allocation branches skipped because a proven value bound showed
    /// the candidate dominated at the proven swing (only under
    /// [`MapperConfig::range_prune`]).
    #[serde(default)]
    pub range_pruned: u64,
}

impl MapStats {
    /// Accumulate `other` into `self` (summing every counter,
    /// including elapsed time — callers tracking wall clock across
    /// concurrent runs should overwrite `elapsed_us` afterwards).
    pub fn merge(&mut self, other: &MapStats) {
        self.visited_nodes += other.visited_nodes;
        self.pruned_nodes += other.pruned_nodes;
        self.memo_pruned += other.memo_pruned;
        self.complete_mappings += other.complete_mappings;
        self.infeasible_mappings += other.infeasible_mappings;
        self.elapsed_us += other.elapsed_us;
        self.budget_exhausted |= other.budget_exhausted;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.range_pruned += other.range_pruned;
    }

    /// Decision-tree nodes explored, the quantity compute budgets
    /// meter (an alias for [`visited_nodes`](MapStats::visited_nodes)).
    pub fn nodes_explored(&self) -> u64 {
        self.visited_nodes
    }

    /// Search throughput: visited decision-tree nodes per second of
    /// wall-clock search time (`0.0` when no time was recorded).
    pub fn visits_per_second(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.visited_nodes as f64 * 1e6 / self.elapsed_us as f64
        }
    }
}

impl fmt::Display for MapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "visited {} nodes ({} bound-pruned, {} memo-pruned), \
             {} complete mappings ({} infeasible) in {}",
            self.visited_nodes,
            self.pruned_nodes,
            self.memo_pruned,
            self.complete_mappings,
            self.infeasible_mappings,
            format_duration_us(self.elapsed_us),
        )?;
        if self.budget_exhausted {
            write!(f, " [budget exhausted]")?;
        }
        if self.cache_hits > 0 {
            write!(f, " [{} cover-cache hit(s)]", self.cache_hits)?;
        }
        if self.range_pruned > 0 {
            write!(f, " [{} range-pruned]", self.range_pruned)?;
        }
        Ok(())
    }
}

fn format_duration_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything_sequentially() {
        let c = MapperConfig::default();
        assert!(c.bounding && c.sequencing && c.sharing && c.memoize);
        assert!(c.match_options.multi_block && c.match_options.transforms);
        assert_eq!(c.parallelism, 1);
        assert_eq!(c.split_depth, 0);
        assert_eq!(c.strategy, SearchStrategy::Exact);
    }

    #[test]
    fn guided_config_switches_strategy_only() {
        let c = MapperConfig::guided();
        assert_eq!(c.strategy, SearchStrategy::Guided);
        assert_eq!(
            MapperConfig { strategy: SearchStrategy::Exact, ..c },
            MapperConfig::default()
        );
    }

    #[test]
    fn stats_merge_sums_cache_counters() {
        let mut a = MapStats { cache_hits: 1, cache_misses: 2, ..MapStats::default() };
        let b = MapStats { cache_hits: 3, cache_misses: 1, ..MapStats::default() };
        a.merge(&b);
        assert_eq!(a.cache_hits, 4);
        assert_eq!(a.cache_misses, 3);
        assert!(a.to_string().contains("4 cover-cache hit(s)"));
        assert!(!MapStats::default().to_string().contains("cover-cache"));
    }

    #[test]
    fn range_prune_is_off_by_default() {
        // Bit-identity with the historical mapper depends on this
        // default staying false.
        assert!(!MapperConfig::default().range_prune);
        assert!(!MapperConfig::guided().range_prune);
        assert!(!MapperConfig::parallel().range_prune);
        let mut a = MapStats { range_pruned: 2, ..MapStats::default() };
        let b = MapStats { range_pruned: 3, ..MapStats::default() };
        a.merge(&b);
        assert_eq!(a.range_pruned, 5);
        assert!(a.to_string().contains("[5 range-pruned]"));
        assert!(!MapStats::default().to_string().contains("range-pruned"));
    }

    #[test]
    fn exhaustive_disables_bounding_and_memoization() {
        let c = MapperConfig::exhaustive();
        assert!(!c.bounding);
        assert!(!c.memoize, "a memoized search is not exhaustive");
        assert!(c.sequencing && c.sharing);
    }

    #[test]
    fn exhaustive_memoized_keeps_memoization() {
        let c = MapperConfig::exhaustive_memoized();
        assert!(!c.bounding);
        assert!(c.memoize);
    }

    #[test]
    fn effective_parallelism_resolves_auto() {
        assert!(MapperConfig::parallel().effective_parallelism() >= 1);
        let c = MapperConfig {
            parallelism: 3,
            ..MapperConfig::default()
        };
        assert_eq!(c.effective_parallelism(), 3);
        assert_eq!(MapperConfig::default().effective_parallelism(), 1);
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = MapStats {
            visited_nodes: 10,
            pruned_nodes: 2,
            memo_pruned: 1,
            complete_mappings: 3,
            infeasible_mappings: 1,
            elapsed_us: 500,
            ..MapStats::default()
        };
        let b = MapStats {
            visited_nodes: 5,
            elapsed_us: 250,
            ..MapStats::default()
        };
        a.merge(&b);
        assert_eq!(a.visited_nodes, 15);
        assert_eq!(a.elapsed_us, 750);
        assert_eq!(a.pruned_nodes, 2);
    }

    #[test]
    fn stats_display_summarizes_cost() {
        let s = MapStats {
            visited_nodes: 1234,
            pruned_nodes: 56,
            memo_pruned: 7,
            complete_mappings: 8,
            infeasible_mappings: 1,
            elapsed_us: 4200,
            ..MapStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("1234"), "{text}");
        assert!(text.contains("56 bound-pruned"), "{text}");
        assert!(text.contains("7 memo-pruned"), "{text}");
        assert!(text.contains("4.20 ms"), "{text}");
    }

    #[test]
    fn effective_budget_folds_node_limit() {
        let c = MapperConfig::default();
        assert_eq!(c.effective_budget().max_nodes, Some(c.node_limit));
        assert_eq!(c.effective_budget().deadline_ms, None);
        let tight = MapperConfig {
            budget: Budget::nodes(10),
            ..MapperConfig::default()
        };
        assert_eq!(tight.effective_budget().max_nodes, Some(10));
        let loose = MapperConfig {
            budget: Budget {
                deadline_ms: Some(5),
                max_nodes: Some(u64::MAX),
            },
            ..MapperConfig::default()
        };
        // The safety cap still wins over a looser caller budget.
        assert_eq!(loose.effective_budget().max_nodes, Some(loose.node_limit));
        assert_eq!(loose.effective_budget().deadline_ms, Some(5));
    }

    #[test]
    fn budget_exhausted_merges_and_displays() {
        let mut a = MapStats::default();
        assert!(!a.to_string().contains("budget exhausted"));
        let b = MapStats {
            budget_exhausted: true,
            ..MapStats::default()
        };
        a.merge(&b);
        assert!(a.budget_exhausted);
        assert!(a.to_string().contains("[budget exhausted]"));
        assert_eq!(a.nodes_explored(), a.visited_nodes);
    }

    #[test]
    fn visits_per_second_handles_zero_time() {
        assert_eq!(MapStats::default().visits_per_second(), 0.0);
        let s = MapStats {
            visited_nodes: 1_000,
            elapsed_us: 500_000,
            ..MapStats::default()
        };
        assert!((s.visits_per_second() - 2_000.0).abs() < 1e-9);
    }
}
