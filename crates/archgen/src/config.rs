//! Mapper configuration and search statistics.

use serde::{Deserialize, Serialize};
use vase_library::MatchOptions;

/// Configuration of the architecture generator. The boolean switches
/// correspond to the algorithm ingredients of paper Section 5 and feed
/// the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Pattern families available to the branching rule.
    pub match_options: MatchOptions,
    /// Enable the bounding rule (`(opamps + comp) · MinArea <
    /// current_best`).
    pub bounding: bool,
    /// Enable the sequencing rule (visit larger-cover alternatives
    /// first; sharing before allocation). Disabled, alternatives are
    /// visited smallest-first.
    pub sequencing: bool,
    /// Enable hardware sharing between blocks in different signal paths.
    pub sharing: bool,
    /// Interfacing transformation: insert a follower when a component
    /// output drives more than this many consumers.
    pub fanout_limit: usize,
    /// Safety cap on visited decision-tree nodes; the search returns
    /// the best solution found so far when exceeded.
    pub node_limit: u64,
    /// Dominance memoization (an extension beyond the paper): prune a
    /// partial mapping whose covered-block set was already reached with
    /// no more op amps. Collapses the exponential revisiting the paper
    /// identifies as the algorithm's scaling limit, while preserving
    /// the optimum on every workload we test.
    pub memoize: bool,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            match_options: MatchOptions::default(),
            bounding: true,
            sequencing: true,
            sharing: true,
            fanout_limit: 3,
            node_limit: 2_000_000,
            memoize: true,
        }
    }
}

impl MapperConfig {
    /// An exhaustive configuration (no bounding) — the baseline the
    /// bounding-rule ablation compares against.
    pub fn exhaustive() -> Self {
        MapperConfig { bounding: false, ..MapperConfig::default() }
    }
}

/// Statistics of one mapping run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MapStats {
    /// Decision-tree nodes visited.
    pub visited_nodes: u64,
    /// Nodes pruned by the bounding rule.
    pub pruned_nodes: u64,
    /// Nodes pruned by dominance memoization.
    pub memo_pruned: u64,
    /// Complete mappings reached (leaves of the decision tree).
    pub complete_mappings: u64,
    /// Complete mappings rejected as constraint-infeasible.
    pub infeasible_mappings: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = MapperConfig::default();
        assert!(c.bounding && c.sequencing && c.sharing && c.memoize);
        assert!(c.match_options.multi_block && c.match_options.transforms);
    }

    #[test]
    fn exhaustive_disables_bounding_only() {
        let c = MapperConfig::exhaustive();
        assert!(!c.bounding);
        assert!(c.sequencing && c.sharing);
    }
}
