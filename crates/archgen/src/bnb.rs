//! The branch-and-bound mapping algorithm (paper Fig. 5).
//!
//! The search walks the signal-flow graph from its outputs towards its
//! inputs. At each uncovered block the **branching rule** enumerates
//! every library sub-graph match ending there (including functional
//! transformations); for each alternative the algorithm first tries to
//! **share** an already-allocated component with identical inputs and
//! operation, then to **allocate** a dedicated component — unless the
//! **bounding rule** proves the partial mapping cannot beat the best
//! complete mapping found so far (`(opamps + comp_opamps) · MinArea ≥
//! current_best`). The **sequencing rule** visits larger covers first
//! so a good solution is found early and the bound becomes effective.

use std::collections::HashMap;

use vase_estimate::{Estimator, NetlistEstimate};
use vase_library::{matches_at, Netlist, PatternMatch};
use vase_vhif::{BlockId, SignalFlowGraph};

use crate::config::{MapStats, MapperConfig};
use crate::error::MapError;
use crate::plan::{resolve, Plan, PlannedComponent};

/// The result of mapping one signal-flow graph.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// The minimum-area netlist found.
    pub netlist: Netlist,
    /// Its performance estimate.
    pub estimate: NetlistEstimate,
    /// Search statistics.
    pub stats: MapStats,
}

/// Map `graph` onto a minimum-area netlist of library components.
///
/// # Errors
///
/// * [`MapError::NoPattern`] if some block has no library
///   implementation at all;
/// * [`MapError::NoFeasibleMapping`] if every complete mapping violates
///   the estimator's performance constraints.
pub fn map_graph(
    graph: &SignalFlowGraph,
    estimator: &Estimator,
    config: &MapperConfig,
) -> Result<MapResult, MapError> {
    // Pre-check: every operation block must have at least one pattern.
    for (id, block) in graph.iter() {
        if !block.kind.is_interface()
            && matches_at(graph, id, &config.match_options).is_empty()
        {
            return Err(MapError::NoPattern { block: format!("{id} ({})", block.kind) });
        }
    }
    let mut search = Search {
        graph,
        estimator,
        config,
        order: coverage_order(graph),
        best: None,
        stats: MapStats::default(),
        min_area: estimator.min_opamp_area(),
        memo: HashMap::new(),
    };
    search.run(Plan::new(graph));
    let stats = search.stats;
    match search.best {
        Some(best) => Ok(MapResult { netlist: best.netlist, estimate: best.estimate, stats }),
        None => Err(MapError::NoFeasibleMapping),
    }
}

struct Best {
    area: f64,
    netlist: Netlist,
    estimate: NetlistEstimate,
}

struct Search<'a> {
    graph: &'a SignalFlowGraph,
    estimator: &'a Estimator,
    config: &'a MapperConfig,
    order: Vec<BlockId>,
    best: Option<Best>,
    stats: MapStats,
    min_area: f64,
    /// Dominance memo: covered-set → fewest op amps that reached it.
    memo: HashMap<Vec<u64>, usize>,
}

impl Search<'_> {
    fn run(&mut self, plan: Plan) {
        if self.stats.visited_nodes >= self.config.node_limit {
            return;
        }
        self.stats.visited_nodes += 1;

        if self.config.memoize {
            let key = cover_key(&plan.covered);
            match self.memo.get_mut(&key) {
                Some(best_opamps) if *best_opamps <= plan.opamps => {
                    self.stats.memo_pruned += 1;
                    return;
                }
                Some(best_opamps) => *best_opamps = plan.opamps,
                None => {
                    self.memo.insert(key, plan.opamps);
                }
            }
        }

        let Some(cur) = self.order.iter().copied().find(|b| !plan.covered[b.index()]) else {
            self.complete(&plan);
            return;
        };

        let mut alternatives = matches_at(self.graph, cur, &self.config.match_options);
        if !self.config.sequencing {
            // Ablation: visit smallest covers first.
            alternatives.reverse();
        }
        for m in &alternatives {
            // Overlap with already-covered blocks is illegal.
            if m.covered.iter().any(|b| plan.covered[b.index()]) {
                continue;
            }
            // Share branch first (sequencing rule: sharing before
            // allocation).
            if self.config.sharing {
                if let Some(existing) = plan.find_shareable(&m.kind, &m.inputs) {
                    let mut shared = plan.clone();
                    for &b in &m.covered {
                        shared.covered[b.index()] = true;
                        shared.components[existing].covered.push(b);
                    }
                    self.run(shared);
                }
            }
            // Allocate branch. A component whose op-amp spec no library
            // topology can meet (e.g. a gain-200 amplifier over a wide
            // band) can never appear in a feasible netlist — reject it
            // locally so the functional-transformation alternatives
            // (gain-split chains) are explored instead.
            if !self.estimator.estimate_component(&m.kind).spec_met {
                self.stats.pruned_nodes += 1;
                continue;
            }
            let added = m.kind.opamp_count();
            if self.config.bounding {
                if let Some(best) = &self.best {
                    let lower_bound = (plan.opamps + added) as f64 * self.min_area;
                    if lower_bound >= best.area {
                        self.stats.pruned_nodes += 1;
                        continue;
                    }
                }
            }
            let mut allocated = plan.clone();
            self.apply(&mut allocated, m, cur);
            self.run(allocated);
        }
    }

    fn apply(&self, plan: &mut Plan, m: &PatternMatch, output: BlockId) {
        for &b in &m.covered {
            plan.covered[b.index()] = true;
        }
        plan.opamps += m.kind.opamp_count();
        plan.components.push(PlannedComponent {
            kind: m.kind.clone(),
            covered: m.covered.clone(),
            inputs: m.inputs.clone(),
            output,
        });
    }

    fn complete(&mut self, plan: &Plan) {
        self.stats.complete_mappings += 1;
        let Ok(netlist) = resolve(self.graph, plan, self.config.fanout_limit) else {
            return;
        };
        let estimate = self.estimator.estimate_netlist(&netlist);
        if !estimate.feasible() {
            self.stats.infeasible_mappings += 1;
            return;
        }
        let area = estimate.area_m2;
        if self.best.as_ref().is_none_or(|b| area < b.area) {
            self.best = Some(Best { area, netlist, estimate });
        }
    }
}

/// Pack a covered-set into a compact memo key.
fn cover_key(covered: &[bool]) -> Vec<u64> {
    let mut key = vec![0u64; covered.len().div_ceil(64)];
    for (i, &c) in covered.iter().enumerate() {
        if c {
            key[i / 64] |= 1 << (i % 64);
        }
    }
    key
}

/// The order in which uncovered blocks are picked: depth-first from the
/// external outputs back through the drivers (the paper's "select an
/// input signal of sub-graph" walk), followed by any remaining
/// operation blocks (e.g. comparator networks feeding only control
/// ports).
pub(crate) fn coverage_order(graph: &SignalFlowGraph) -> Vec<BlockId> {
    let mut order = Vec::new();
    let mut seen = vec![false; graph.len()];
    let mut stack: Vec<BlockId> = graph.outputs();
    while let Some(b) = stack.pop() {
        if seen[b.index()] {
            continue;
        }
        seen[b.index()] = true;
        if !graph.block(b).kind.is_interface() {
            order.push(b);
        }
        for driver in graph.block_inputs(b).iter().flatten() {
            stack.push(*driver);
        }
    }
    for (id, block) in graph.iter() {
        if !seen[id.index()] && !block.kind.is_interface() {
            order.push(id);
            seen[id.index()] = true;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use vase_library::ComponentKind;
    use vase_vhif::BlockKind;

    fn estimator() -> Estimator {
        Estimator::default()
    }

    /// The paper's Fig. 6a example: y = k1·a + k2·b processed through a
    /// multiply-and-add structure mappable with 2, 3, or 4 op amps.
    fn fig6_graph() -> SignalFlowGraph {
        let mut g = SignalFlowGraph::new("fig6");
        let a = g.add(BlockKind::Input { name: "a".into() });
        let b = g.add(BlockKind::Input { name: "b".into() });
        let s1 = g.add_labelled(BlockKind::Scale { gain: 2.0 }, "block1");
        let s2 = g.add_labelled(BlockKind::Scale { gain: 3.0 }, "block2");
        let add = g.add_labelled(BlockKind::Add { arity: 2 }, "block3");
        let s3 = g.add_labelled(BlockKind::Scale { gain: 0.5 }, "block4");
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(a, s1, 0).expect("wire");
        g.connect(b, s2, 0).expect("wire");
        g.connect(s1, add, 0).expect("wire");
        g.connect(s2, add, 1).expect("wire");
        g.connect(add, s3, 0).expect("wire");
        g.connect(s3, y, 0).expect("wire");
        g
    }

    #[test]
    fn fig6_best_mapping_uses_one_summing_amp() {
        // Scale∘Add with folded scale children → all 4 blocks in ONE
        // weighted summing amplifier (even better than the paper's
        // 2-op-amp result, which lacked the Scale∘Add fold for the
        // outer gain).
        let g = fig6_graph();
        let result = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        result.netlist.validate().expect("valid");
        assert_eq!(result.netlist.opamp_count(), 1, "{}", result.netlist);
        match &result.netlist.components[0].kind {
            ComponentKind::SummingAmp { weights } => {
                assert_eq!(weights, &vec![1.0, 1.5]);
            }
            other => panic!("expected summing amp, got {other:?}"),
        }
    }

    #[test]
    fn single_block_mapping_uses_four_opamps() {
        // With multi-block patterns off, each of the 4 blocks costs an
        // op amp — the worst branch of the paper's Fig. 6 tree.
        let g = fig6_graph();
        let mut config = MapperConfig::default();
        config.match_options.multi_block = false;
        config.match_options.transforms = false;
        let result = map_graph(&g, &estimator(), &config).expect("maps");
        assert_eq!(result.netlist.opamp_count(), 4, "{}", result.netlist);
    }

    #[test]
    fn bounding_prunes_nodes() {
        // A chain of unity-gain buffers: every component costs close to
        // `MinArea`, so the bound `(opamps + comp) · MinArea ≥ best`
        // becomes effective once the 6-follower optimum is found and a
        // branch accumulates per-block followers.
        let mut g = SignalFlowGraph::new("chain");
        let mut prev = g.add(BlockKind::Input { name: "x".into() });
        for _ in 0..12 {
            let s = g.add(BlockKind::Scale { gain: 1.0 });
            g.connect(prev, s, 0).expect("wire");
            prev = s;
        }
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(prev, y, 0).expect("wire");

        // Isolate the bounding rule: memoization off for both runs.
        let bounded =
            map_graph(&g, &estimator(), &MapperConfig { memoize: false, ..MapperConfig::default() })
                .expect("maps");
        let exhaustive = map_graph(
            &g,
            &estimator(),
            &MapperConfig { memoize: false, ..MapperConfig::exhaustive() },
        )
        .expect("maps");
        // Same optimum (6 pair-folded buffers)...
        assert_eq!(bounded.netlist.opamp_count(), exhaustive.netlist.opamp_count());
        assert_eq!(bounded.netlist.opamp_count(), 6);
        // ...but bounding visits fewer nodes and actually prunes.
        assert!(bounded.stats.visited_nodes <= exhaustive.stats.visited_nodes);
        assert!(
            bounded.stats.pruned_nodes > 0,
            "expected pruning; visited {} vs {}",
            bounded.stats.visited_nodes,
            exhaustive.stats.visited_nodes
        );
        assert_eq!(exhaustive.stats.pruned_nodes, 0);
    }

    #[test]
    fn sharing_reuses_identical_subcircuits() {
        // Two outputs computing the same 2·x: with sharing one amp
        // serves both.
        let mut g = SignalFlowGraph::new("share");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let s1 = g.add(BlockKind::Scale { gain: 2.0 });
        let s2 = g.add(BlockKind::Scale { gain: 2.0 });
        let y1 = g.add(BlockKind::Output { name: "y1".into() });
        let y2 = g.add(BlockKind::Output { name: "y2".into() });
        g.connect(x, s1, 0).expect("wire");
        g.connect(x, s2, 0).expect("wire");
        g.connect(s1, y1, 0).expect("wire");
        g.connect(s2, y2, 0).expect("wire");

        let shared = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        assert_eq!(shared.netlist.opamp_count(), 1, "{}", shared.netlist);

        let config = MapperConfig { sharing: false, ..MapperConfig::default() };
        let unshared = map_graph(&g, &estimator(), &config).expect("maps");
        assert_eq!(unshared.netlist.opamp_count(), 2, "{}", unshared.netlist);
    }

    #[test]
    fn integrator_feedback_loop_maps() {
        // dx/dt = -x: summing integrator with its own output fed back.
        let mut g = SignalFlowGraph::new("ode");
        let integ = g.add(BlockKind::Integrate { gain: 1.0, initial: 1.0 });
        let neg = g.add(BlockKind::Scale { gain: -1.0 });
        let y = g.add(BlockKind::Output { name: "x".into() });
        g.connect(integ, neg, 0).expect("wire");
        g.connect(neg, integ, 0).expect("wire");
        g.connect(integ, y, 0).expect("wire");
        let result = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        result.netlist.validate().expect("valid");
        // Best: one summing integrator implementing both blocks.
        assert_eq!(result.netlist.opamp_count(), 1, "{}", result.netlist);
    }

    #[test]
    fn infeasible_constraints_yield_error() {
        use vase_estimate::PerformanceConstraints;
        let g = fig6_graph();
        let e = Estimator::new(PerformanceConstraints {
            bandwidth_hz: 4e3,
            signal_peak_v: 1.0,
            max_power_w: 0.0, // nothing is feasible
            max_area_m2: f64::INFINITY,
        });
        let err = map_graph(&g, &e, &MapperConfig::default()).unwrap_err();
        assert_eq!(err, MapError::NoFeasibleMapping);
    }

    #[test]
    fn stats_count_complete_mappings() {
        let g = fig6_graph();
        let result = map_graph(
            &g,
            &estimator(),
            &MapperConfig { memoize: false, ..MapperConfig::exhaustive() },
        )
        .expect("maps");
        assert!(result.stats.complete_mappings >= 2);
        assert!(result.stats.visited_nodes > result.stats.complete_mappings);
    }

    #[test]
    fn memoization_prunes_but_preserves_the_optimum() {
        let g = fig6_graph();
        let with = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        let without =
            map_graph(&g, &estimator(), &MapperConfig { memoize: false, ..MapperConfig::default() })
                .expect("maps");
        assert_eq!(with.netlist.opamp_count(), without.netlist.opamp_count());
        assert!(with.stats.visited_nodes <= without.stats.visited_nodes);
    }

    #[test]
    fn sequencing_off_still_finds_optimum_but_slower_bound() {
        let g = fig6_graph();
        let config = MapperConfig { sequencing: false, ..MapperConfig::default() };
        let result = map_graph(&g, &estimator(), &config).expect("maps");
        assert_eq!(result.netlist.opamp_count(), 1);
    }
}
