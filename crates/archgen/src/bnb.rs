//! The branch-and-bound mapping algorithm (paper Fig. 5).
//!
//! The search walks the signal-flow graph from its outputs towards its
//! inputs. At each uncovered block the **branching rule** enumerates
//! every library sub-graph match ending there (including functional
//! transformations); for each alternative the algorithm first tries to
//! **share** an already-allocated component with identical inputs and
//! operation, then to **allocate** a dedicated component — unless the
//! **bounding rule** proves the partial mapping cannot beat the best
//! complete mapping found so far (`(opamps + comp_opamps) · MinArea ≥
//! current_best`). The **sequencing rule** visits larger covers first
//! so a good solution is found early and the bound becomes effective.
//!
//! Beyond the paper, this implementation (a) consults a per-block
//! [`MatchCache`] so the pattern matcher runs exactly once per block
//! per [`map_graph`] call instead of once per visited decision-tree
//! node, (b) keys the dominance memo by an allocation-free
//! [`CoverSet`](crate::cover::CoverSet) bitset, and (c) optionally
//! splits the decision tree across worker threads (see
//! [`crate::parallel`]) around a shared incumbent bound.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::time::Instant;

use vase_budget::{BudgetMeter, CancelToken};
use vase_estimate::{EstimateMemo, Estimator, NetlistEstimate};
use vase_library::{MatchCache, Netlist, PatternMatch};
use vase_vhif::{BlockId, GraphBounds, SignalFlowGraph};

use crate::cache::CoverCache;
use crate::config::{MapStats, MapperConfig, SearchStrategy};
use crate::cover::CoverSet;
use crate::error::MapError;
use crate::parallel::{run_parallel, ShardedMemo, SharedSearchState};
use crate::plan::{resolve, Plan, PlannedComponent};

/// The result of mapping one signal-flow graph.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// The minimum-area netlist found.
    pub netlist: Netlist,
    /// Its performance estimate.
    pub estimate: NetlistEstimate,
    /// Search statistics.
    pub stats: MapStats,
}

/// Map `graph` onto a minimum-area netlist of library components.
///
/// With `config.parallelism > 1` (or `0` for one worker per core) the
/// decision tree is split into subtree tasks searched concurrently; the
/// parallel search returns the same optimal area as the sequential one.
///
/// # Errors
///
/// * [`MapError::NoPattern`] if some block has no library
///   implementation at all;
/// * [`MapError::NoFeasibleMapping`] if every complete mapping violates
///   the estimator's performance constraints.
pub fn map_graph(
    graph: &SignalFlowGraph,
    estimator: &Estimator,
    config: &MapperConfig,
) -> Result<MapResult, MapError> {
    map_graph_with_cancel(graph, estimator, config, None)
}

/// [`map_graph`] with an optional cooperative [`CancelToken`].
///
/// Tripping the token (from any thread) stops the search at the next
/// metering checkpoint; like budget exhaustion it is *anytime* — the
/// best incumbent found so far is returned with
/// `stats.budget_exhausted` set. When `config.budget` is limited or a
/// token is supplied, a greedy mapping seeds the incumbent before the
/// search starts, so exhaustion at any point still yields a feasible,
/// verifier-clean plan whenever one exists.
///
/// # Errors
///
/// As [`map_graph`]; additionally, cancellation or exhaustion before
/// *any* feasible mapping (including the greedy seed) was found
/// reports [`MapError::NoFeasibleMapping`].
pub fn map_graph_with_cancel(
    graph: &SignalFlowGraph,
    estimator: &Estimator,
    config: &MapperConfig,
    token: Option<CancelToken>,
) -> Result<MapResult, MapError> {
    let seed_incumbent = config.budget.is_limited() || token.is_some();
    let meter = BudgetMeter::new(config.effective_budget(), token);
    map_graph_metered(graph, estimator, config, &meter, seed_incumbent)
}

/// [`map_graph`] consulting (and updating) a content-addressed
/// [`CoverCache`]: when the cache holds a valid best-known cover for a
/// structurally identical graph under the same constraints/options, the
/// mapping is answered in O(lookup) with `stats.cache_hits = 1` and no
/// search at all; otherwise the search runs normally and its optimal
/// cover is recorded (unless it stopped on a budget).
///
/// # Errors
///
/// As [`map_graph`].
pub fn map_graph_with_cache(
    graph: &SignalFlowGraph,
    estimator: &Estimator,
    config: &MapperConfig,
    cache: &CoverCache,
) -> Result<MapResult, MapError> {
    let seed_incumbent = config.budget.is_limited();
    let meter = BudgetMeter::new(config.effective_budget(), None);
    map_graph_metered_cached(graph, estimator, config, &meter, seed_incumbent, Some(cache), None)
}

/// The budget-aware mapping core: meters node visits on `meter`
/// (shareable across several graphs of one design) and, when
/// `seed_incumbent` is set, pre-seeds the search with a greedy mapping
/// so exhaustion always has an incumbent to return. The greedy seed
/// runs outside the meter — it is linear in the graph and counts as
/// setup, not search.
pub(crate) fn map_graph_metered(
    graph: &SignalFlowGraph,
    estimator: &Estimator,
    config: &MapperConfig,
    meter: &BudgetMeter,
    seed_incumbent: bool,
) -> Result<MapResult, MapError> {
    map_graph_metered_cached(graph, estimator, config, meter, seed_incumbent, None, None)
}

/// [`map_graph_metered`] with an optional cover cache consulted before
/// branching and updated after a completed (non-exhausted) search, and
/// optional proven value bounds for the swing-aware candidate pruning
/// (only consulted when `config.range_prune` is set).
pub(crate) fn map_graph_metered_cached(
    graph: &SignalFlowGraph,
    estimator: &Estimator,
    config: &MapperConfig,
    meter: &BudgetMeter,
    seed_incumbent: bool,
    cover_cache: Option<&CoverCache>,
    bounds: Option<&GraphBounds>,
) -> Result<MapResult, MapError> {
    let start = Instant::now();
    // Run the matcher once per block, up front; both the pre-check and
    // every decision-tree visit read from this cache.
    let cache = MatchCache::build(graph, &config.match_options);
    // Pre-check: every operation block must have at least one pattern.
    for (id, block) in graph.iter() {
        if !block.kind.is_interface() && cache.at(id).is_empty() {
            return Err(MapError::NoPattern {
                block: format!("{id} ({})", block.kind),
            });
        }
    }
    // Content-addressed reuse: a structurally identical graph mapped
    // before (under the same constraints and options) resolves in
    // O(lookup), skipping the search entirely.
    let cache_key =
        cover_cache.map(|c| (c, CoverCache::key_with_bounds(graph, estimator, config, bounds)));
    if let Some((cc, key)) = &cache_key {
        if let Some((netlist, estimate)) = cc.lookup(*key, graph, estimator, config) {
            let stats = MapStats {
                cache_hits: 1,
                elapsed_us: start.elapsed().as_micros() as u64,
                ..MapStats::default()
            };
            return Ok(MapResult { netlist, estimate, stats });
        }
    }
    let seed = if seed_incumbent {
        crate::greedy::map_graph_greedy_planned(graph, estimator, config)
            .ok()
            .map(|(r, components, opamps)| Best {
                area: r.estimate.area_m2,
                netlist: r.netlist,
                estimate: r.estimate,
                components,
                opamps,
            })
    } else {
        None
    };
    let ctx = SearchCtx::new(graph, estimator, config, cache, meter, bounds);
    let jobs = config.effective_parallelism();
    let (best, mut stats) = match config.strategy {
        SearchStrategy::Guided => crate::guide::run_guided(&ctx, seed),
        SearchStrategy::Exact if jobs <= 1 => {
            let mut search = Search::sequential(&ctx);
            search.best = seed;
            search.run(Plan::new(graph));
            (search.best, search.stats)
        }
        SearchStrategy::Exact => run_parallel(&ctx, jobs, seed),
    };
    stats.elapsed_us = start.elapsed().as_micros() as u64;
    stats.budget_exhausted = meter.exhausted();
    match best {
        Some(best) => {
            if let Some((cc, key)) = cache_key {
                // Only proven-complete searches are worth remembering:
                // a budget-exhausted incumbent must not masquerade as
                // the best-known cover. (A greedy seed that survives a
                // *completed* search is fine — completion proved it
                // area-optimal.)
                if !stats.budget_exhausted && !best.components.is_empty() {
                    cc.insert(key, best.opamps, best.components.clone());
                }
                stats.cache_misses = 1;
            }
            Ok(MapResult {
                netlist: best.netlist,
                estimate: best.estimate,
                stats,
            })
        }
        None => Err(MapError::NoFeasibleMapping),
    }
}

/// The best complete mapping found by one search (or worker).
pub(crate) struct Best {
    pub(crate) area: f64,
    pub(crate) netlist: Netlist,
    pub(crate) estimate: NetlistEstimate,
    /// The winning plan's components, for cover-cache insertion.
    pub(crate) components: Vec<PlannedComponent>,
    /// The winning plan's op-amp count (matches `components`).
    pub(crate) opamps: usize,
}

/// Immutable, thread-shareable context of one `map_graph` call: the
/// graph, the precomputed match cache and per-alternative spec
/// feasibility, the block coverage order, and the bound constant.
pub(crate) struct SearchCtx<'a> {
    pub(crate) graph: &'a SignalFlowGraph,
    pub(crate) estimator: &'a Estimator,
    pub(crate) config: &'a MapperConfig,
    pub(crate) cache: MatchCache,
    /// `spec_ok[block][alternative]`: whether the matched component's
    /// op-amp spec is achievable at all (computed once, not per node).
    pub(crate) spec_ok: Vec<Vec<bool>>,
    /// `alt_area[block][alternative]`: the matched component's
    /// estimated area. The guided search accumulates these as its
    /// admissible placed-area bound; computed alongside `spec_ok` from
    /// the same (memoized) estimates, so the search itself never calls
    /// the estimator per node.
    pub(crate) alt_area: Vec<Vec<f64>>,
    /// `range_pruned[block][alternative]`: whether a proven value bound
    /// showed the alternative dominated at the proven swing (see
    /// [`range_prune_table`]). `None` unless `config.range_prune` is
    /// set *and* bounds were supplied, so the default path allocates
    /// and checks nothing.
    range_pruned: Option<Vec<Vec<bool>>>,
    pub(crate) order: Vec<BlockId>,
    pub(crate) min_area: f64,
    /// The shared budget meter; every decision-tree visit notes a node
    /// here, and exhaustion unwinds the search keeping its incumbent.
    pub(crate) meter: &'a BudgetMeter,
}

impl<'a> SearchCtx<'a> {
    pub(crate) fn new(
        graph: &'a SignalFlowGraph,
        estimator: &'a Estimator,
        config: &'a MapperConfig,
        cache: MatchCache,
        meter: &'a BudgetMeter,
        bounds: Option<&GraphBounds>,
    ) -> Self {
        // One estimator run per *distinct* kind: alternatives repeat
        // kinds heavily (every Scale block matches the same follower /
        // inverting-amp shapes), so the memo collapses the square-law
        // sizing work while staying bitwise identical to fresh calls.
        let mut memo = EstimateMemo::new();
        let mut spec_ok = Vec::with_capacity(graph.len());
        let mut alt_area = Vec::with_capacity(graph.len());
        for i in 0..graph.len() {
            let alternatives = cache.at(BlockId::from_index(i));
            let mut ok = Vec::with_capacity(alternatives.len());
            let mut area = Vec::with_capacity(alternatives.len());
            for m in alternatives {
                let e = memo.estimate(estimator, &m.kind);
                ok.push(e.spec_met);
                area.push(e.area_m2);
            }
            spec_ok.push(ok);
            alt_area.push(area);
        }
        let range_pruned = bounds
            .filter(|_| config.range_prune)
            .map(|b| range_prune_table(graph, &cache, estimator, &spec_ok, &alt_area, b));
        SearchCtx {
            graph,
            estimator,
            config,
            cache,
            spec_ok,
            alt_area,
            range_pruned,
            order: coverage_order(graph),
            min_area: estimator.min_opamp_area(),
            meter,
        }
    }

    /// The next block the branching rule expands, in coverage order.
    pub(crate) fn next_uncovered(&self, plan: &Plan) -> Option<BlockId> {
        self.order.iter().copied().find(|&b| !plan.is_covered(b))
    }

    /// Whether the swing-aware dominance table marked this alternative
    /// pruned (always false when range pruning is off).
    pub(crate) fn is_range_pruned(&self, block: BlockId, alt: usize) -> bool {
        self.range_pruned
            .as_ref()
            .is_some_and(|t| t[block.index()][alt])
    }
}

/// Build the swing-aware dominance table for `range_prune`.
///
/// At a block whose output value the range analysis proved to lie in
/// `[lo, hi]`, the real swing the placed component must deliver is
/// `swing = max(|lo|, |hi|)` — possibly far below the full
/// `signal_peak_v · gain` the default sizing assumes. Alternative `j`
/// is marked pruned iff:
///
/// * its default sizing carries headroom beyond the proof
///   (`signal_peak_v · gain_j > swing`), and
/// * some other alternative `i` at the same block covers exactly the
///   same blocks with the same inputs, is feasible under the *global*
///   spec (so keeping only `i` can never turn a feasible mapping
///   infeasible at the final netlist check), meets the spec when sized
///   at the proven swing, and needs no more op amps and no more area
///   than `j` under *both* sizings — the default full-swing estimate
///   the search's cost function uses, and the proven-swing estimate —
///   with ties broken towards the lower index so two equal
///   alternatives never prune each other.
///
/// Requiring dominance under both sizings keeps the table sound in
/// either ordering: the retained `i` is no worse in the area the
/// search actually minimises, *and* no worse at the proven operating
/// point (lowering the swing relaxes only the slew requirement — see
/// [`Estimator::estimate_component_at_swing`] — which shifts bias
/// currents, so the two orderings can differ). The table is still a
/// heuristic with respect to global area optimality (a pruned
/// alternative could have enabled sharing elsewhere), which is why the
/// whole mechanism is opt-in and off by default.
fn range_prune_table(
    graph: &SignalFlowGraph,
    cache: &MatchCache,
    estimator: &Estimator,
    spec_ok: &[Vec<bool>],
    alt_area: &[Vec<f64>],
    bounds: &GraphBounds,
) -> Vec<Vec<bool>> {
    let peak = estimator.constraints.signal_peak_v;
    let mut table = Vec::with_capacity(graph.len());
    for bi in 0..graph.len() {
        let id = BlockId::from_index(bi);
        let alternatives = cache.at(id);
        let mut row = vec![false; alternatives.len()];
        let swing = match bounds.get(id) {
            Some((lo, hi)) => lo.abs().max(hi.abs()),
            None => {
                table.push(row);
                continue;
            }
        };
        if !swing.is_finite() {
            table.push(row);
            continue;
        }
        // Size every alternative for the swing it actually needs: the
        // proven bound, capped at its own full-signal swing (sizing
        // beyond the default would be needlessly conservative).
        let at_swing: Vec<_> = alternatives
            .iter()
            .map(|m| {
                let full = peak * m.kind.max_gain().max(1.0);
                estimator.estimate_component_at_swing(&m.kind, swing.min(full))
            })
            .collect();
        for j in 0..alternatives.len() {
            let mj = &alternatives[j];
            // Only candidates whose default sizing exceeds the proven
            // range are ever pruned.
            if peak * mj.kind.max_gain().max(1.0) <= swing {
                continue;
            }
            row[j] = (0..alternatives.len()).any(|i| {
                i != j
                    && spec_ok[bi][i]
                    && at_swing[i].spec_met
                    && alternatives[i].kind.opamp_count() <= mj.kind.opamp_count()
                    && same_cover_and_inputs(&alternatives[i], mj)
                    && alt_area[bi][i] <= alt_area[bi][j]
                    && (at_swing[i].area_m2 < at_swing[j].area_m2
                        || (at_swing[i].area_m2 == at_swing[j].area_m2 && i < j))
            });
        }
        table.push(row);
    }
    table
}

/// Whether two alternatives implement the same cover from the same
/// inputs (input order is semantic — it is the component's wiring — so
/// it must match exactly; the covered set is order-insensitive).
fn same_cover_and_inputs(a: &PatternMatch, b: &PatternMatch) -> bool {
    if a.inputs != b.inputs || a.covered.len() != b.covered.len() {
        return false;
    }
    let mut ca: Vec<usize> = a.covered.iter().map(|b| b.index()).collect();
    let mut cb: Vec<usize> = b.covered.iter().map(|b| b.index()).collect();
    ca.sort_unstable();
    cb.sort_unstable();
    ca == cb
}

/// Dominance-memo storage: disabled, thread-local, or shared across
/// workers.
enum MemoBackend<'a> {
    Off,
    Local(HashMap<CoverSet, usize>),
    Shared(&'a ShardedMemo),
}

impl MemoBackend<'_> {
    /// Whether reaching `key` with `opamps` op amps is dominated by an
    /// earlier visit; records the visit otherwise.
    fn dominated(&mut self, key: &CoverSet, opamps: usize) -> bool {
        match self {
            MemoBackend::Off => false,
            MemoBackend::Local(map) => match map.get_mut(key) {
                Some(best) if *best <= opamps => true,
                Some(best) => {
                    *best = opamps;
                    false
                }
                None => {
                    map.insert(key.clone(), opamps);
                    false
                }
            },
            MemoBackend::Shared(memo) => memo.dominated(key, opamps),
        }
    }
}

pub(crate) struct Search<'a> {
    ctx: &'a SearchCtx<'a>,
    pub(crate) best: Option<Best>,
    memo: MemoBackend<'a>,
    shared: Option<&'a SharedSearchState>,
    pub(crate) stats: MapStats,
}

impl<'a> Search<'a> {
    /// A single-threaded search over the whole decision tree.
    pub(crate) fn sequential(ctx: &'a SearchCtx<'a>) -> Self {
        let memo = if ctx.config.memoize {
            MemoBackend::Local(HashMap::new())
        } else {
            MemoBackend::Off
        };
        Search {
            ctx,
            best: None,
            memo,
            shared: None,
            stats: MapStats::default(),
        }
    }

    /// A worker search over one subtree, pruning against the shared
    /// incumbent bound and the shared dominance memo.
    pub(crate) fn worker(ctx: &'a SearchCtx<'a>, shared: &'a SharedSearchState) -> Self {
        let memo = if ctx.config.memoize {
            MemoBackend::Shared(&shared.memo)
        } else {
            MemoBackend::Off
        };
        Search {
            ctx,
            best: None,
            memo,
            shared: Some(shared),
            stats: MapStats::default(),
        }
    }

    pub(crate) fn run(&mut self, plan: Plan) {
        // The anytime contract: once the budget trips, every pending
        // recursion unwinds immediately, leaving `self.best` as the
        // incumbent to return.
        if !self.ctx.meter.note_node() {
            self.stats.budget_exhausted = true;
            return;
        }
        self.stats.visited_nodes += 1;

        if self.memo.dominated(&plan.covered, plan.opamps) {
            self.stats.memo_pruned += 1;
            return;
        }

        let Some(cur) = self.ctx.next_uncovered(&plan) else {
            self.complete(&plan);
            return;
        };

        let alternatives = self.ctx.cache.at(cur);
        for k in 0..alternatives.len() {
            // The cache stores alternatives largest-cover-first (the
            // sequencing rule); the ablation visits them smallest-first.
            let i = if self.ctx.config.sequencing {
                k
            } else {
                alternatives.len() - 1 - k
            };
            let m = &alternatives[i];
            // Overlap with already-covered blocks is illegal.
            if m.covered.iter().any(|&b| plan.is_covered(b)) {
                continue;
            }
            // Share branch first (sequencing rule: sharing before
            // allocation).
            if self.ctx.config.sharing {
                if let Some(existing) = plan.find_shareable(&m.kind, &m.inputs) {
                    let mut shared = plan.clone();
                    for &b in &m.covered {
                        shared.cover(b);
                        shared.components[existing].covered.push(b);
                    }
                    self.run(shared);
                }
            }
            // Allocate branch. A component whose op-amp spec no library
            // topology can meet (e.g. a gain-200 amplifier over a wide
            // band) can never appear in a feasible netlist — reject it
            // locally so the functional-transformation alternatives
            // (gain-split chains) are explored instead.
            if !self.ctx.spec_ok[cur.index()][i] {
                self.stats.pruned_nodes += 1;
                continue;
            }
            // Swing-aware dominance: a proven value bound showed a
            // same-cover alternative that suffices at the proven swing
            // for no more area. Sharing is unaffected (it allocates
            // nothing), so only the allocate branch is skipped.
            if self.ctx.is_range_pruned(cur, i) {
                self.stats.range_pruned += 1;
                continue;
            }
            if self.ctx.config.bounding {
                let bound = self.bound_area();
                if bound.is_finite() {
                    let added = m.kind.opamp_count();
                    let lower_bound = (plan.opamps + added) as f64 * self.ctx.min_area;
                    if lower_bound >= bound {
                        self.stats.pruned_nodes += 1;
                        continue;
                    }
                }
            }
            let mut allocated = plan.clone();
            apply_match(&mut allocated, m, cur);
            self.run(allocated);
        }
    }

    /// The incumbent area to bound against: the local best, tightened
    /// by the best any worker has published.
    fn bound_area(&self) -> f64 {
        let local = self.best.as_ref().map_or(f64::INFINITY, |b| b.area);
        match self.shared {
            Some(shared) => local.min(f64::from_bits(shared.best_area.load(Ordering::Relaxed))),
            None => local,
        }
    }

    fn complete(&mut self, plan: &Plan) {
        self.stats.complete_mappings += 1;
        let Ok(netlist) = resolve(self.ctx.graph, plan, self.ctx.config.fanout_limit) else {
            return;
        };
        let estimate = self.ctx.estimator.estimate_netlist(&netlist);
        if !estimate.feasible() {
            self.stats.infeasible_mappings += 1;
            return;
        }
        let area = estimate.area_m2;
        if self.best.as_ref().is_none_or(|b| area < b.area) {
            self.best = Some(Best {
                area,
                netlist,
                estimate,
                components: plan.components.clone(),
                opamps: plan.opamps,
            });
        }
        if let Some(shared) = self.shared {
            // Publish for cross-worker bounding. Non-negative IEEE
            // doubles order the same as their bit patterns, so an
            // atomic integer min keeps the true minimum area.
            shared
                .best_area
                .fetch_min(area.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Extend `plan` with an allocated component for match `m` at `output`.
pub(crate) fn apply_match(plan: &mut Plan, m: &PatternMatch, output: BlockId) {
    for &b in &m.covered {
        plan.cover(b);
    }
    plan.opamps += m.kind.opamp_count();
    plan.components.push(PlannedComponent {
        kind: m.kind.clone(),
        covered: m.covered.clone(),
        inputs: m.inputs.clone(),
        output,
    });
}

/// The order in which uncovered blocks are picked: depth-first from the
/// external outputs back through the drivers (the paper's "select an
/// input signal of sub-graph" walk), followed by any remaining
/// operation blocks (e.g. comparator networks feeding only control
/// ports).
pub(crate) fn coverage_order(graph: &SignalFlowGraph) -> Vec<BlockId> {
    let mut order = Vec::new();
    let mut seen = vec![false; graph.len()];
    let mut stack: Vec<BlockId> = graph.outputs();
    while let Some(b) = stack.pop() {
        if seen[b.index()] {
            continue;
        }
        seen[b.index()] = true;
        if !graph.block(b).kind.is_interface() {
            order.push(b);
        }
        for driver in graph.block_inputs(b).iter().flatten() {
            stack.push(*driver);
        }
    }
    for (id, block) in graph.iter() {
        if !seen[id.index()] && !block.kind.is_interface() {
            order.push(id);
            seen[id.index()] = true;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use vase_library::ComponentKind;
    use vase_vhif::BlockKind;

    fn estimator() -> Estimator {
        Estimator::default()
    }

    /// The paper's Fig. 6a example: y = k1·a + k2·b processed through a
    /// multiply-and-add structure mappable with 2, 3, or 4 op amps.
    fn fig6_graph() -> SignalFlowGraph {
        let mut g = SignalFlowGraph::new("fig6");
        let a = g.add(BlockKind::Input { name: "a".into() });
        let b = g.add(BlockKind::Input { name: "b".into() });
        let s1 = g.add_labelled(BlockKind::Scale { gain: 2.0 }, "block1");
        let s2 = g.add_labelled(BlockKind::Scale { gain: 3.0 }, "block2");
        let add = g.add_labelled(BlockKind::Add { arity: 2 }, "block3");
        let s3 = g.add_labelled(BlockKind::Scale { gain: 0.5 }, "block4");
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(a, s1, 0).expect("wire");
        g.connect(b, s2, 0).expect("wire");
        g.connect(s1, add, 0).expect("wire");
        g.connect(s2, add, 1).expect("wire");
        g.connect(add, s3, 0).expect("wire");
        g.connect(s3, y, 0).expect("wire");
        g
    }

    /// A chain of `n` unity-gain buffers (x → 1·1·…·1 → y).
    fn buffer_chain(n: usize) -> SignalFlowGraph {
        let mut g = SignalFlowGraph::new("chain");
        let mut prev = g.add(BlockKind::Input { name: "x".into() });
        for _ in 0..n {
            let s = g.add(BlockKind::Scale { gain: 1.0 });
            g.connect(prev, s, 0).expect("wire");
            prev = s;
        }
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(prev, y, 0).expect("wire");
        g
    }

    #[test]
    fn fig6_best_mapping_uses_one_summing_amp() {
        // Scale∘Add with folded scale children → all 4 blocks in ONE
        // weighted summing amplifier (even better than the paper's
        // 2-op-amp result, which lacked the Scale∘Add fold for the
        // outer gain).
        let g = fig6_graph();
        let result = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        result.netlist.validate().expect("valid");
        assert_eq!(result.netlist.opamp_count(), 1, "{}", result.netlist);
        match &result.netlist.components[0].kind {
            ComponentKind::SummingAmp { weights } => {
                assert_eq!(weights, &vec![1.0, 1.5]);
            }
            other => panic!("expected summing amp, got {other:?}"),
        }
    }

    #[test]
    fn single_block_mapping_uses_four_opamps() {
        // With multi-block patterns off, each of the 4 blocks costs an
        // op amp — the worst branch of the paper's Fig. 6 tree.
        let g = fig6_graph();
        let mut config = MapperConfig::default();
        config.match_options.multi_block = false;
        config.match_options.transforms = false;
        let result = map_graph(&g, &estimator(), &config).expect("maps");
        assert_eq!(result.netlist.opamp_count(), 4, "{}", result.netlist);
    }

    #[test]
    fn bounding_prunes_nodes() {
        // A chain of unity-gain buffers: every component costs close to
        // `MinArea`, so the bound `(opamps + comp) · MinArea ≥ best`
        // becomes effective once the 6-follower optimum is found and a
        // branch accumulates per-block followers.
        let g = buffer_chain(12);

        // Isolate the bounding rule: memoization off for both runs.
        let bounded = map_graph(
            &g,
            &estimator(),
            &MapperConfig {
                memoize: false,
                ..MapperConfig::default()
            },
        )
        .expect("maps");
        let exhaustive = map_graph(&g, &estimator(), &MapperConfig::exhaustive()).expect("maps");
        // Same optimum (6 pair-folded buffers)...
        assert_eq!(
            bounded.netlist.opamp_count(),
            exhaustive.netlist.opamp_count()
        );
        assert_eq!(bounded.netlist.opamp_count(), 6);
        // ...but bounding visits fewer nodes and actually prunes.
        assert!(bounded.stats.visited_nodes <= exhaustive.stats.visited_nodes);
        assert!(
            bounded.stats.pruned_nodes > 0,
            "expected pruning; visited {} vs {}",
            bounded.stats.visited_nodes,
            exhaustive.stats.visited_nodes
        );
        assert_eq!(exhaustive.stats.pruned_nodes, 0);
    }

    #[test]
    fn sharing_reuses_identical_subcircuits() {
        // Two outputs computing the same 2·x: with sharing one amp
        // serves both.
        let mut g = SignalFlowGraph::new("share");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let s1 = g.add(BlockKind::Scale { gain: 2.0 });
        let s2 = g.add(BlockKind::Scale { gain: 2.0 });
        let y1 = g.add(BlockKind::Output { name: "y1".into() });
        let y2 = g.add(BlockKind::Output { name: "y2".into() });
        g.connect(x, s1, 0).expect("wire");
        g.connect(x, s2, 0).expect("wire");
        g.connect(s1, y1, 0).expect("wire");
        g.connect(s2, y2, 0).expect("wire");

        let shared = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        assert_eq!(shared.netlist.opamp_count(), 1, "{}", shared.netlist);

        let config = MapperConfig {
            sharing: false,
            ..MapperConfig::default()
        };
        let unshared = map_graph(&g, &estimator(), &config).expect("maps");
        assert_eq!(unshared.netlist.opamp_count(), 2, "{}", unshared.netlist);
    }

    #[test]
    fn integrator_feedback_loop_maps() {
        // dx/dt = -x: summing integrator with its own output fed back.
        let mut g = SignalFlowGraph::new("ode");
        let integ = g.add(BlockKind::Integrate {
            gain: 1.0,
            initial: 1.0,
        });
        let neg = g.add(BlockKind::Scale { gain: -1.0 });
        let y = g.add(BlockKind::Output { name: "x".into() });
        g.connect(integ, neg, 0).expect("wire");
        g.connect(neg, integ, 0).expect("wire");
        g.connect(integ, y, 0).expect("wire");
        let result = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        result.netlist.validate().expect("valid");
        // Best: one summing integrator implementing both blocks.
        assert_eq!(result.netlist.opamp_count(), 1, "{}", result.netlist);
    }

    #[test]
    fn infeasible_constraints_yield_error() {
        use vase_estimate::PerformanceConstraints;
        let g = fig6_graph();
        let e = Estimator::new(PerformanceConstraints {
            bandwidth_hz: 4e3,
            signal_peak_v: 1.0,
            max_power_w: 0.0, // nothing is feasible
            max_area_m2: f64::INFINITY,
        });
        let err = map_graph(&g, &e, &MapperConfig::default()).unwrap_err();
        assert_eq!(err, MapError::NoFeasibleMapping);
    }

    #[test]
    fn stats_count_complete_mappings() {
        let g = fig6_graph();
        let result = map_graph(&g, &estimator(), &MapperConfig::exhaustive()).expect("maps");
        assert!(result.stats.complete_mappings >= 2);
        assert!(result.stats.visited_nodes > result.stats.complete_mappings);
    }

    #[test]
    fn memoization_prunes_but_preserves_the_optimum() {
        let g = fig6_graph();
        let with = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        let without = map_graph(
            &g,
            &estimator(),
            &MapperConfig {
                memoize: false,
                ..MapperConfig::default()
            },
        )
        .expect("maps");
        assert_eq!(with.netlist.opamp_count(), without.netlist.opamp_count());
        assert!(with.stats.visited_nodes <= without.stats.visited_nodes);
    }

    #[test]
    fn sequencing_off_still_finds_optimum_but_slower_bound() {
        let g = fig6_graph();
        let config = MapperConfig {
            sequencing: false,
            ..MapperConfig::default()
        };
        let result = map_graph(&g, &estimator(), &config).expect("maps");
        assert_eq!(result.netlist.opamp_count(), 1);
    }

    #[test]
    fn matcher_runs_once_per_block_per_call() {
        use vase_library::matches_at_calls_on_thread;
        let g = fig6_graph();
        // parallelism = 1 keeps the whole search on this thread, so the
        // thread-local matcher-call counter sees every invocation.
        let before = matches_at_calls_on_thread();
        map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        let calls = matches_at_calls_on_thread() - before;
        assert_eq!(
            calls,
            g.len() as u64,
            "matches_at must run exactly once per block per map_graph call"
        );
    }

    #[test]
    fn parallel_search_matches_sequential_optimum() {
        for graph in [fig6_graph(), buffer_chain(10)] {
            let seq = map_graph(&graph, &estimator(), &MapperConfig::default()).expect("maps");
            for parallelism in [2usize, 4, 8] {
                let config = MapperConfig {
                    parallelism,
                    ..MapperConfig::default()
                };
                let par = map_graph(&graph, &estimator(), &config).expect("maps");
                assert_eq!(
                    par.netlist.opamp_count(),
                    seq.netlist.opamp_count(),
                    "parallelism={parallelism} on {}",
                    graph.name()
                );
                assert!(
                    (par.estimate.area_m2 - seq.estimate.area_m2).abs()
                        <= seq.estimate.area_m2 * 1e-12,
                    "parallelism={parallelism} on {}: {} vs {}",
                    graph.name(),
                    par.estimate.area_m2,
                    seq.estimate.area_m2
                );
            }
        }
    }

    #[test]
    fn explicit_split_depth_matches_optimum_too() {
        let g = buffer_chain(10);
        let seq = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        for split_depth in [1usize, 2, 4] {
            let config = MapperConfig {
                parallelism: 3,
                split_depth,
                ..MapperConfig::default()
            };
            let par = map_graph(&g, &estimator(), &config).expect("maps");
            assert_eq!(par.netlist.opamp_count(), seq.netlist.opamp_count());
        }
    }

    #[test]
    fn parallel_infeasible_still_errors() {
        use vase_estimate::PerformanceConstraints;
        let g = fig6_graph();
        let e = Estimator::new(PerformanceConstraints {
            bandwidth_hz: 4e3,
            signal_peak_v: 1.0,
            max_power_w: 0.0,
            max_area_m2: f64::INFINITY,
        });
        let err = map_graph(
            &g,
            &e,
            &MapperConfig {
                parallelism: 4,
                ..MapperConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, MapError::NoFeasibleMapping);
    }

    #[test]
    fn node_budget_returns_verifier_clean_incumbent() {
        use vase_budget::Budget;
        let g = buffer_chain(12);
        let unbudgeted = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        for parallelism in [1usize, 4] {
            let config = MapperConfig {
                budget: Budget::nodes(8),
                parallelism,
                ..MapperConfig::default()
            };
            let result = map_graph(&g, &estimator(), &config).expect("anytime mapping");
            assert!(
                result.stats.budget_exhausted,
                "8 nodes cannot finish a 12-block chain (parallelism={parallelism})"
            );
            result.netlist.validate().expect("incumbent is structurally valid");
            assert!(result.estimate.feasible(), "incumbent meets constraints");
            // The incumbent can only be as good as or worse than the
            // proven optimum.
            assert!(result.estimate.area_m2 >= unbudgeted.estimate.area_m2 * 0.999);
        }
    }

    #[test]
    fn pre_cancelled_token_still_yields_incumbent() {
        let token = CancelToken::new();
        token.cancel();
        let g = buffer_chain(10);
        let result = map_graph_with_cancel(&g, &estimator(), &MapperConfig::default(), Some(token))
            .expect("cancellation is anytime, not an error");
        assert!(result.stats.budget_exhausted);
        result.netlist.validate().expect("valid");
        assert!(result.estimate.feasible());
    }

    #[test]
    fn generous_budget_matches_unbudgeted_optimum() {
        use vase_budget::Budget;
        let g = fig6_graph();
        let free = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        let config = MapperConfig {
            budget: Budget::nodes(1_000_000),
            ..MapperConfig::default()
        };
        let budgeted = map_graph(&g, &estimator(), &config).expect("maps");
        assert!(!budgeted.stats.budget_exhausted);
        assert_eq!(budgeted.netlist.opamp_count(), free.netlist.opamp_count());
    }

    /// Map with explicit bounds through the metered entry point.
    fn map_with_bounds(
        graph: &SignalFlowGraph,
        estimator: &Estimator,
        config: &MapperConfig,
        bounds: Option<&GraphBounds>,
    ) -> Result<MapResult, MapError> {
        let meter = BudgetMeter::new(config.effective_budget(), None);
        map_graph_metered_cached(graph, estimator, config, &meter, false, None, bounds)
    }

    #[test]
    fn bounds_without_range_prune_are_bit_identical() {
        // Attaching proven bounds must change nothing unless
        // `range_prune` is opted into — the equivalence the flow's
        // default path relies on.
        let g = fig6_graph();
        let mut bounds = GraphBounds::unknown(&g);
        for b in bounds.blocks.iter_mut() {
            *b = Some((-0.1, 0.1));
        }
        let plain = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        let with =
            map_with_bounds(&g, &estimator(), &MapperConfig::default(), Some(&bounds))
                .expect("maps");
        assert_eq!(with.netlist, plain.netlist);
        assert_eq!(with.estimate.area_m2.to_bits(), plain.estimate.area_m2.to_bits());
        assert_eq!(with.stats.range_pruned, 0);
    }

    #[test]
    fn range_prune_skips_dominated_over_headroom_alternatives() {
        // A gain-40 stage: the matcher offers both the single amplifier
        // and its gain-split chain transformation (same cover, same
        // inputs, more op amps). With the output proven to stay within
        // ±0.5 V, the chain carries swing headroom the proof rules out
        // and is dominated by the feasible single amp.
        let mut g = SignalFlowGraph::new("gain40");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let s = g.add(BlockKind::Scale { gain: 40.0 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, s, 0).expect("wire");
        g.connect(s, y, 0).expect("wire");
        let mut bounds = GraphBounds::unknown(&g);
        bounds.blocks[s.index()] = Some((-0.5, 0.5));

        let config = MapperConfig { range_prune: true, ..MapperConfig::default() };
        let pruned = map_with_bounds(&g, &estimator(), &config, Some(&bounds)).expect("maps");
        pruned.netlist.validate().expect("valid");
        assert!(pruned.estimate.feasible());
        assert!(
            pruned.stats.range_pruned > 0,
            "expected the chain alternative pruned: {:?}",
            pruned.stats
        );
        // Here dominance preserves the optimum: the single amp was the
        // best mapping anyway.
        let plain = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        assert_eq!(pruned.netlist, plain.netlist);
    }

    #[test]
    fn range_prune_with_unknown_bounds_is_a_no_op() {
        let g = fig6_graph();
        let bounds = GraphBounds::unknown(&g);
        let config = MapperConfig { range_prune: true, ..MapperConfig::default() };
        let result = map_with_bounds(&g, &estimator(), &config, Some(&bounds)).expect("maps");
        let plain = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        assert_eq!(result.netlist, plain.netlist);
        assert_eq!(result.stats.range_pruned, 0);
    }

    #[test]
    fn range_prune_matches_across_strategies() {
        // The pruning table is strategy-independent: exact, guided, and
        // parallel searches see the same pruned alternatives and agree
        // on the result.
        let mut g = SignalFlowGraph::new("two_stage");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let s1 = g.add(BlockKind::Scale { gain: 40.0 });
        let s2 = g.add(BlockKind::Scale { gain: 0.5 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, s1, 0).expect("wire");
        g.connect(s1, s2, 0).expect("wire");
        g.connect(s2, y, 0).expect("wire");
        let mut bounds = GraphBounds::unknown(&g);
        bounds.blocks[s1.index()] = Some((-0.5, 0.5));
        bounds.blocks[s2.index()] = Some((-0.25, 0.25));

        let exact = MapperConfig { range_prune: true, ..MapperConfig::default() };
        let guided = MapperConfig { range_prune: true, ..MapperConfig::guided() };
        let parallel = MapperConfig { range_prune: true, parallelism: 4, ..MapperConfig::default() };
        let e = map_with_bounds(&g, &estimator(), &exact, Some(&bounds)).expect("maps");
        let u = map_with_bounds(&g, &estimator(), &guided, Some(&bounds)).expect("maps");
        let p = map_with_bounds(&g, &estimator(), &parallel, Some(&bounds)).expect("maps");
        assert_eq!(e.netlist, u.netlist);
        assert_eq!(e.netlist.opamp_count(), p.netlist.opamp_count());
        assert!((e.estimate.area_m2 - p.estimate.area_m2).abs() <= e.estimate.area_m2 * 1e-12);
    }

    #[test]
    fn stats_record_wall_clock() {
        let g = buffer_chain(8);
        let result = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        // Any real search takes a nonzero number of microseconds...
        // except on very fast hosts; accept zero but require the field
        // to round-trip through Display.
        assert!(result.stats.to_string().contains("visited"));
    }
}
