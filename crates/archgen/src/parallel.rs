//! Parallel subtree search for the branch-and-bound mapper.
//!
//! The decision tree's top levels are expanded sequentially into a
//! frontier of subtree-root plans (in the same deterministic order the
//! sequential search would first reach them); the frontier entries then
//! become tasks claimed by scoped worker threads. Workers cooperate
//! through [`SharedSearchState`]:
//!
//! * the incumbent best area is published as a bit-ordered `AtomicU64`
//!   (non-negative IEEE doubles compare the same as their bit
//!   patterns), so the bounding rule prunes across workers;
//! * the dominance memo is sharded across mutex-protected hash maps
//!   keyed by the allocation-free [`CoverSet`];
//! * the compute budget (node cap, deadline, cancellation) is a shared
//!   [`vase_budget::BudgetMeter`] owned by the calling context — every
//!   frontier expansion and worker visit notes a node on it, and
//!   exhaustion makes every worker unwind keeping its incumbent.
//!
//! Because a worker only ever *prunes* against the shared bound (the
//! acceptance test for a new best is a strict improvement), the minimum
//! area over all workers equals the sequential optimum; equal-area ties
//! between subtrees are broken by the lowest task index, keeping the
//! reported mapping stable run-to-run.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::bnb::{apply_match, Best, Search, SearchCtx};
use crate::config::MapStats;
use crate::cover::CoverSet;
use crate::plan::Plan;

/// Subtree tasks to aim for per worker when `split_depth` is auto.
const TASKS_PER_WORKER: usize = 4;
/// Auto-split never expands more than this many tree levels.
const MAX_AUTO_DEPTH: usize = 8;

/// A dominance memo sharded over independently locked hash maps, so
/// concurrent workers rarely contend on the same shard.
pub(crate) struct ShardedMemo {
    shards: Vec<Mutex<HashMap<CoverSet, usize>>>,
    mask: usize,
}

impl ShardedMemo {
    pub(crate) fn new(jobs: usize) -> Self {
        let n = (jobs * 4).next_power_of_two().max(16);
        ShardedMemo {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, key: &CoverSet) -> &Mutex<HashMap<CoverSet, usize>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Whether reaching `key` with `opamps` op amps is dominated by an
    /// earlier visit (possibly from another worker); records the visit
    /// otherwise.
    pub(crate) fn dominated(&self, key: &CoverSet, opamps: usize) -> bool {
        let mut map = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match map.get_mut(key) {
            Some(best) if *best <= opamps => true,
            Some(best) => {
                *best = opamps;
                false
            }
            None => {
                map.insert(key.clone(), opamps);
                false
            }
        }
    }
}

/// State shared by all workers of one parallel `map_graph` call.
pub(crate) struct SharedSearchState {
    /// Bits of the best feasible area found by any worker
    /// (`f64::INFINITY.to_bits()` until one exists).
    pub(crate) best_area: AtomicU64,
    /// The cross-worker dominance memo.
    pub(crate) memo: ShardedMemo,
}

impl SharedSearchState {
    fn new(jobs: usize) -> Self {
        SharedSearchState {
            best_area: AtomicU64::new(f64::INFINITY.to_bits()),
            memo: ShardedMemo::new(jobs),
        }
    }
}

/// Search the decision tree of `ctx` with `jobs` worker threads.
///
/// `seed` (the greedy incumbent under a limited budget) both tightens
/// the shared bound from the start and acts as the fallback result when
/// the budget trips before any worker completes a better mapping.
pub(crate) fn run_parallel(
    ctx: &SearchCtx<'_>,
    jobs: usize,
    seed: Option<Best>,
) -> (Option<Best>, MapStats) {
    let mut stats = MapStats::default();
    let tasks = expand_frontier(ctx, jobs, &mut stats);
    if tasks.is_empty() {
        return (seed, stats);
    }
    let shared = SharedSearchState::new(jobs);
    if let Some(s) = &seed {
        shared.best_area.fetch_min(s.area.to_bits(), Ordering::Relaxed);
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(tasks.len());
    let per_task = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        // A fresh search per task keeps per-task bests
                        // (for the deterministic tie-break below); the
                        // memo and bound still persist via `shared`.
                        let mut search = Search::worker(ctx, &shared);
                        search.run(task.clone());
                        out.push((i, search.best, search.stats));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("mapper worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut best: Option<(usize, Best)> = None;
    for (i, task_best, task_stats) in per_task {
        stats.merge(&task_stats);
        let Some(b) = task_best else { continue };
        let replace = match &best {
            None => true,
            // Minimum area wins; equal areas go to the earliest
            // subtree in frontier (= sequential DFS) order, so the
            // returned netlist does not depend on worker scheduling.
            Some((bi, cur)) => b.area < cur.area || (b.area == cur.area && i < *bi),
        };
        if replace {
            best = Some((i, b));
        }
    }
    // The seed wins ties: it existed before any worker ran, so the
    // result does not depend on worker scheduling.
    let best = match (best.map(|(_, b)| b), seed) {
        (Some(b), Some(s)) => Some(if b.area < s.area { b } else { s }),
        (b, s) => b.or(s),
    };
    (best, stats)
}

/// Expand the top of the decision tree breadth-first into subtree-root
/// plans, preserving the order the sequential search would first reach
/// them. With `split_depth = 0` levels are expanded until there are
/// about [`TASKS_PER_WORKER`] tasks per worker (bounded by
/// [`MAX_AUTO_DEPTH`]); otherwise exactly `split_depth` levels.
///
/// Expansion applies the overlap and spec filters of the branching rule
/// but neither the bound nor the memo (both need search state that does
/// not exist yet); each expanded node is counted in `stats` exactly as
/// the sequential search would count it.
fn expand_frontier(ctx: &SearchCtx<'_>, jobs: usize, stats: &mut MapStats) -> Vec<Plan> {
    let (target, max_depth) = match ctx.config.split_depth {
        0 => (jobs * TASKS_PER_WORKER, MAX_AUTO_DEPTH),
        depth => (usize::MAX, depth),
    };
    let mut frontier = vec![Plan::new(ctx.graph)];
    for _ in 0..max_depth {
        if frontier.len() >= target {
            break;
        }
        let mut next = Vec::new();
        let mut expanded_any = false;
        for plan in frontier.drain(..) {
            if ctx.next_uncovered(&plan).is_none() {
                // Already a complete mapping: keep it as its own task
                // (the worker evaluates it as a leaf).
                next.push(plan);
                continue;
            }
            // Budget exhausted mid-expansion: keep the plan as an
            // unexpanded task — the workers observe the tripped meter
            // and return without searching it.
            if !ctx.meter.note_node() {
                stats.budget_exhausted = true;
                next.push(plan);
                continue;
            }
            expanded_any = true;
            stats.visited_nodes += 1;
            expand_children(ctx, &plan, &mut next, stats);
        }
        frontier = next;
        if !expanded_any {
            break;
        }
    }
    frontier
}

/// Push every child of `plan` (share branches first, then allocations,
/// in sequencing order) — the frontier-expansion mirror of one
/// `Search::run` branching step.
fn expand_children(ctx: &SearchCtx<'_>, plan: &Plan, out: &mut Vec<Plan>, stats: &mut MapStats) {
    let cur = ctx
        .next_uncovered(plan)
        .expect("caller ensures an uncovered block");
    let alternatives = ctx.cache.at(cur);
    for k in 0..alternatives.len() {
        let i = if ctx.config.sequencing {
            k
        } else {
            alternatives.len() - 1 - k
        };
        let m = &alternatives[i];
        if m.covered.iter().any(|&b| plan.is_covered(b)) {
            continue;
        }
        if ctx.config.sharing {
            if let Some(existing) = plan.find_shareable(&m.kind, &m.inputs) {
                let mut shared = plan.clone();
                for &b in &m.covered {
                    shared.cover(b);
                    shared.components[existing].covered.push(b);
                }
                out.push(shared);
            }
        }
        if !ctx.spec_ok[cur.index()][i] {
            stats.pruned_nodes += 1;
            continue;
        }
        if ctx.is_range_pruned(cur, i) {
            stats.range_pruned += 1;
            continue;
        }
        let mut allocated = plan.clone();
        apply_match(&mut allocated, m, cur);
        out.push(allocated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MapperConfig;
    use vase_budget::BudgetMeter;
    use vase_estimate::Estimator;
    use vase_library::MatchCache;
    use vase_vhif::{BlockKind, SignalFlowGraph};

    fn chain(n: usize) -> SignalFlowGraph {
        let mut g = SignalFlowGraph::new("chain");
        let mut prev = g.add(BlockKind::Input { name: "x".into() });
        for _ in 0..n {
            let s = g.add(BlockKind::Scale { gain: 1.0 });
            g.connect(prev, s, 0).expect("wire");
            prev = s;
        }
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(prev, y, 0).expect("wire");
        g
    }

    #[test]
    fn sharded_memo_tracks_dominance() {
        let memo = ShardedMemo::new(4);
        let mut key = CoverSet::with_len(20);
        key.set(3);
        assert!(!memo.dominated(&key, 5), "first visit is never dominated");
        assert!(memo.dominated(&key, 5), "equal cost is dominated");
        assert!(memo.dominated(&key, 7), "worse cost is dominated");
        assert!(!memo.dominated(&key, 2), "better cost replaces the entry");
        assert!(memo.dominated(&key, 3));
    }

    #[test]
    fn best_area_bits_order_like_floats() {
        // The cross-worker bound relies on non-negative doubles
        // bit-comparing in value order.
        let areas = [0.0f64, 1e-9, 2.5e-6, 1.0, 1e12, f64::INFINITY];
        for w in areas.windows(2) {
            assert!(w[0].to_bits() < w[1].to_bits(), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn frontier_expansion_yields_multiple_ordered_tasks() {
        let g = chain(8);
        let estimator = Estimator::default();
        let config = MapperConfig {
            parallelism: 4,
            split_depth: 2,
            ..MapperConfig::default()
        };
        let cache = MatchCache::build(&g, &config.match_options);
        let meter = BudgetMeter::new(config.effective_budget(), None);
        let ctx = SearchCtx::new(&g, &estimator, &config, cache, &meter, None);
        let mut stats = MapStats::default();
        let tasks = expand_frontier(&ctx, 4, &mut stats);
        assert!(
            tasks.len() > 1,
            "split_depth=2 on a chain must produce several subtrees"
        );
        assert!(stats.visited_nodes > 0, "expansion counts visited nodes");
        // Every task is a coherent partial plan: covered count matches
        // at least the interface blocks.
        for task in &tasks {
            assert!(task.covered.count() >= 2);
        }
    }

    #[test]
    fn run_parallel_agrees_with_sequential_search() {
        let g = chain(9);
        let estimator = Estimator::default();
        let seq_config = MapperConfig::default();
        let cache = MatchCache::build(&g, &seq_config.match_options);
        let seq_meter = BudgetMeter::new(seq_config.effective_budget(), None);
        let seq_ctx = SearchCtx::new(&g, &estimator, &seq_config, cache, &seq_meter, None);
        let mut seq = Search::sequential(&seq_ctx);
        seq.run(Plan::new(&g));
        let seq_best = seq.best.expect("sequential finds a mapping");

        let par_config = MapperConfig {
            parallelism: 4,
            ..MapperConfig::default()
        };
        let cache = MatchCache::build(&g, &par_config.match_options);
        let par_meter = BudgetMeter::new(par_config.effective_budget(), None);
        let par_ctx = SearchCtx::new(&g, &estimator, &par_config, cache, &par_meter, None);
        let (par_best, par_stats) = run_parallel(&par_ctx, 4, None);
        let par_best = par_best.expect("parallel finds a mapping");
        assert!((par_best.area - seq_best.area).abs() <= seq_best.area * 1e-12);
        assert!(par_stats.visited_nodes > 0);
        assert!(par_stats.complete_mappings > 0);
    }
}
