//! Partial mappings: planned components over VHIF blocks, and their
//! resolution into a concrete [`Netlist`].

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use vase_library::{ComponentKind, Netlist, PlacedComponent, SourceRef};
use vase_vhif::{BlockId, BlockKind, SignalFlowGraph};

use crate::cover::CoverSet;
use crate::error::MapError;

/// One component planned during the search; inputs still refer to VHIF
/// blocks (the producing components may not exist yet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedComponent {
    /// The library circuit.
    pub kind: ComponentKind,
    /// Covered blocks.
    pub covered: Vec<BlockId>,
    /// Driver blocks (outside the cover), in component port order.
    pub inputs: Vec<BlockId>,
    /// The covered block whose output leaves the cover (the
    /// component's output net).
    pub output: BlockId,
}

/// A (partial) mapping of a signal-flow graph.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Planned components.
    pub components: Vec<PlannedComponent>,
    /// The set of covered blocks (by index). Stored as an inline
    /// bitset so cloning it as a dominance-memo key on the search hot
    /// path is allocation-free.
    pub covered: CoverSet,
    /// Running op-amp count (the sequencing rule's area proxy).
    pub opamps: usize,
}

impl Plan {
    /// An empty plan for a graph with `block_count` blocks; interface
    /// blocks are pre-marked covered (they are external nets, not
    /// hardware).
    pub fn new(graph: &SignalFlowGraph) -> Self {
        let mut covered = CoverSet::with_len(graph.len());
        for (id, b) in graph.iter() {
            if b.kind.is_interface() {
                covered.set(id.index());
            }
        }
        Plan {
            components: Vec::new(),
            covered,
            opamps: 0,
        }
    }

    /// Whether every block is covered.
    pub fn is_complete(&self) -> bool {
        self.covered.is_full()
    }

    /// Whether `block` is covered.
    pub fn is_covered(&self, block: BlockId) -> bool {
        self.covered.get(block.index())
    }

    /// Mark `block` covered.
    pub fn cover(&mut self, block: BlockId) {
        self.covered.set(block.index());
    }

    /// The planned component producing `block`'s value, if any.
    pub fn producer_of(&self, block: BlockId) -> Option<usize> {
        self.components.iter().position(|c| c.output == block)
    }

    /// Find a planned component implementing the same kind with the
    /// same inputs (the across-path sharing opportunity).
    pub fn find_shareable(&self, kind: &ComponentKind, inputs: &[BlockId]) -> Option<usize> {
        self.components
            .iter()
            .position(|c| &c.kind == kind && c.inputs == inputs)
    }
}

/// Resolve a complete plan into a [`Netlist`], inserting followers
/// where a component output drives more than `fanout_limit` consumers
/// (the paper's interfacing transformation for loading effects).
///
/// # Errors
///
/// Fails if a referenced driver block has no producer (incomplete or
/// inconsistent plan).
pub fn resolve(
    graph: &SignalFlowGraph,
    plan: &Plan,
    fanout_limit: usize,
) -> Result<Netlist, MapError> {
    let mut netlist = Netlist::new();
    // Place components in plan order; record output-block → index.
    let mut producer: HashMap<BlockId, usize> = HashMap::new();
    for planned in &plan.components {
        let index = netlist.push(PlacedComponent {
            kind: planned.kind.clone(),
            inputs: Vec::new(), // filled below
            implements: planned.covered.clone(),
            label: component_label(graph, planned),
        });
        // Every covered block's value is available at this component's
        // output: a shared component serves all the blocks it covers.
        for &b in &planned.covered {
            producer.insert(b, index);
        }
        producer.insert(planned.output, index);
    }
    // Resolve inputs.
    for (index, planned) in plan.components.iter().enumerate() {
        let mut inputs = Vec::with_capacity(planned.inputs.len());
        for &driver in &planned.inputs {
            inputs.push(source_for(graph, &producer, driver)?);
        }
        netlist.components[index].inputs = inputs;
    }
    // External outputs.
    for out in graph.outputs() {
        let BlockKind::Output { name } = graph.kind(out) else {
            unreachable!()
        };
        let driver = graph.block_inputs(out)[0].ok_or(MapError::Incomplete {
            what: format!("output `{name}` has no driver"),
        })?;
        let source = source_for(graph, &producer, driver)?;
        netlist.outputs.push((name.clone(), source));
    }
    insert_followers(&mut netlist, fanout_limit);
    Ok(netlist)
}

fn component_label(graph: &SignalFlowGraph, planned: &PlannedComponent) -> String {
    planned
        .covered
        .iter()
        .find_map(|&b| graph.block(b).label.clone())
        .unwrap_or_else(|| format!("{}@{}", planned.kind.report_category(), planned.output))
}

fn source_for(
    graph: &SignalFlowGraph,
    producer: &HashMap<BlockId, usize>,
    driver: BlockId,
) -> Result<SourceRef, MapError> {
    match graph.kind(driver) {
        BlockKind::Input { name } | BlockKind::ControlInput { name } => {
            Ok(SourceRef::External(name.clone()))
        }
        _ => match producer.get(&driver) {
            Some(&i) => Ok(SourceRef::Component(i)),
            None => Err(MapError::Incomplete {
                what: format!(
                    "block {driver} ({}) has no producing component",
                    graph.kind(driver)
                ),
            }),
        },
    }
}

/// Insert unity-gain followers on overloaded outputs: a follower is a
/// buffer designed to drive heavy loads, so consumers beyond the limit
/// are moved behind it (the driving component then sees `fanout_limit`
/// loads at most, one of which is the follower's high-impedance input).
fn insert_followers(netlist: &mut Netlist, fanout_limit: usize) {
    if fanout_limit == 0 {
        return;
    }
    let n = netlist.components.len();
    for i in 0..n {
        // Followers buffer analog nets; skip control-class producers
        // (and followers themselves — they are the buffers).
        if matches!(
            netlist.components[i].kind,
            ComponentKind::Follower
                | ComponentKind::ZeroCrossDetector { .. }
                | ComponentKind::SchmittTrigger { .. }
                | ComponentKind::Comparator { .. }
                | ComponentKind::LogicGate
                | ComponentKind::Adc { .. }
        ) {
            continue;
        }
        if netlist.fanout(i) <= fanout_limit {
            continue;
        }
        let follower = netlist.push(PlacedComponent {
            kind: ComponentKind::Follower,
            inputs: vec![SourceRef::Component(i)],
            implements: vec![],
            label: format!("buffer_c{i}"),
        });
        // Keep `fanout_limit - 1` direct consumers (plus the follower);
        // everything else moves behind the buffer.
        let mut direct_budget = fanout_limit.saturating_sub(1);
        for (ci, c) in netlist.components.iter_mut().enumerate() {
            if ci == follower {
                continue;
            }
            for input in c.inputs.iter_mut() {
                if matches!(input, SourceRef::Component(j) if *j == i) {
                    if direct_budget > 0 {
                        direct_budget -= 1;
                    } else {
                        *input = SourceRef::Component(follower);
                    }
                }
            }
        }
        for (_, s) in netlist.outputs.iter_mut() {
            if matches!(s, SourceRef::Component(j) if *j == i) {
                if direct_budget > 0 {
                    direct_budget -= 1;
                } else {
                    *s = SourceRef::Component(follower);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph() -> (SignalFlowGraph, BlockId, BlockId) {
        let mut g = SignalFlowGraph::new("t");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let s = g.add(BlockKind::Scale { gain: -2.0 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(x, s, 0).expect("wire");
        g.connect(s, y, 0).expect("wire");
        (g, x, s)
    }

    #[test]
    fn new_plan_pre_covers_interfaces() {
        let (g, _, s) = chain_graph();
        let plan = Plan::new(&g);
        assert!(!plan.is_complete());
        assert!(!plan.is_covered(s));
        // inputs/outputs are pre-covered
        assert_eq!(plan.covered.count(), 2);
    }

    #[test]
    fn resolve_builds_netlist_with_external_refs() {
        let (g, x, s) = chain_graph();
        let mut plan = Plan::new(&g);
        plan.components.push(PlannedComponent {
            kind: ComponentKind::InvertingAmp { gain: -2.0 },
            covered: vec![s],
            inputs: vec![x],
            output: s,
        });
        plan.cover(s);
        plan.opamps = 1;
        assert!(plan.is_complete());
        let netlist = resolve(&g, &plan, 3).expect("resolves");
        netlist.validate().expect("valid");
        assert_eq!(netlist.components.len(), 1);
        assert_eq!(
            netlist.components[0].inputs,
            vec![SourceRef::External("x".into())]
        );
        assert_eq!(netlist.outputs, vec![("y".into(), SourceRef::Component(0))]);
    }

    #[test]
    fn resolve_fails_on_missing_producer() {
        let (g, _, s) = chain_graph();
        let mut plan = Plan::new(&g);
        plan.cover(s); // claimed covered but no component
        let err = resolve(&g, &plan, 3).unwrap_err();
        assert!(matches!(err, MapError::Incomplete { .. }));
    }

    #[test]
    fn follower_inserted_on_high_fanout() {
        // One amp feeding 5 consumers → follower buffers 4 of them.
        let mut g = SignalFlowGraph::new("t");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let src = g.add(BlockKind::Scale { gain: -1.0 });
        g.connect(x, src, 0).expect("wire");
        let mut consumers = Vec::new();
        for i in 0..5 {
            let c = g.add(BlockKind::Scale {
                gain: i as f64 + 2.0,
            });
            g.connect(src, c, 0).expect("wire");
            let o = g.add(BlockKind::Output {
                name: format!("y{i}"),
            });
            g.connect(c, o, 0).expect("wire");
            consumers.push(c);
        }
        let mut plan = Plan::new(&g);
        plan.components.push(PlannedComponent {
            kind: ComponentKind::InvertingAmp { gain: -1.0 },
            covered: vec![src],
            inputs: vec![x],
            output: src,
        });
        plan.cover(src);
        for (i, &c) in consumers.iter().enumerate() {
            plan.components.push(PlannedComponent {
                kind: ComponentKind::NonInvertingAmp {
                    gain: i as f64 + 2.0,
                },
                covered: vec![c],
                inputs: vec![src],
                output: c,
            });
            plan.cover(c);
        }
        let netlist = resolve(&g, &plan, 3).expect("resolves");
        netlist.validate().expect("valid");
        assert!(
            netlist
                .components
                .iter()
                .any(|c| matches!(c.kind, ComponentKind::Follower)),
            "expected an inserted follower: {netlist}"
        );
        // The original driver now sees at most the limit.
        assert!(netlist.fanout(0) <= 3, "driver still overloaded: {netlist}");
    }

    #[test]
    fn sharing_query_matches_kind_and_inputs() {
        let (g, x, s) = chain_graph();
        let mut plan = Plan::new(&g);
        plan.components.push(PlannedComponent {
            kind: ComponentKind::InvertingAmp { gain: -2.0 },
            covered: vec![s],
            inputs: vec![x],
            output: s,
        });
        assert_eq!(
            plan.find_shareable(&ComponentKind::InvertingAmp { gain: -2.0 }, &[x]),
            Some(0)
        );
        assert_eq!(
            plan.find_shareable(&ComponentKind::InvertingAmp { gain: -3.0 }, &[x]),
            None
        );
    }
}
