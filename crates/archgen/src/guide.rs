//! Model-guided best-first mapping search.
//!
//! The exact branch-and-bound search ([`crate::bnb`]) expands the
//! decision tree depth-first and bounds partial mappings by
//! `(opamps + added) · MinArea`. That bound only counts op amps, so on
//! larger graphs the DFS spends most of its nodes proving optimality of
//! branches whose *actual* placed area is already hopeless.
//!
//! The guided strategy uses the performance estimator as a search
//! model instead:
//!
//! * **g** — the sum of the estimated areas of the components placed so
//!   far (read from [`SearchCtx::alt_area`], which is precomputed once
//!   per mapping call through an [`vase_estimate::EstimateMemo`]). This
//!   is an *admissible* lower bound on the final netlist area: the
//!   final estimate is the sum of per-component estimates, and
//!   resolution only ever adds fan-out follower buffers (non-negative
//!   area). Nodes with `g > incumbent` are pruned — strictly, so no
//!   prefix of an optimal leaf is ever dropped.
//! * **h** — `uncovered_blocks · MinArea`, an optimistic completion
//!   estimate used only to *order* the frontier (best `f = g + h`
//!   first). It is not used for pruning, so its slight inadmissibility
//!   on multi-block folds and shared components cannot affect the
//!   result.
//!
//! Expansion order within a node, the dominance memo, and the
//! completion check are identical to the exact search; ties on
//! bitwise-equal area are broken towards the leaf the DFS would have
//! reported (smallest branch-choice path in preorder), so a guided run
//! that reaches frontier exhaustion returns a bit-identical netlist to
//! the exact search. Under a budget it is *anytime* like the DFS: the
//! best incumbent so far is returned with `budget_exhausted` set —
//! and because the frontier is ordered by the model, that incumbent is
//! typically optimal or near-optimal long before exhaustion.
//!
//! The guided search is sequential; `parallelism` is ignored.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use crate::bnb::{apply_match, Best, SearchCtx};
use crate::config::MapStats;
use crate::cover::CoverSet;
use crate::plan::{resolve, Plan};

/// One frontier entry, stored copy-on-write: the *parent's* plan
/// (shared with every sibling via `Arc`) plus the one pending branch
/// action, materialized only if the node survives its pop-time bound
/// check. This keeps plan cloning O(pops) instead of O(pushes) —
/// branching-factor times fewer clones, and none at all for frontier
/// entries killed by an improved incumbent.
struct Node {
    /// `f = g + h` as ordered bits (non-negative IEEE doubles order the
    /// same as their bit patterns).
    f_bits: u64,
    /// Insertion sequence number: ties on `f` pop in push order, which
    /// matches the DFS visit order on equal-bound frontiers.
    seq: u64,
    /// Sum of placed component areas (admissible lower bound) *after*
    /// the pending action.
    g: f64,
    /// The plan before this node's branch action (the root carries the
    /// empty plan and no action).
    parent: Arc<Plan>,
    /// The pending branch action — the last entry of `path` — or `None`
    /// for the root. Replayed against `parent` at pop time.
    action: Option<u16>,
    /// Branch choices from the root: `2k` = share at visit-rank `k`,
    /// `2k + 1` = allocate at visit-rank `k`. Lexicographic order over
    /// these paths is exactly the DFS preorder.
    path: Vec<u16>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.f_bits == other.f_bits && self.seq == other.seq
    }
}

impl Eq for Node {}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest
        // (f, seq) on top.
        other
            .f_bits
            .cmp(&self.f_bits)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Run the guided best-first search over `ctx`'s decision tree.
///
/// `seed` is an optional greedy incumbent (path-less: it only loses to
/// strictly better completions, mirroring the DFS seed semantics).
pub(crate) fn run_guided(ctx: &SearchCtx, seed: Option<Best>) -> (Option<Best>, MapStats) {
    let mut stats = MapStats::default();
    let mut best = seed;
    let mut best_path: Option<Vec<u16>> = None;
    let mut memo: Option<HashMap<CoverSet, usize>> = if ctx.config.memoize {
        Some(HashMap::new())
    } else {
        None
    };
    let mut heap = BinaryHeap::new();
    let mut seq: u64 = 0;
    let root = Arc::new(Plan::new(ctx.graph));
    heap.push(Node {
        f_bits: completion_f(ctx, 0.0, root.covered.count()).to_bits(),
        seq,
        g: 0.0,
        parent: root,
        action: None,
        path: Vec::new(),
    });

    while let Some(node) = heap.pop() {
        if !ctx.meter.note_node() {
            stats.budget_exhausted = true;
            break;
        }
        stats.visited_nodes += 1;

        let bound = best.as_ref().map_or(f64::INFINITY, |b| b.area);
        // The incumbent may have improved since this node was pushed:
        // re-check the admissible bound at pop time so stale frontier
        // entries die cheaply — before even materializing the plan.
        if ctx.config.bounding && node.g > bound {
            stats.pruned_nodes += 1;
            continue;
        }
        let plan = materialize(ctx, &node);
        if let Some(memo) = memo.as_mut() {
            if dominated(memo, &plan.covered, plan.opamps) {
                stats.memo_pruned += 1;
                continue;
            }
        }

        let Some(cur) = ctx.next_uncovered(&plan) else {
            complete(ctx, &plan, &node.path, &mut best, &mut best_path, &mut stats);
            continue;
        };

        let covered = plan.covered.count();
        let alternatives = ctx.cache.at(cur);
        for k in 0..alternatives.len() {
            // Same visit order as the DFS (sequencing rule:
            // largest-cover-first when enabled).
            let i = if ctx.config.sequencing {
                k
            } else {
                alternatives.len() - 1 - k
            };
            let m = &alternatives[i];
            if m.covered.iter().any(|&b| plan.is_covered(b)) {
                continue;
            }
            // Every block of `m.covered` is currently uncovered, so the
            // child's covered count is exactly `covered + m.covered.len()`
            // on both branches — no need to apply the action to rank it.
            let child_covered = covered + m.covered.len();
            // Share branch first, like the DFS. Sharing places no new
            // component, so `g` is unchanged.
            if ctx.config.sharing && plan.find_shareable(&m.kind, &m.inputs).is_some() {
                let mut path = node.path.clone();
                path.push((2 * k) as u16);
                seq += 1;
                heap.push(Node {
                    f_bits: completion_f(ctx, node.g, child_covered).to_bits(),
                    seq,
                    g: node.g,
                    parent: Arc::clone(&plan),
                    action: Some((2 * k) as u16),
                    path,
                });
            }
            // Allocate branch: reject spec-impossible components
            // locally (same as the DFS), then prune on the admissible
            // placed-area bound.
            if !ctx.spec_ok[cur.index()][i] {
                stats.pruned_nodes += 1;
                continue;
            }
            if ctx.is_range_pruned(cur, i) {
                stats.range_pruned += 1;
                continue;
            }
            let g_new = node.g + ctx.alt_area[cur.index()][i];
            if ctx.config.bounding && g_new > bound {
                stats.pruned_nodes += 1;
                continue;
            }
            let mut path = node.path.clone();
            path.push((2 * k + 1) as u16);
            seq += 1;
            heap.push(Node {
                f_bits: completion_f(ctx, g_new, child_covered).to_bits(),
                seq,
                g: g_new,
                parent: Arc::clone(&plan),
                action: Some((2 * k + 1) as u16),
                path,
            });
        }
    }
    (best, stats)
}

/// Apply a popped node's pending action to its (shared) parent plan.
/// The replay is deterministic: the parent plan is in exactly the state
/// it was in when the child was pushed, so `next_uncovered` and
/// `find_shareable` re-derive the same block and share target.
fn materialize(ctx: &SearchCtx, node: &Node) -> Arc<Plan> {
    let Some(entry) = node.action else {
        return Arc::clone(&node.parent);
    };
    let mut plan = (*node.parent).clone();
    let cur = ctx
        .next_uncovered(&plan)
        .expect("a pending action implies an uncovered block");
    let alternatives = ctx.cache.at(cur);
    let k = (entry >> 1) as usize;
    let i = if ctx.config.sequencing {
        k
    } else {
        alternatives.len() - 1 - k
    };
    let m = &alternatives[i];
    if entry & 1 == 0 {
        let existing = plan
            .find_shareable(&m.kind, &m.inputs)
            .expect("share action implies a shareable component");
        for &b in &m.covered {
            plan.cover(b);
            plan.components[existing].covered.push(b);
        }
    } else {
        apply_match(&mut plan, m, cur);
    }
    Arc::new(plan)
}

/// Frontier ordering key `f = g + uncovered · MinArea`, from the plan's
/// covered-block count. All interface blocks are pre-covered by
/// [`Plan::new`], so every uncovered block is an operation block
/// needing at least a minimum-area op amp (ordering heuristic only —
/// multi-block folds and sharing can beat it, which is why it never
/// prunes).
fn completion_f(ctx: &SearchCtx, g: f64, covered: usize) -> f64 {
    let uncovered = ctx.graph.len() - covered;
    g + uncovered as f64 * ctx.min_area
}

/// The exact search's dominance rule: a cover set reached before with
/// as few or fewer op amps dominates this visit.
fn dominated(memo: &mut HashMap<CoverSet, usize>, key: &CoverSet, opamps: usize) -> bool {
    match memo.get_mut(key) {
        Some(prev) if *prev <= opamps => true,
        Some(prev) => {
            *prev = opamps;
            false
        }
        None => {
            memo.insert(key.clone(), opamps);
            false
        }
    }
}

/// Resolve, estimate, and (maybe) accept a complete plan. Acceptance
/// mirrors the DFS: strictly smaller area always wins; on *bitwise*
/// equal area the preorder-smaller branch path wins, which is the leaf
/// the DFS would have kept (its first-found optimum). The greedy seed
/// carries no path and only loses to strict improvements.
fn complete(
    ctx: &SearchCtx,
    plan: &Plan,
    path: &[u16],
    best: &mut Option<Best>,
    best_path: &mut Option<Vec<u16>>,
    stats: &mut MapStats,
) {
    stats.complete_mappings += 1;
    let Ok(netlist) = resolve(ctx.graph, plan, ctx.config.fanout_limit) else {
        return;
    };
    let estimate = ctx.estimator.estimate_netlist(&netlist);
    if !estimate.feasible() {
        stats.infeasible_mappings += 1;
        return;
    }
    let area = estimate.area_m2;
    let accept = match best.as_ref() {
        None => true,
        Some(b) => {
            area < b.area
                || (area.to_bits() == b.area.to_bits()
                    && best_path.as_ref().is_some_and(|bp| path < &bp[..]))
        }
    };
    if accept {
        *best = Some(Best {
            area,
            netlist,
            estimate,
            components: plan.components.clone(),
            opamps: plan.opamps,
        });
        *best_path = Some(path.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use crate::bnb::map_graph;
    use crate::config::{MapperConfig, SearchStrategy};
    use vase_budget::Budget;
    use vase_estimate::Estimator;
    use vase_vhif::{BlockKind, SignalFlowGraph};

    fn estimator() -> Estimator {
        Estimator::default()
    }

    fn fig6_graph() -> SignalFlowGraph {
        let mut g = SignalFlowGraph::new("fig6");
        let a = g.add(BlockKind::Input { name: "a".into() });
        let b = g.add(BlockKind::Input { name: "b".into() });
        let s1 = g.add_labelled(BlockKind::Scale { gain: 2.0 }, "block1");
        let s2 = g.add_labelled(BlockKind::Scale { gain: 3.0 }, "block2");
        let add = g.add_labelled(BlockKind::Add { arity: 2 }, "block3");
        let s3 = g.add_labelled(BlockKind::Scale { gain: 0.5 }, "block4");
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(a, s1, 0).expect("wire");
        g.connect(b, s2, 0).expect("wire");
        g.connect(s1, add, 0).expect("wire");
        g.connect(s2, add, 1).expect("wire");
        g.connect(add, s3, 0).expect("wire");
        g.connect(s3, y, 0).expect("wire");
        g
    }

    fn buffer_chain(n: usize) -> SignalFlowGraph {
        let mut g = SignalFlowGraph::new("chain");
        let mut prev = g.add(BlockKind::Input { name: "x".into() });
        for _ in 0..n {
            let s = g.add(BlockKind::Scale { gain: 1.0 });
            g.connect(prev, s, 0).expect("wire");
            prev = s;
        }
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(prev, y, 0).expect("wire");
        g
    }

    #[test]
    fn guided_matches_exact_bitwise_on_small_graphs() {
        for graph in [fig6_graph(), buffer_chain(8), buffer_chain(11)] {
            let exact = map_graph(&graph, &estimator(), &MapperConfig::default()).expect("maps");
            let guided = map_graph(&graph, &estimator(), &MapperConfig::guided()).expect("maps");
            assert_eq!(
                guided.netlist, exact.netlist,
                "guided-to-completion must be bit-identical on {}",
                graph.name()
            );
            assert_eq!(
                guided.estimate.area_m2.to_bits(),
                exact.estimate.area_m2.to_bits()
            );
        }
    }

    #[test]
    fn guided_matches_exact_under_each_ablation() {
        let g = fig6_graph();
        for (memoize, sharing, sequencing, bounding) in [
            (false, true, true, true),
            (true, false, true, true),
            (true, true, false, true),
            (true, true, true, false),
            (false, false, false, false),
        ] {
            let base = MapperConfig {
                memoize,
                sharing,
                sequencing,
                bounding,
                ..MapperConfig::default()
            };
            let exact = map_graph(&g, &estimator(), &base).expect("maps");
            let guided = map_graph(
                &g,
                &estimator(),
                &MapperConfig {
                    strategy: SearchStrategy::Guided,
                    ..base
                },
            )
            .expect("maps");
            assert_eq!(
                guided.netlist, exact.netlist,
                "memoize={memoize} sharing={sharing} sequencing={sequencing} bounding={bounding}"
            );
        }
    }

    #[test]
    fn guided_visits_no_more_nodes_than_exact_on_chains() {
        // On the buffer chain the placed-area bound is strictly tighter
        // than the op-amp-count bound, and best-first ordering finds
        // the optimum early; the guided search should never need more
        // node visits than the exact DFS.
        let g = buffer_chain(12);
        let exact = map_graph(&g, &estimator(), &MapperConfig::default()).expect("maps");
        let guided = map_graph(&g, &estimator(), &MapperConfig::guided()).expect("maps");
        assert_eq!(guided.netlist, exact.netlist);
        assert!(
            guided.stats.visited_nodes <= exact.stats.visited_nodes,
            "guided {} vs exact {}",
            guided.stats.visited_nodes,
            exact.stats.visited_nodes
        );
    }

    #[test]
    fn guided_budget_returns_anytime_incumbent() {
        let g = buffer_chain(12);
        let config = MapperConfig {
            budget: Budget::nodes(8),
            strategy: SearchStrategy::Guided,
            ..MapperConfig::default()
        };
        let result = map_graph(&g, &estimator(), &config).expect("anytime mapping");
        assert!(result.stats.budget_exhausted);
        result.netlist.validate().expect("incumbent is structurally valid");
        assert!(result.estimate.feasible());
    }

    #[test]
    fn guided_ignores_parallelism() {
        let g = fig6_graph();
        let seq = map_graph(&g, &estimator(), &MapperConfig::guided()).expect("maps");
        let config = MapperConfig {
            parallelism: 8,
            ..MapperConfig::guided()
        };
        let par = map_graph(&g, &estimator(), &config).expect("maps");
        assert_eq!(seq.netlist, par.netlist);
        assert_eq!(seq.stats.visited_nodes, par.stats.visited_nodes);
    }
}
