//! Error type for architecture synthesis.

use std::error::Error as StdError;
use std::fmt;

/// An error produced while mapping VHIF onto a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// A block has no library pattern at all — the graph is outside the
    /// library's reach.
    NoPattern {
        /// Description of the unmappable block.
        block: String,
    },
    /// No complete mapping satisfied the performance constraints.
    NoFeasibleMapping,
    /// The plan being resolved was not actually complete.
    Incomplete {
        /// What was missing.
        what: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NoPattern { block } => {
                write!(f, "no library pattern implements block {block}")
            }
            MapError::NoFeasibleMapping => {
                f.write_str("no complete mapping satisfies the performance constraints")
            }
            MapError::Incomplete { what } => write!(f, "incomplete mapping: {what}"),
        }
    }
}

impl StdError for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(MapError::NoFeasibleMapping.to_string().contains("constraints"));
        assert!(MapError::NoPattern { block: "b3".into() }.to_string().contains("b3"));
    }
}
