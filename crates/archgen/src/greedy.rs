//! A greedy mapping heuristic baseline.
//!
//! The paper's conclusion notes that the branch-and-bound's
//! time-complexity "might fail for larger designs" and that ongoing
//! work targets "a more time-affective exploration heuristic". This is
//! that heuristic, used as the comparison baseline in the benchmark
//! harness: at each uncovered block take the largest-cover alternative
//! (sharing when possible), never backtrack.

use std::time::Instant;

use vase_budget::BudgetMeter;
use vase_estimate::{EstimateMemo, Estimator};
use vase_library::MatchCache;
use vase_vhif::SignalFlowGraph;

use crate::bnb::MapResult;
use crate::config::{MapStats, MapperConfig};
use crate::error::MapError;
use crate::plan::{resolve, Plan, PlannedComponent};

/// Map `graph` greedily: first (largest) match wins, no backtracking.
///
/// The single greedy pass is linear in the graph, so when
/// `config.budget` trips mid-run the pass still completes — the
/// finished mapping *is* the best incumbent — and the result is merely
/// flagged [`MapStats::budget_exhausted`] so callers see the budget was
/// insufficient even for the heuristic.
///
/// # Errors
///
/// * [`MapError::NoPattern`] when a block has no implementation or
///   every alternative overlaps previous choices;
/// * [`MapError::NoFeasibleMapping`] when the single produced mapping
///   violates the constraints.
pub fn map_graph_greedy(
    graph: &SignalFlowGraph,
    estimator: &Estimator,
    config: &MapperConfig,
) -> Result<MapResult, MapError> {
    map_graph_greedy_planned(graph, estimator, config).map(|(result, _, _)| result)
}

/// [`map_graph_greedy`] that also returns the winning plan's components
/// and op-amp count, so a search seeded with the greedy incumbent can
/// cache the cover when the seed survives to completion.
pub(crate) fn map_graph_greedy_planned(
    graph: &SignalFlowGraph,
    estimator: &Estimator,
    config: &MapperConfig,
) -> Result<(MapResult, Vec<PlannedComponent>, usize), MapError> {
    let start = Instant::now();
    let meter = BudgetMeter::new(config.effective_budget(), None);
    let cache = MatchCache::build(graph, &config.match_options);
    let mut plan = Plan::new(graph);
    let order = crate::bnb::coverage_order(graph);
    let mut stats = MapStats::default();
    // Alternatives repeat the same few kinds across blocks; memoize so
    // square-law sizing runs once per distinct kind, not per match.
    let mut memo = EstimateMemo::new();
    while let Some(cur) = order.iter().copied().find(|&b| !plan.is_covered(b)) {
        stats.visited_nodes += 1;
        let _ = meter.note_node();
        let m = cache
            .at(cur)
            .iter()
            .find(|m| {
                !m.covered.iter().any(|&b| plan.is_covered(b))
                    && memo.estimate(estimator, &m.kind).spec_met
            })
            .ok_or_else(|| MapError::NoPattern {
                block: format!("{cur} ({})", graph.kind(cur)),
            })?;
        if config.sharing {
            if let Some(existing) = plan.find_shareable(&m.kind, &m.inputs) {
                for &b in &m.covered {
                    plan.cover(b);
                    plan.components[existing].covered.push(b);
                }
                continue;
            }
        }
        for &b in &m.covered {
            plan.cover(b);
        }
        plan.opamps += m.kind.opamp_count();
        plan.components.push(PlannedComponent {
            kind: m.kind.clone(),
            covered: m.covered.clone(),
            inputs: m.inputs.clone(),
            output: cur,
        });
    }
    stats.complete_mappings = 1;
    let netlist = resolve(graph, &plan, config.fanout_limit)?;
    let estimate = estimator.estimate_netlist(&netlist);
    if !estimate.feasible() {
        return Err(MapError::NoFeasibleMapping);
    }
    stats.elapsed_us = start.elapsed().as_micros() as u64;
    stats.budget_exhausted = meter.exhausted();
    let opamps = plan.opamps;
    Ok((
        MapResult {
            netlist,
            estimate,
            stats,
        },
        plan.components,
        opamps,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vase_vhif::BlockKind;

    #[test]
    fn greedy_never_beats_bnb() {
        // Build a graph where greedy's local choice is fine but compare
        // anyway — the invariant is greedy_area >= bnb_area.
        let mut g = SignalFlowGraph::new("t");
        let a = g.add(BlockKind::Input { name: "a".into() });
        let b = g.add(BlockKind::Input { name: "b".into() });
        let s1 = g.add(BlockKind::Scale { gain: 0.5 });
        let s2 = g.add(BlockKind::Scale { gain: 0.25 });
        let add = g.add(BlockKind::Add { arity: 2 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(a, s1, 0).expect("wire");
        g.connect(b, s2, 0).expect("wire");
        g.connect(s1, add, 0).expect("wire");
        g.connect(s2, add, 1).expect("wire");
        g.connect(add, y, 0).expect("wire");

        let est = Estimator::default();
        let config = MapperConfig::default();
        let greedy = map_graph_greedy(&g, &est, &config).expect("greedy maps");
        let bnb = crate::bnb::map_graph(&g, &est, &config).expect("bnb maps");
        assert!(greedy.estimate.area_m2 >= bnb.estimate.area_m2 * 0.999);
        // Greedy visits exactly one node per placed decision.
        assert!(greedy.stats.visited_nodes <= bnb.stats.visited_nodes);
        greedy.netlist.validate().expect("valid");
    }
}
