//! # vase-archgen
//!
//! The architecture generator of the VASE behavioral-synthesis
//! environment (Doboli & Vemuri, DATE 1999, Section 5): maps a VHIF
//! representation (signal-flow graphs + FSMs) onto a minimum-area
//! netlist of op-amp-level library components while satisfying
//! performance constraints.
//!
//! * [`map_graph`] — the optimal **branch-and-bound** mapper with the
//!   paper's branching, bounding, and sequencing rules plus hardware
//!   sharing (Fig. 5), optionally parallelized over subtree tasks with
//!   a shared incumbent bound (`MapperConfig::parallelism`);
//! * [`map_graph_greedy`] — the faster heuristic baseline the paper's
//!   conclusion anticipates;
//! * [`map_fsm`] — the event-driven part's mapping onto Schmitt
//!   triggers, zero-cross detectors, S/H circuits, and ADCs;
//! * [`synthesize`] — the full-design driver combining both parts.
//!
//! # Examples
//!
//! ```
//! use vase_archgen::{map_graph, MapperConfig};
//! use vase_estimate::Estimator;
//! use vase_vhif::{BlockKind, SignalFlowGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = SignalFlowGraph::new("amp");
//! let x = g.add(BlockKind::Input { name: "x".into() });
//! let s = g.add(BlockKind::Scale { gain: -10.0 });
//! let y = g.add(BlockKind::Output { name: "y".into() });
//! g.connect(x, s, 0)?;
//! g.connect(s, y, 0)?;
//!
//! let result = map_graph(&g, &Estimator::default(), &MapperConfig::default())?;
//! assert_eq!(result.netlist.opamp_count(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod bnb;
pub mod cache;
pub mod config;
pub mod cover;
pub mod error;
pub mod fsm_map;
pub mod greedy;
mod guide;
mod parallel;
pub mod plan;

use std::time::Instant;

use vase_budget::BudgetMeter;
use vase_estimate::{Estimator, NetlistEstimate};
use vase_library::{Netlist, SourceRef};
use vase_vhif::VhifDesign;

pub use bnb::{map_graph, map_graph_with_cache, map_graph_with_cancel, MapResult};
pub use cache::CoverCache;
pub use config::{MapStats, MapperConfig, SearchStrategy};
pub use cover::CoverSet;
pub use error::MapError;
pub use fsm_map::{map_fsm, map_fsm_with_bindings};
pub use greedy::map_graph_greedy;
// Budget primitives, re-exported so callers can configure anytime
// mapping without depending on `vase-budget` directly.
pub use vase_budget::{Budget, CancelToken};

/// The result of synthesizing a complete VHIF design.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The combined netlist (continuous-time + event-driven hardware).
    pub netlist: Netlist,
    /// Performance estimate of the combined netlist.
    pub estimate: NetlistEstimate,
    /// Search statistics summed over all mapped graphs.
    pub stats: MapStats,
    /// Which component output carries each FSM-driven control signal
    /// (signal name → component index in `netlist`). Used to close the
    /// control loop in netlist-level simulation.
    pub control_bindings: Vec<(String, usize)>,
}

/// Synthesize a whole VHIF design: branch-and-bound over each
/// signal-flow graph, direct mapping of each FSM, merged into one
/// netlist.
///
/// With `config.parallelism != 1` and several signal-flow graphs, the
/// graphs are mapped concurrently (the configured worker budget is
/// divided among them); `stats.elapsed_us` then reports the wall-clock
/// time of the whole mapping phase rather than the per-graph sum.
///
/// # Errors
///
/// Propagates mapping failures from [`map_graph`] (the first failing
/// graph in design order).
pub fn synthesize(
    design: &VhifDesign,
    estimator: &Estimator,
    config: &MapperConfig,
) -> Result<SynthesisResult, MapError> {
    synthesize_with_cancel(design, estimator, config, None)
}

/// [`synthesize`] with an optional cooperative [`CancelToken`].
///
/// One budget meter spans the whole design: `config.budget`'s deadline
/// and node cap bound the *sum* of all graph searches, not each graph
/// individually. Under a limited budget (or with a token present) each
/// graph search is seeded with its greedy mapping, so exhaustion
/// mid-design still yields a complete, feasible architecture for every
/// remaining graph — degraded to the heuristic — flagged
/// `stats.budget_exhausted`.
///
/// # Errors
///
/// As [`synthesize`].
pub fn synthesize_with_cancel(
    design: &VhifDesign,
    estimator: &Estimator,
    config: &MapperConfig,
    token: Option<CancelToken>,
) -> Result<SynthesisResult, MapError> {
    synthesize_with_cache(design, estimator, config, token, None)
}

/// [`synthesize_with_cancel`] consulting (and updating) a
/// content-addressed [`CoverCache`]: each signal-flow graph whose
/// structure (and constraint context) is already cached maps in
/// O(lookup), and every newly proven-optimal cover is recorded. Per
/// graph hit/miss counts are summed into `stats.cache_hits` /
/// `stats.cache_misses`.
///
/// # Errors
///
/// As [`synthesize`].
pub fn synthesize_with_cache(
    design: &VhifDesign,
    estimator: &Estimator,
    config: &MapperConfig,
    token: Option<CancelToken>,
    cache: Option<&CoverCache>,
) -> Result<SynthesisResult, MapError> {
    let start = Instant::now();
    let seed_incumbent = config.budget.is_limited() || token.is_some();
    let meter = BudgetMeter::new(config.effective_budget(), token);
    let meter = &meter;
    // Proven value bounds (attached by the `vase-analyze` fixed point)
    // for one graph, looked up by name. Only consulted when
    // `config.range_prune` is on; the mapper receives `None` otherwise
    // so the default path is untouched by whatever rides on the design.
    let bounds_for = |graph: &vase_vhif::SignalFlowGraph| {
        if !config.range_prune {
            return None;
        }
        design.bounds.iter().find(|b| b.graph == graph.name())
    };
    let jobs = config.effective_parallelism();
    let results: Vec<Result<MapResult, MapError>> = if jobs > 1 && design.graphs.len() > 1 {
        // Spread the worker budget across the graphs; each graph's own
        // search may still split further when the budget allows.
        let per_graph = MapperConfig {
            parallelism: (jobs / design.graphs.len()).max(1),
            ..*config
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = design
                .graphs
                .iter()
                .map(|graph| {
                    let bounds = bounds_for(graph);
                    scope.spawn(move || {
                        bnb::map_graph_metered_cached(
                            graph,
                            estimator,
                            &per_graph,
                            meter,
                            seed_incumbent,
                            cache,
                            bounds,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("graph mapper panicked"))
                .collect()
        })
    } else {
        design
            .graphs
            .iter()
            .map(|graph| {
                bnb::map_graph_metered_cached(
                    graph,
                    estimator,
                    config,
                    meter,
                    seed_incumbent,
                    cache,
                    bounds_for(graph),
                )
            })
            .collect()
    };
    let mut netlist = Netlist::new();
    let mut stats = MapStats::default();
    for result in results {
        let result = result?;
        merge(&mut netlist, result.netlist);
        stats.merge(&result.stats);
    }
    stats.elapsed_us = start.elapsed().as_micros() as u64;
    stats.budget_exhausted |= meter.exhausted();
    let mut control_bindings = Vec::new();
    for fsm in &design.fsms {
        let offset = netlist.components.len();
        let (components, bindings) = map_fsm_with_bindings(fsm);
        for mut component in components {
            for input in component.inputs.iter_mut() {
                if let SourceRef::Component(i) = input {
                    *i += offset;
                }
            }
            netlist.push(component);
        }
        for (signal, local) in bindings {
            control_bindings.push((signal, local + offset));
        }
    }
    let estimate = estimator.estimate_netlist(&netlist);
    Ok(SynthesisResult {
        netlist,
        estimate,
        stats,
        control_bindings,
    })
}

/// Append `other`'s components and outputs to `netlist`, fixing
/// component indices.
fn merge(netlist: &mut Netlist, other: Netlist) {
    let offset = netlist.components.len();
    for mut component in other.components {
        for input in component.inputs.iter_mut() {
            if let SourceRef::Component(i) = input {
                *i += offset;
            }
        }
        netlist.push(component);
    }
    for (name, mut source) in other.outputs {
        if let SourceRef::Component(i) = &mut source {
            *i += offset;
        }
        netlist.outputs.push((name, source));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vase_vhif::{BlockKind, DataOp, DpExpr, Event, Fsm, SignalFlowGraph, Trigger};

    fn receiver_vhif() -> VhifDesign {
        // Continuous part: earph = sum × switched gain, output stage.
        let mut g = SignalFlowGraph::new("main");
        let line = g.add(BlockKind::Input {
            name: "line".into(),
        });
        let local = g.add(BlockKind::Input {
            name: "local".into(),
        });
        let s1 = g.add(BlockKind::Scale { gain: 0.5 });
        let s2 = g.add(BlockKind::Scale { gain: 0.25 });
        let add = g.add_labelled(BlockKind::Add { arity: 2 }, "block1");
        let c1v = g.add(BlockKind::Const { value: 0.5 });
        let c2v = g.add(BlockKind::Const { value: 1.25 });
        let ctl = g.add(BlockKind::ControlInput { name: "c1".into() });
        let mux = g.add(BlockKind::Mux { arity: 2 });
        let mul = g.add_labelled(BlockKind::Mul, "block2");
        let stage = g.add_labelled(
            BlockKind::OutputStage {
                load_ohms: 270.0,
                peak_volts: 0.285,
                limit: Some(1.5),
            },
            "block4",
        );
        let out = g.add(BlockKind::Output {
            name: "earph".into(),
        });
        g.connect(line, s1, 0).expect("wire");
        g.connect(local, s2, 0).expect("wire");
        g.connect(s1, add, 0).expect("wire");
        g.connect(s2, add, 1).expect("wire");
        g.connect(c2v, mux, 0).expect("wire");
        g.connect(c1v, mux, 1).expect("wire");
        g.connect(ctl, mux, 2).expect("wire");
        g.connect(add, mul, 0).expect("wire");
        g.connect(mux, mul, 1).expect("wire");
        g.connect(mul, stage, 0).expect("wire");
        g.connect(stage, out, 0).expect("wire");

        // Event-driven part: the compensation process.
        let mut fsm = Fsm::new("comp");
        let start = fsm.start();
        let s = fsm.add_state("s1");
        fsm.state_mut(s)
            .ops
            .push(DataOp::new("c1", DpExpr::Bit(true)));
        fsm.add_transition(
            start,
            s,
            Trigger::AnyEvent(vec![Event::Above {
                quantity: "line".into(),
                threshold: 0.07,
            }]),
        );
        fsm.add_transition(s, start, Trigger::Always);

        let mut d = VhifDesign::new("telephone");
        d.graphs.push(g);
        d.fsms.push(fsm);
        d
    }

    #[test]
    fn receiver_synthesizes_to_paper_component_mix() {
        // Paper Table 1 row 1 + §6: 2 amplifiers (weighted sum +
        // switched-gain), 1 zero-cross detector, plus the inferred
        // output stage.
        let design = receiver_vhif();
        let result =
            synthesize(&design, &Estimator::default(), &MapperConfig::default()).expect("maps");
        result.netlist.validate().expect("valid");
        let summary = result.netlist.report_summary();
        let count = |cat: &str| {
            summary
                .iter()
                .find(|(c, _)| c == cat)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };
        assert_eq!(
            count("amplif."),
            2,
            "summary: {summary:?}\n{}",
            result.netlist
        );
        assert_eq!(count("zero-cross det."), 1, "summary: {summary:?}");
        assert_eq!(count("output stage"), 1, "summary: {summary:?}");
        // 2 amps + 1 zcd + 1 output stage = 4 op amps total.
        assert_eq!(result.netlist.opamp_count(), 4, "{}", result.netlist);
    }

    #[test]
    fn merge_fixes_component_indices() {
        let design = receiver_vhif();
        let result =
            synthesize(&design, &Estimator::default(), &MapperConfig::default()).expect("maps");
        // Every internal reference must be valid after merging.
        result.netlist.validate().expect("indices valid");
        // Output taps exist.
        assert!(result.netlist.outputs.iter().any(|(n, _)| n == "earph"));
    }

    #[test]
    fn parallel_synthesis_matches_sequential() {
        // A two-graph design: the receiver's continuous part plus an
        // independent gain stage, mapped concurrently.
        let mut design = receiver_vhif();
        let mut g2 = SignalFlowGraph::new("aux");
        let x = g2.add(BlockKind::Input {
            name: "aux_in".into(),
        });
        let s = g2.add(BlockKind::Scale { gain: -4.0 });
        let y = g2.add(BlockKind::Output {
            name: "aux_out".into(),
        });
        g2.connect(x, s, 0).expect("wire");
        g2.connect(s, y, 0).expect("wire");
        design.graphs.push(g2);

        let seq =
            synthesize(&design, &Estimator::default(), &MapperConfig::default()).expect("maps");
        let par_config = MapperConfig {
            parallelism: 4,
            ..MapperConfig::default()
        };
        let par = synthesize(&design, &Estimator::default(), &par_config).expect("maps");
        par.netlist.validate().expect("valid");
        assert_eq!(par.netlist.opamp_count(), seq.netlist.opamp_count());
        assert!(
            (par.estimate.area_m2 - seq.estimate.area_m2).abs() <= seq.estimate.area_m2 * 1e-12
        );
        assert_eq!(par.control_bindings.len(), seq.control_bindings.len());
    }

    #[test]
    fn synthesis_estimate_is_feasible_under_audio_constraints() {
        let design = receiver_vhif();
        let result =
            synthesize(&design, &Estimator::default(), &MapperConfig::default()).expect("maps");
        assert!(result.estimate.feasible());
        assert!(result.estimate.area_m2 > 0.0);
        assert!(result.estimate.power_w > 0.0);
    }
}
