//! Fixed-width cover bitsets.
//!
//! The dominance memo keys every visited decision-tree node by its
//! covered-block set. Packing that set into a `Vec<u64>` (the original
//! representation) allocated on every node visit; [`CoverSet`] instead
//! stores the bits inline — a single `u128` for graphs of up to 128
//! blocks (every real workload), a fixed `[u64; 4]` up to 256 blocks —
//! so cloning a key on the search hot path is allocation-free. Graphs
//! beyond 256 blocks fall back to a boxed slice and keep working.

/// A set of covered block indices, sized once at construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CoverSet {
    len: u32,
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Up to 128 blocks: one inline word — the hot path.
    Inline(u128),
    /// Up to 256 blocks: fixed-width array, still allocation-free.
    Array([u64; 4]),
    /// Arbitrary width (rare; allocates like the old `Vec<u64>` key).
    Heap(Box<[u64]>),
}

impl CoverSet {
    /// An empty set over `len` possible indices.
    pub fn with_len(len: usize) -> Self {
        let repr = if len <= 128 {
            Repr::Inline(0)
        } else if len <= 256 {
            Repr::Array([0; 4])
        } else {
            Repr::Heap(vec![0u64; len.div_ceil(64)].into_boxed_slice())
        };
        CoverSet {
            len: len as u32,
            repr,
        }
    }

    /// The number of indices the set ranges over (not the popcount).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set ranges over zero indices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether index `i` is in the set.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len());
        match &self.repr {
            Repr::Inline(bits) => (bits >> i) & 1 == 1,
            Repr::Array(words) => (words[i / 64] >> (i % 64)) & 1 == 1,
            Repr::Heap(words) => (words[i / 64] >> (i % 64)) & 1 == 1,
        }
    }

    /// Insert index `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len());
        match &mut self.repr {
            Repr::Inline(bits) => *bits |= 1u128 << i,
            Repr::Array(words) => words[i / 64] |= 1u64 << (i % 64),
            Repr::Heap(words) => words[i / 64] |= 1u64 << (i % 64),
        }
    }

    /// How many indices are in the set.
    pub fn count(&self) -> usize {
        match &self.repr {
            Repr::Inline(bits) => bits.count_ones() as usize,
            Repr::Array(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
            Repr::Heap(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Whether every index in `0..len` is in the set.
    pub fn is_full(&self) -> bool {
        self.count() == self.len()
    }
}

impl Default for CoverSet {
    fn default() -> Self {
        CoverSet::with_len(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn empty_set_is_full() {
        let s = CoverSet::with_len(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn set_get_count_across_representations() {
        // Exercise the inline, array, and heap representations plus
        // both sides of every word boundary.
        for len in [1usize, 63, 64, 65, 127, 128, 129, 255, 256, 257, 400] {
            let mut s = CoverSet::with_len(len);
            assert!(!s.is_full() || len == 0);
            let picks: Vec<usize> = (0..len).filter(|i| i % 7 == 0 || i + 1 == len).collect();
            for &i in &picks {
                assert!(!s.get(i), "len={len} i={i}");
                s.set(i);
                assert!(s.get(i), "len={len} i={i}");
            }
            assert_eq!(s.count(), picks.len(), "len={len}");
            // Setting twice is idempotent.
            for &i in &picks {
                s.set(i);
            }
            assert_eq!(s.count(), picks.len(), "len={len}");
        }
    }

    #[test]
    fn is_full_when_all_set() {
        for len in [1usize, 128, 129, 300] {
            let mut s = CoverSet::with_len(len);
            for i in 0..len {
                s.set(i);
            }
            assert!(s.is_full(), "len={len}");
        }
    }

    #[test]
    fn equality_and_hash_follow_contents() {
        for len in [10usize, 130, 300] {
            let mut a = CoverSet::with_len(len);
            let mut b = CoverSet::with_len(len);
            assert_eq!(a, b);
            a.set(3);
            assert_ne!(a, b);
            b.set(3);
            assert_eq!(a, b);
            let mut seen = HashSet::new();
            assert!(seen.insert(a.clone()));
            assert!(!seen.insert(b), "equal sets must collide in a hash set");
        }
    }

    #[test]
    fn clone_is_independent() {
        let mut a = CoverSet::with_len(300);
        let b = a.clone();
        a.set(299);
        assert!(a.get(299));
        assert!(!b.get(299));
    }
}
