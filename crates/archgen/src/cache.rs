//! The content-addressed cover cache: cross-design (and cross-run)
//! reuse of best-known covers.
//!
//! Mapping is where synthesis time goes, yet real design traffic is
//! repetitive — the same filter section, the same control loop, the
//! same library blocks wired the same way, arriving under the same
//! constraints. The cache keys each signal-flow graph by its *content*
//! ([`vase_vhif::structural_hash`], invariant to names and labels)
//! plus a fingerprint of everything else that can change the optimal
//! cover (performance constraints, matcher options, sharing, fan-out
//! limit), and stores the winning plan's components. A later mapping of
//! a structurally identical graph is then answered in O(lookup):
//! rebuild the plan, [`resolve`](crate::plan::resolve) and re-estimate
//! it — both deterministic — and return a netlist bitwise identical to
//! what the search would have produced.
//!
//! Cached covers are **validated, never trusted**: a lookup replays the
//! stored plan against the *current* graph and estimator, and any
//! inconsistency (out-of-range block, double cover, incomplete cover,
//! resolution failure, constraint violation) falls through as a miss.
//! That makes a stale or corrupted cache file a performance problem,
//! never a correctness problem.
//!
//! The cache persists as a line-oriented text file (header
//! `VASE-COVER-CACHE v1`) so `vase synth --cache-file` can carry
//! covers across runs; `f64`s are stored as exact bit patterns to keep
//! the bitwise-identity guarantee through a save/load round trip.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vase_estimate::{Estimator, NetlistEstimate};
use vase_library::{ComponentKind, Netlist};
use vase_vhif::{structural_hash, BlockId, GraphBounds, SignalFlowGraph};

use crate::config::MapperConfig;
use crate::plan::{resolve, Plan, PlannedComponent};

/// A best-known cover for one `(graph content, context)` key.
#[derive(Debug, Clone)]
struct CachedCover {
    opamps: usize,
    components: Vec<PlannedComponent>,
}

/// A concurrent, content-addressed table of best-known covers.
///
/// Shared by reference across the mappings of a batch (and across
/// designs): hit/miss counters are atomic and the table is mutexed, so
/// one cache can serve parallel flows.
#[derive(Debug, Default)]
pub struct CoverCache {
    table: Mutex<HashMap<(u64, u64), CachedCover>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CoverCache {
    /// An empty cache.
    pub fn new() -> Self {
        CoverCache::default()
    }

    /// The cache key for mapping `graph` with `estimator` under
    /// `config`: the graph's structural hash plus a fingerprint of
    /// every knob that can change which cover is optimal.
    pub fn key(graph: &SignalFlowGraph, estimator: &Estimator, config: &MapperConfig) -> (u64, u64) {
        CoverCache::key_with_bounds(graph, estimator, config, None)
    }

    /// [`CoverCache::key`] for a mapping that may range-prune against
    /// proven value bounds. The bounds join the context fingerprint
    /// *only* when `config.range_prune` is set and bounds are present —
    /// a pruning search can return a different cover, so it must not
    /// share entries with (or poison) the exact search's keys. With
    /// `range_prune` off the key is identical to [`CoverCache::key`]
    /// whether or not bounds ride on the design.
    pub fn key_with_bounds(
        graph: &SignalFlowGraph,
        estimator: &Estimator,
        config: &MapperConfig,
        bounds: Option<&GraphBounds>,
    ) -> (u64, u64) {
        let bounds = bounds.filter(|_| config.range_prune);
        (structural_hash(graph), context_fingerprint(estimator, config, bounds))
    }

    /// Look up and *validate* a cached cover. Returns the resolved
    /// netlist and its estimate on a hit; `None` (recorded as a miss)
    /// when the key is absent or the stored cover fails replay against
    /// the current graph/estimator.
    pub fn lookup(
        &self,
        key: (u64, u64),
        graph: &SignalFlowGraph,
        estimator: &Estimator,
        config: &MapperConfig,
    ) -> Option<(Netlist, NetlistEstimate)> {
        let cover = {
            let table = self.table.lock().expect("cover-cache poisoned");
            table.get(&key).cloned()
        };
        let replayed = cover.and_then(|c| replay(&c, graph, estimator, config));
        match replayed {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record the winning cover for `key`. Last writer wins; since all
    /// writers for one key found covers for the same graph under the
    /// same context with the same (deterministic) search, they agree.
    pub fn insert(&self, key: (u64, u64), opamps: usize, components: Vec<PlannedComponent>) {
        let mut table = self.table.lock().expect("cover-cache poisoned");
        table.insert(key, CachedCover { opamps, components });
    }

    /// Number of cached covers.
    pub fn len(&self) -> usize {
        self.table.lock().expect("cover-cache poisoned").len()
    }

    /// Whether the cache holds no covers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validated lookups served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed (absent key or failed validation).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Serialize the cache to its line-oriented text format.
    pub fn serialize(&self) -> String {
        let table = self.table.lock().expect("cover-cache poisoned");
        let mut keys: Vec<&(u64, u64)> = table.keys().collect();
        keys.sort(); // deterministic files
        let mut out = String::from("VASE-COVER-CACHE v1\n");
        for key in keys {
            let cover = &table[key];
            let _ = writeln!(
                out,
                "e {:016x} {:016x} {} {}",
                key.0,
                key.1,
                cover.opamps,
                cover.components.len()
            );
            for c in &cover.components {
                out.push('c');
                let _ = write!(out, " {}", c.output.index());
                let _ = write!(out, " {}", c.covered.len());
                for b in &c.covered {
                    let _ = write!(out, " {}", b.index());
                }
                let _ = write!(out, " {}", c.inputs.len());
                for b in &c.inputs {
                    let _ = write!(out, " {}", b.index());
                }
                write_kind(&mut out, &c.kind);
                out.push('\n');
            }
        }
        out
    }

    /// Parse a cache from its text format.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::InvalidData`] on a bad header or any
    /// malformed entry.
    pub fn deserialize(text: &str) -> std::io::Result<Self> {
        let mut lines = text.lines();
        match lines.next() {
            Some("VASE-COVER-CACHE v1") => {}
            _ => return Err(bad("missing VASE-COVER-CACHE v1 header")),
        }
        let mut table = HashMap::new();
        while let Some(line) = lines.next() {
            if line.is_empty() {
                continue;
            }
            let mut t = line.split_ascii_whitespace();
            if t.next() != Some("e") {
                return Err(bad("expected entry line"));
            }
            let hash = u64_hex(t.next())?;
            let ctx = u64_hex(t.next())?;
            let opamps = int(t.next())?;
            let ncomp = int(t.next())?;
            let mut components = Vec::with_capacity(ncomp);
            for _ in 0..ncomp {
                let line = lines.next().ok_or_else(|| bad("truncated entry"))?;
                let mut t = line.split_ascii_whitespace();
                if t.next() != Some("c") {
                    return Err(bad("expected component line"));
                }
                let output = BlockId::from_index(int(t.next())?);
                let ncov = int(t.next())?;
                let mut covered = Vec::with_capacity(ncov);
                for _ in 0..ncov {
                    covered.push(BlockId::from_index(int(t.next())?));
                }
                let nin = int(t.next())?;
                let mut inputs = Vec::with_capacity(nin);
                for _ in 0..nin {
                    inputs.push(BlockId::from_index(int(t.next())?));
                }
                let kind = read_kind(&mut t)?;
                if t.next().is_some() {
                    return Err(bad("trailing tokens on component line"));
                }
                components.push(PlannedComponent {
                    kind,
                    covered,
                    inputs,
                    output,
                });
            }
            table.insert((hash, ctx), CachedCover { opamps, components });
        }
        Ok(CoverCache {
            table: Mutex::new(table),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Write the cache to `path` atomically: the serialized table goes
    /// to `<path>.tmp` first and is renamed over `path` only once fully
    /// written, so a crash (or `kill -9`) mid-save leaves the previous
    /// cache intact instead of a truncated file. The temp file lives in
    /// the same directory so the rename never crosses filesystems.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the target file is
    /// untouched (a stale `<path>.tmp` may remain and is overwritten by
    /// the next save).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.serialize())?;
        std::fs::rename(&tmp, path)
    }

    /// Read a cache from `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and format errors from
    /// [`CoverCache::deserialize`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        CoverCache::deserialize(&std::fs::read_to_string(path)?)
    }
}

/// FNV-1a over everything outside the graph that can change the
/// optimal cover: performance constraints (exact bits), matcher
/// options, sharing, the fan-out limit, and — when range pruning is
/// active — the proven per-block bounds the pruning consults. The
/// bounds mix is keyed on the caller having already filtered on
/// `config.range_prune`, so pruning-off fingerprints are byte-for-byte
/// what they were before bounds existed.
fn context_fingerprint(
    estimator: &Estimator,
    config: &MapperConfig,
    bounds: Option<&GraphBounds>,
) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    let c = &estimator.constraints;
    mix(c.bandwidth_hz.to_bits());
    mix(c.signal_peak_v.to_bits());
    mix(c.max_power_w.to_bits());
    mix(c.max_area_m2.to_bits());
    mix(u64::from(config.match_options.multi_block));
    mix(u64::from(config.match_options.transforms));
    mix(u64::from(config.sharing));
    mix(config.fanout_limit as u64);
    if let Some(b) = bounds {
        // A marker first, so "pruning with all-unknown bounds" still
        // keys apart from "no pruning".
        mix(0x5241_4e47_4550_5255); // "RANGEPRU"
        mix(b.blocks.len() as u64);
        for entry in &b.blocks {
            match entry {
                Some((lo, hi)) => {
                    mix(1);
                    mix(lo.to_bits());
                    mix(hi.to_bits());
                }
                None => mix(0),
            }
        }
    }
    h
}

/// Replay a stored cover against the current graph: rebuild the plan
/// with full validation, resolve it, and require feasibility. Any
/// failure returns `None` (a miss).
fn replay(
    cover: &CachedCover,
    graph: &SignalFlowGraph,
    estimator: &Estimator,
    config: &MapperConfig,
) -> Option<(Netlist, NetlistEstimate)> {
    let mut plan = Plan::new(graph);
    for c in &cover.components {
        if c.output.index() >= graph.len() {
            return None;
        }
        for &b in c.covered.iter().chain(c.inputs.iter()) {
            if b.index() >= graph.len() {
                return None;
            }
        }
        for &b in &c.covered {
            // Rejects double covers and covers claiming interface
            // blocks (those are pre-covered by `Plan::new`).
            if plan.is_covered(b) {
                return None;
            }
            plan.cover(b);
        }
        plan.components.push(c.clone());
    }
    // Op-amp count is recomputed from the kinds, not trusted from the
    // file (it only feeds reporting, but keep it consistent).
    plan.opamps = plan.components.iter().map(|c| c.kind.opamp_count()).sum();
    if plan.opamps != cover.opamps || !plan.is_complete() {
        return None;
    }
    let netlist = resolve(graph, &plan, config.fanout_limit).ok()?;
    let estimate = estimator.estimate_netlist(&netlist);
    if !estimate.feasible() {
        return None;
    }
    Some((netlist, estimate))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("cover cache: {msg}"))
}

fn int(tok: Option<&str>) -> std::io::Result<usize> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("expected integer"))
}

fn u64_hex(tok: Option<&str>) -> std::io::Result<u64> {
    tok.and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or_else(|| bad("expected hex u64"))
}

fn f64_bits(tok: Option<&str>) -> std::io::Result<f64> {
    u64_hex(tok).map(f64::from_bits)
}

/// Append a component kind as `tag field…`, floats as exact bit
/// patterns. Tags follow the `ComponentKind` declaration order and
/// match the byte tags of `vase_estimate::memo`.
fn write_kind(out: &mut String, kind: &ComponentKind) {
    use ComponentKind::*;
    let f = |out: &mut String, v: f64| {
        let _ = write!(out, " {:016x}", v.to_bits());
    };
    match kind {
        InvertingAmp { gain } => {
            out.push_str(" 0");
            f(out, *gain);
        }
        NonInvertingAmp { gain } => {
            out.push_str(" 1");
            f(out, *gain);
        }
        Follower => out.push_str(" 2"),
        AmplifierChain { stage_gains } => {
            let _ = write!(out, " 3 {}", stage_gains.len());
            for g in stage_gains {
                f(out, *g);
            }
        }
        SummingAmp { weights } => {
            let _ = write!(out, " 4 {}", weights.len());
            for w in weights {
                f(out, *w);
            }
        }
        DifferenceAmp { gain } => {
            out.push_str(" 5");
            f(out, *gain);
        }
        SwitchedGainAmp { gains } => {
            let _ = write!(out, " 6 {}", gains.len());
            for g in gains {
                f(out, *g);
            }
        }
        Integrator { weights, initial } => {
            let _ = write!(out, " 7 {}", weights.len());
            for w in weights {
                f(out, *w);
            }
            f(out, *initial);
        }
        Differentiator { gain } => {
            out.push_str(" 8");
            f(out, *gain);
        }
        LogAmp => out.push_str(" 9"),
        AntilogAmp => out.push_str(" 10"),
        Multiplier => out.push_str(" 11"),
        Divider => out.push_str(" 12"),
        PrecisionRectifier => out.push_str(" 13"),
        Comparator { threshold } => {
            out.push_str(" 14");
            f(out, *threshold);
        }
        ZeroCrossDetector { level, hysteresis } => {
            out.push_str(" 15");
            f(out, *level);
            f(out, *hysteresis);
        }
        SchmittTrigger { low, high } => {
            out.push_str(" 16");
            f(out, *low);
            f(out, *high);
        }
        SampleHold => out.push_str(" 17"),
        AnalogSwitch => out.push_str(" 18"),
        AnalogMux { inputs } => {
            let _ = write!(out, " 19 {inputs}");
        }
        Adc { bits } => {
            let _ = write!(out, " 20 {bits}");
        }
        LogicGate => out.push_str(" 21"),
        MemoryCell => out.push_str(" 22"),
        VoltageRef { level } => {
            out.push_str(" 23");
            f(out, *level);
        }
        Limiter { level } => {
            out.push_str(" 24");
            f(out, *level);
        }
        OutputStage {
            load_ohms,
            peak_volts,
            limit,
        } => {
            out.push_str(" 25");
            f(out, *load_ohms);
            f(out, *peak_volts);
            match limit {
                Some(l) => {
                    out.push_str(" 1");
                    f(out, *l);
                }
                None => out.push_str(" 0"),
            }
        }
    }
}

/// Parse a component kind written by [`write_kind`].
fn read_kind<'a>(t: &mut impl Iterator<Item = &'a str>) -> std::io::Result<ComponentKind> {
    use ComponentKind::*;
    let tag = int(t.next())?;
    Ok(match tag {
        0 => InvertingAmp { gain: f64_bits(t.next())? },
        1 => NonInvertingAmp { gain: f64_bits(t.next())? },
        2 => Follower,
        3 => {
            let n = int(t.next())?;
            let mut stage_gains = Vec::with_capacity(n);
            for _ in 0..n {
                stage_gains.push(f64_bits(t.next())?);
            }
            AmplifierChain { stage_gains }
        }
        4 => {
            let n = int(t.next())?;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push(f64_bits(t.next())?);
            }
            SummingAmp { weights }
        }
        5 => DifferenceAmp { gain: f64_bits(t.next())? },
        6 => {
            let n = int(t.next())?;
            let mut gains = Vec::with_capacity(n);
            for _ in 0..n {
                gains.push(f64_bits(t.next())?);
            }
            SwitchedGainAmp { gains }
        }
        7 => {
            let n = int(t.next())?;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push(f64_bits(t.next())?);
            }
            Integrator {
                weights,
                initial: f64_bits(t.next())?,
            }
        }
        8 => Differentiator { gain: f64_bits(t.next())? },
        9 => LogAmp,
        10 => AntilogAmp,
        11 => Multiplier,
        12 => Divider,
        13 => PrecisionRectifier,
        14 => Comparator { threshold: f64_bits(t.next())? },
        15 => ZeroCrossDetector {
            level: f64_bits(t.next())?,
            hysteresis: f64_bits(t.next())?,
        },
        16 => SchmittTrigger {
            low: f64_bits(t.next())?,
            high: f64_bits(t.next())?,
        },
        17 => SampleHold,
        18 => AnalogSwitch,
        19 => AnalogMux { inputs: int(t.next())? },
        20 => Adc {
            bits: int(t.next())? as u32,
        },
        21 => LogicGate,
        22 => MemoryCell,
        23 => VoltageRef { level: f64_bits(t.next())? },
        24 => Limiter { level: f64_bits(t.next())? },
        25 => {
            let load_ohms = f64_bits(t.next())?;
            let peak_volts = f64_bits(t.next())?;
            let limit = match int(t.next())? {
                0 => None,
                1 => Some(f64_bits(t.next())?),
                _ => return Err(bad("bad Option tag")),
            };
            OutputStage {
                load_ohms,
                peak_volts,
                limit,
            }
        }
        _ => return Err(bad("unknown component-kind tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::{map_graph, map_graph_with_cache};
    use vase_vhif::BlockKind;

    fn estimator() -> Estimator {
        Estimator::default()
    }

    fn fig6_graph(name: &str, labels: bool) -> SignalFlowGraph {
        let mut g = SignalFlowGraph::new(name);
        let a = g.add(BlockKind::Input { name: "a".into() });
        let b = g.add(BlockKind::Input { name: "b".into() });
        let s1 = g.add(BlockKind::Scale { gain: 2.0 });
        let s2 = g.add(BlockKind::Scale { gain: 3.0 });
        let add = if labels {
            g.add_labelled(BlockKind::Add { arity: 2 }, "sum")
        } else {
            g.add(BlockKind::Add { arity: 2 })
        };
        let s3 = g.add(BlockKind::Scale { gain: 0.5 });
        let y = g.add(BlockKind::Output { name: "y".into() });
        g.connect(a, s1, 0).expect("wire");
        g.connect(b, s2, 0).expect("wire");
        g.connect(s1, add, 0).expect("wire");
        g.connect(s2, add, 1).expect("wire");
        g.connect(add, s3, 0).expect("wire");
        g.connect(s3, y, 0).expect("wire");
        g
    }

    #[test]
    fn warm_lookup_is_bitwise_identical_to_cold_search() {
        let g = fig6_graph("one", false);
        let config = MapperConfig::default();
        let cache = CoverCache::new();
        let cold = map_graph_with_cache(&g, &estimator(), &config, &cache).expect("maps");
        assert_eq!(cold.stats.cache_hits, 0);
        assert_eq!(cold.stats.cache_misses, 1);
        assert_eq!(cache.len(), 1);

        let warm = map_graph_with_cache(&g, &estimator(), &config, &cache).expect("maps");
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.stats.visited_nodes, 0, "a hit skips the search");
        assert_eq!(warm.netlist, cold.netlist);
        assert_eq!(
            warm.estimate.area_m2.to_bits(),
            cold.estimate.area_m2.to_bits()
        );
    }

    #[test]
    fn cache_hits_across_renamed_designs() {
        // Same structure, different graph name and labels → same key.
        let config = MapperConfig::default();
        let cache = CoverCache::new();
        let a = fig6_graph("design_a", false);
        let b = fig6_graph("design_b", true);
        let first = map_graph_with_cache(&a, &estimator(), &config, &cache).expect("maps");
        let second = map_graph_with_cache(&b, &estimator(), &config, &cache).expect("maps");
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(
            first.netlist.opamp_count(),
            second.netlist.opamp_count()
        );
    }

    #[test]
    fn different_constraints_do_not_share_entries() {
        use vase_estimate::PerformanceConstraints;
        let g = fig6_graph("one", false);
        let config = MapperConfig::default();
        let cache = CoverCache::new();
        map_graph_with_cache(&g, &estimator(), &config, &cache).expect("maps");
        let tighter = Estimator::new(PerformanceConstraints {
            bandwidth_hz: 1e6,
            ..estimator().constraints
        });
        let second = map_graph_with_cache(&g, &tighter, &config, &cache).expect("maps");
        assert_eq!(second.stats.cache_hits, 0, "different constraints must miss");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn range_prune_keys_separate_only_when_active() {
        use vase_vhif::GraphBounds;
        let g = fig6_graph("one", false);
        let e = estimator();
        let off = MapperConfig::default();
        let on = MapperConfig { range_prune: true, ..MapperConfig::default() };
        let mut bounds = GraphBounds::unknown(&g);
        bounds.blocks[2] = Some((-0.5, 0.5));
        // Pruning off: bounds never reach the key.
        assert_eq!(
            CoverCache::key_with_bounds(&g, &e, &off, Some(&bounds)),
            CoverCache::key(&g, &e, &off)
        );
        // Pruning on with bounds: the key must diverge — a pruning
        // search may find a different cover.
        assert_ne!(
            CoverCache::key_with_bounds(&g, &e, &on, Some(&bounds)),
            CoverCache::key(&g, &e, &on)
        );
        // ...and depend on the bound values themselves.
        let mut other = GraphBounds::unknown(&g);
        other.blocks[2] = Some((-1.0, 1.0));
        assert_ne!(
            CoverCache::key_with_bounds(&g, &e, &on, Some(&bounds)),
            CoverCache::key_with_bounds(&g, &e, &on, Some(&other))
        );
    }

    #[test]
    fn save_load_round_trip_preserves_hits() {
        let g = fig6_graph("one", false);
        let config = MapperConfig::default();
        let cache = CoverCache::new();
        let cold = map_graph_with_cache(&g, &estimator(), &config, &cache).expect("maps");

        let text = cache.serialize();
        let reloaded = CoverCache::deserialize(&text).expect("parses");
        assert_eq!(reloaded.len(), cache.len());
        let warm = map_graph_with_cache(&g, &estimator(), &config, &reloaded).expect("maps");
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.netlist, cold.netlist);
        // And the text form itself round-trips exactly.
        assert_eq!(reloaded.serialize(), text);
    }

    /// A process-unique scratch directory; each test cleans its own.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("vase-cache-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let g = fig6_graph("one", false);
        let config = MapperConfig::default();
        let cache = CoverCache::new();
        map_graph_with_cache(&g, &estimator(), &config, &cache).expect("maps");

        let dir = scratch_dir("atomic");
        let path = dir.join("covers.cache");
        cache.save(&path).expect("saves");
        assert!(path.exists());
        assert!(!dir.join("covers.cache.tmp").exists(), "temp file must be renamed away");
        let reloaded = CoverCache::load(&path).expect("loads");
        assert_eq!(reloaded.len(), cache.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_temp_from_killed_save_does_not_shadow_the_cache() {
        // Simulate `kill -9` mid-save: a half-written `<path>.tmp` next
        // to a valid cache. The load must see only the valid file, and
        // the next save must clean up by renaming over it.
        let g = fig6_graph("one", false);
        let config = MapperConfig::default();
        let cache = CoverCache::new();
        map_graph_with_cache(&g, &estimator(), &config, &cache).expect("maps");

        let dir = scratch_dir("killed");
        let path = dir.join("covers.cache");
        cache.save(&path).expect("saves");
        std::fs::write(dir.join("covers.cache.tmp"), "VASE-COVER-CACHE v1\ne 12 34")
            .expect("plant torn temp file");

        let reloaded = CoverCache::load(&path).expect("valid cache loads despite stale tmp");
        assert_eq!(reloaded.len(), cache.len());
        reloaded.save(&path).expect("saves over stale tmp");
        assert!(!dir.join("covers.cache.tmp").exists());
        assert_eq!(CoverCache::load(&path).expect("still loads").len(), cache.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_or_garbage_cache_file_is_an_error_not_a_panic() {
        let dir = scratch_dir("garbage");
        for (name, text) in [
            ("empty", ""),
            ("header-only-truncated-entry", "VASE-COVER-CACHE v1\ne deadbeef"),
            ("truncated-component", "VASE-COVER-CACHE v1\ne 1a 2b 1 1\nc 0 1"),
            ("binary-garbage", "\u{0}\u{1}\u{2}garbage\u{ff}"),
            ("wrong-header", "SOME-OTHER-FORMAT v9\ne 1 2 3 4"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, text).expect("write fixture");
            let err = CoverCache::load(&path).expect_err("garbage must not load");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{name}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cover_falls_through_as_miss() {
        let g = fig6_graph("one", false);
        let config = MapperConfig::default();
        let cache = CoverCache::new();
        let key = CoverCache::key(&g, &estimator(), &config);
        // A cover claiming a block index beyond the graph.
        cache.insert(
            key,
            1,
            vec![PlannedComponent {
                kind: ComponentKind::Follower,
                covered: vec![BlockId::from_index(99)],
                inputs: vec![],
                output: BlockId::from_index(99),
            }],
        );
        let result = map_graph_with_cache(&g, &estimator(), &config, &cache).expect("maps");
        assert_eq!(result.stats.cache_hits, 0);
        assert_eq!(result.stats.cache_misses, 1);
        // The failed validation was counted on the cache itself.
        assert_eq!(cache.misses(), 1);
        // And the search overwrote the bogus entry with the real cover.
        let retry = map_graph_with_cache(&g, &estimator(), &config, &cache).expect("maps");
        assert_eq!(retry.stats.cache_hits, 1);
        // The uncached reference agrees.
        let reference = map_graph(&g, &estimator(), &config).expect("maps");
        assert_eq!(retry.netlist, reference.netlist);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(CoverCache::deserialize("nonsense").is_err());
        assert!(CoverCache::deserialize("VASE-COVER-CACHE v1\ne zz").is_err());
        assert!(
            CoverCache::deserialize("VASE-COVER-CACHE v1\ne 0 0 1 1\n").is_err(),
            "truncated component list"
        );
        assert!(CoverCache::deserialize("VASE-COVER-CACHE v1").expect("empty ok").is_empty());
    }

    #[test]
    fn kind_codec_round_trips_every_variant() {
        let kinds = vec![
            ComponentKind::InvertingAmp { gain: -2.5 },
            ComponentKind::NonInvertingAmp { gain: 3.0 },
            ComponentKind::Follower,
            ComponentKind::AmplifierChain { stage_gains: vec![10.0, 20.0] },
            ComponentKind::SummingAmp { weights: vec![1.0, 1.5] },
            ComponentKind::DifferenceAmp { gain: 1.0 },
            ComponentKind::SwitchedGainAmp { gains: vec![1.0, 2.0] },
            ComponentKind::Integrator { weights: vec![0.25], initial: -1.0 },
            ComponentKind::Differentiator { gain: 0.5 },
            ComponentKind::LogAmp,
            ComponentKind::AntilogAmp,
            ComponentKind::Multiplier,
            ComponentKind::Divider,
            ComponentKind::PrecisionRectifier,
            ComponentKind::Comparator { threshold: 0.1 },
            ComponentKind::ZeroCrossDetector { level: 0.0, hysteresis: 0.05 },
            ComponentKind::SchmittTrigger { low: -1.0, high: 1.0 },
            ComponentKind::SampleHold,
            ComponentKind::AnalogSwitch,
            ComponentKind::AnalogMux { inputs: 4 },
            ComponentKind::Adc { bits: 8 },
            ComponentKind::LogicGate,
            ComponentKind::MemoryCell,
            ComponentKind::VoltageRef { level: 2.5 },
            ComponentKind::Limiter { level: 1.5 },
            ComponentKind::OutputStage { load_ohms: 270.0, peak_volts: 0.285, limit: Some(1.5) },
            ComponentKind::OutputStage { load_ohms: 75.0, peak_volts: 1.0, limit: None },
        ];
        for kind in kinds {
            let mut line = String::new();
            write_kind(&mut line, &kind);
            let mut toks = line.split_ascii_whitespace();
            let back = read_kind(&mut toks).expect("parses");
            assert_eq!(back, kind);
            assert!(toks.next().is_none(), "unconsumed tokens for {kind:?}");
        }
    }
}
