//! Mapping the event-driven part (FSMs) onto analog circuits.
//!
//! Paper Section 5: "For analog systems, the FSM has very often a
//! simple structure, that can be entirely mapped to analog circuits,
//! i.e. Schmitt triggers, zero-cross detectors, sample-and-hold
//! circuits". This module implements those recognitions:
//!
//! * one `'above` event on a quantity → a **zero-cross detector** with
//!   a small hysteresis margin (so repeated switchings between states
//!   are avoided — the paper's receiver control element);
//! * two `'above` events on the *same* quantity at different levels →
//!   one **Schmitt trigger** spanning the two thresholds (the function
//!   generator's ramp control);
//! * a data-path op sampling a quantity → a **sample-and-hold**;
//! * an `adc(...)` data-path op → an **ADC** (plus the S/H feeding it);
//! * arithmetic data-path ops on analog values → difference amplifiers
//!   / summing amplifiers, as in the mixed acquisition parts.
//!
//! Bit-constant control assignments (`c1 <= '1'`) cost no hardware:
//! they are the detector's own output levels.

use std::collections::BTreeMap;

use vase_library::{ComponentKind, PlacedComponent, SourceRef};
use vase_vhif::{DataOp, DpBinaryOp, DpExpr, Event, Fsm};

/// Relative hysteresis applied to event detectors (fraction of the
/// threshold magnitude, with an absolute floor).
pub const EVENT_HYSTERESIS: f64 = 0.02;

/// Map one FSM to library components, together with the control
/// bindings: which (local) component output carries each control
/// signal the machine drives. Inputs are external nets named after the
/// quantities/signals they tap.
pub fn map_fsm_with_bindings(fsm: &Fsm) -> (Vec<PlacedComponent>, Vec<(String, usize)>) {
    let components = map_fsm(fsm);
    // Binding heuristic: when the machine has exactly one event
    // detector and only sets bit-constant control signals, those
    // signals are the detector's output levels.
    let detectors: Vec<usize> = components
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            matches!(
                c.kind,
                ComponentKind::ZeroCrossDetector { .. } | ComponentKind::SchmittTrigger { .. }
            )
        })
        .map(|(i, _)| i)
        .collect();
    let mut bindings = Vec::new();
    if detectors.len() == 1 {
        for (_, state) in fsm.iter() {
            for op in &state.ops {
                if matches!(op.value, DpExpr::Bit(_))
                    && !bindings.iter().any(|(s, _): &(String, usize)| s == &op.target)
                {
                    bindings.push((op.target.clone(), detectors[0]));
                }
            }
        }
    }
    (components, bindings)
}

/// Map one FSM to library components. Inputs are external nets named
/// after the quantities/signals they tap; outputs are named after the
/// control signals the machine drives.
pub fn map_fsm(fsm: &Fsm) -> Vec<PlacedComponent> {
    let mut components = Vec::new();

    // 1. Event detectors: group 'above events by quantity.
    let mut above_by_quantity: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for event in fsm.events() {
        if let Event::Above { quantity, threshold } = event {
            let entry = above_by_quantity.entry(quantity.clone()).or_default();
            if !entry.iter().any(|t| (t - threshold).abs() < 1e-12) {
                entry.push(*threshold);
            }
        }
    }
    // Guards also reference event levels.
    collect_guard_events(fsm, &mut above_by_quantity);

    for (quantity, mut thresholds) in above_by_quantity {
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
        if thresholds.len() >= 2 {
            // Two levels on one quantity: a Schmitt trigger spans them.
            components.push(PlacedComponent {
                kind: ComponentKind::SchmittTrigger {
                    low: thresholds[0],
                    high: *thresholds.last().expect("non-empty"),
                },
                inputs: vec![SourceRef::External(quantity.clone())],
                implements: vec![],
                label: format!("schmitt_{quantity}"),
            });
        } else {
            let level = thresholds[0];
            components.push(PlacedComponent {
                kind: ComponentKind::ZeroCrossDetector {
                    level,
                    hysteresis: (level.abs() * EVENT_HYSTERESIS).max(1e-3),
                },
                inputs: vec![SourceRef::External(quantity.clone())],
                implements: vec![],
                label: format!("zcd_{quantity}"),
            });
        }
    }

    // 2. Data-path operations.
    for (_, state) in fsm.iter() {
        for op in &state.ops {
            map_data_op(op, &mut components);
        }
    }
    components
}

fn collect_guard_events(fsm: &Fsm, out: &mut BTreeMap<String, Vec<f64>>) {
    for t in fsm.transitions() {
        if let vase_vhif::Trigger::Guard(g) = &t.trigger {
            collect_expr_events(g, out);
        }
    }
}

fn collect_expr_events(expr: &DpExpr, out: &mut BTreeMap<String, Vec<f64>>) {
    match expr {
        DpExpr::EventLevel(Event::Above { quantity, threshold }) => {
            let entry = out.entry(quantity.clone()).or_default();
            if !entry.iter().any(|t| (t - threshold).abs() < 1e-12) {
                entry.push(*threshold);
            }
        }
        DpExpr::Adc(e) | DpExpr::Not(e) => collect_expr_events(e, out),
        DpExpr::Binary { lhs, rhs, .. } => {
            collect_expr_events(lhs, out);
            collect_expr_events(rhs, out);
        }
        _ => {}
    }
}

fn map_data_op(op: &DataOp, components: &mut Vec<PlacedComponent>) {
    map_dp_value(&op.target, &op.value, components);
}

/// Map the value side of a data-path op; returns the source carrying
/// the produced value (for nesting).
fn map_dp_value(
    target: &str,
    value: &DpExpr,
    components: &mut Vec<PlacedComponent>,
) -> Option<SourceRef> {
    match value {
        // Bit constants fold into the upstream detector's output level.
        DpExpr::Bit(_) | DpExpr::Real(_) | DpExpr::Signal(_) | DpExpr::EventLevel(_)
        | DpExpr::Not(_) => None,
        // Sampling an analog quantity needs a sample-and-hold.
        DpExpr::Quantity(q) => {
            let index = push_unique(
                components,
                PlacedComponent {
                    kind: ComponentKind::SampleHold,
                    inputs: vec![
                        SourceRef::External(q.clone()),
                        SourceRef::External(format!("{target}_sample")),
                    ],
                    implements: vec![],
                    label: format!("sh_{q}"),
                },
            );
            Some(SourceRef::Component(index))
        }
        // ADC conversion: map the inner value, then convert it.
        DpExpr::Adc(inner) => {
            let source = map_dp_value(target, inner, components)
                .unwrap_or_else(|| SourceRef::External(format!("{target}_in")));
            let index = push_unique(
                components,
                PlacedComponent {
                    kind: ComponentKind::Adc { bits: 8 },
                    inputs: vec![source, SourceRef::External(format!("{target}_convert"))],
                    implements: vec![],
                    label: format!("adc_{target}"),
                },
            );
            Some(SourceRef::Component(index))
        }
        // Analog arithmetic in the data-path: difference/summing amps.
        DpExpr::Binary { op, lhs, rhs } => {
            let reads_analog = matches!(**lhs, DpExpr::Quantity(_))
                || matches!(**rhs, DpExpr::Quantity(_));
            if !reads_analog {
                return None;
            }
            let l = map_dp_value(target, lhs, components);
            let r = map_dp_value(target, rhs, components);
            let inputs = vec![
                l.unwrap_or(SourceRef::External(format!("{target}_a"))),
                r.unwrap_or(SourceRef::External(format!("{target}_b"))),
            ];
            let kind = match op {
                DpBinaryOp::Sub => ComponentKind::DifferenceAmp { gain: 1.0 },
                DpBinaryOp::Add => ComponentKind::SummingAmp { weights: vec![1.0, 1.0] },
                DpBinaryOp::Mul => ComponentKind::Multiplier,
                DpBinaryOp::Div => ComponentKind::Divider,
                // Comparisons in guards were handled as events.
                _ => return None,
            };
            let index = push_unique(
                components,
                PlacedComponent {
                    kind,
                    inputs,
                    implements: vec![],
                    label: format!("dp_{target}"),
                },
            );
            Some(SourceRef::Component(index))
        }
    }
}

/// Push unless an identical component (kind + inputs) already exists —
/// the sharing rule applied to the event-driven hardware.
fn push_unique(components: &mut Vec<PlacedComponent>, component: PlacedComponent) -> usize {
    if let Some(i) = components
        .iter()
        .position(|c| c.kind == component.kind && c.inputs == component.inputs)
    {
        return i;
    }
    components.push(component);
    components.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use vase_vhif::Trigger;

    #[test]
    fn single_above_event_maps_to_zero_cross_detector() {
        // The paper's receiver: the "sophisticated" control FSM is one
        // zero-cross detector with a small hysteresis margin (§6).
        let mut fsm = Fsm::new("comp");
        let start = fsm.start();
        let s1 = fsm.add_state("s1");
        fsm.state_mut(s1).ops.push(DataOp::new("c1", DpExpr::Bit(true)));
        fsm.add_transition(
            start,
            s1,
            Trigger::AnyEvent(vec![Event::Above { quantity: "line".into(), threshold: 0.07 }]),
        );
        fsm.add_transition(s1, start, Trigger::Always);
        let comps = map_fsm(&fsm);
        assert_eq!(comps.len(), 1);
        match &comps[0].kind {
            ComponentKind::ZeroCrossDetector { level, hysteresis } => {
                assert_eq!(*level, 0.07);
                assert!(*hysteresis > 0.0);
            }
            other => panic!("expected zero-cross detector, got {other:?}"),
        }
    }

    #[test]
    fn two_levels_on_one_quantity_merge_into_schmitt() {
        // Function-generator style: ramp watched at two levels.
        let mut fsm = Fsm::new("ramp");
        let start = fsm.start();
        let s1 = fsm.add_state("up");
        let s2 = fsm.add_state("down");
        fsm.state_mut(s1).ops.push(DataOp::new("dir", DpExpr::Bit(true)));
        fsm.state_mut(s2).ops.push(DataOp::new("dir", DpExpr::Bit(false)));
        fsm.add_transition(
            start,
            s1,
            Trigger::AnyEvent(vec![
                Event::Above { quantity: "ramp".into(), threshold: -1.0 },
                Event::Above { quantity: "ramp".into(), threshold: 1.0 },
            ]),
        );
        fsm.add_transition(s1, start, Trigger::Always);
        fsm.add_transition(s2, start, Trigger::Always);
        fsm.add_transition(start, s2, Trigger::Guard(DpExpr::Bit(false)));
        let comps = map_fsm(&fsm);
        let schmitts: Vec<_> = comps
            .iter()
            .filter(|c| matches!(c.kind, ComponentKind::SchmittTrigger { .. }))
            .collect();
        assert_eq!(schmitts.len(), 1);
        match &schmitts[0].kind {
            ComponentKind::SchmittTrigger { low, high } => {
                assert_eq!((*low, *high), (-1.0, 1.0));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn sampled_quantity_maps_to_sample_hold_and_adc() {
        // Power-meter style acquisition: d <= adc(vsens).
        let mut fsm = Fsm::new("acq");
        let start = fsm.start();
        let s1 = fsm.add_state("sample");
        fsm.state_mut(s1).ops.push(DataOp::new(
            "dv",
            DpExpr::Adc(Box::new(DpExpr::Quantity("vsens".into()))),
        ));
        fsm.state_mut(s1).ops.push(DataOp::new(
            "di",
            DpExpr::Adc(Box::new(DpExpr::Quantity("isens".into()))),
        ));
        fsm.add_transition(
            start,
            s1,
            Trigger::AnyEvent(vec![Event::Above { quantity: "clk".into(), threshold: 0.5 }]),
        );
        fsm.add_transition(s1, start, Trigger::Always);
        let comps = map_fsm(&fsm);
        let count = |pred: &dyn Fn(&ComponentKind) -> bool| {
            comps.iter().filter(|c| pred(&c.kind)).count()
        };
        // 1 zero-cross (the clk event) + 2 S/H + 2 ADC — the power
        // meter's Table 1 component mix.
        assert_eq!(count(&|k| matches!(k, ComponentKind::SampleHold)), 2);
        assert_eq!(count(&|k| matches!(k, ComponentKind::Adc { .. })), 2);
        assert_eq!(count(&|k| matches!(k, ComponentKind::ZeroCrossDetector { .. })), 1);
    }

    #[test]
    fn bindings_attach_signals_to_single_detector() {
        let mut fsm = Fsm::new("comp");
        let start = fsm.start();
        let s1 = fsm.add_state("s1");
        fsm.state_mut(s1).ops.push(DataOp::new("c1", DpExpr::Bit(true)));
        fsm.add_transition(
            start,
            s1,
            Trigger::AnyEvent(vec![Event::Above { quantity: "line".into(), threshold: 0.07 }]),
        );
        fsm.add_transition(s1, start, Trigger::Always);
        let (comps, bindings) = map_fsm_with_bindings(&fsm);
        assert_eq!(comps.len(), 1);
        assert_eq!(bindings, vec![("c1".to_owned(), 0)]);
    }

    #[test]
    fn bit_assignments_cost_no_hardware() {
        let mut fsm = Fsm::new("set");
        let start = fsm.start();
        let s1 = fsm.add_state("s1");
        fsm.state_mut(s1).ops.push(DataOp::new("c", DpExpr::Bit(true)));
        fsm.add_transition(
            start,
            s1,
            Trigger::AnyEvent(vec![Event::SignalChange { signal: "go".into() }]),
        );
        fsm.add_transition(s1, start, Trigger::Always);
        let comps = map_fsm(&fsm);
        assert!(comps.is_empty(), "{comps:?}");
    }

    #[test]
    fn difference_in_datapath_maps_to_diff_amp() {
        let mut fsm = Fsm::new("dp");
        let start = fsm.start();
        let s1 = fsm.add_state("s1");
        fsm.state_mut(s1).ops.push(DataOp::new(
            "err",
            DpExpr::binary(
                DpBinaryOp::Sub,
                DpExpr::Quantity("a".into()),
                DpExpr::Quantity("b".into()),
            ),
        ));
        fsm.add_transition(
            start,
            s1,
            Trigger::AnyEvent(vec![Event::SignalChange { signal: "go".into() }]),
        );
        fsm.add_transition(s1, start, Trigger::Always);
        let comps = map_fsm(&fsm);
        assert!(comps
            .iter()
            .any(|c| matches!(c.kind, ComponentKind::DifferenceAmp { .. })));
    }

    #[test]
    fn repeated_sampling_shares_one_sample_hold() {
        let mut fsm = Fsm::new("dup");
        let start = fsm.start();
        let s1 = fsm.add_state("s1");
        // Same quantity sampled into the same target twice (re-trigger).
        fsm.state_mut(s1).ops.push(DataOp::new("v", DpExpr::Quantity("x".into())));
        let s2 = fsm.add_state("s2");
        fsm.state_mut(s2).ops.push(DataOp::new("v", DpExpr::Quantity("x".into())));
        fsm.add_transition(
            start,
            s1,
            Trigger::AnyEvent(vec![Event::SignalChange { signal: "go".into() }]),
        );
        fsm.add_transition(s1, s2, Trigger::Always);
        fsm.add_transition(s2, start, Trigger::Always);
        let comps = map_fsm(&fsm);
        let sh = comps.iter().filter(|c| matches!(c.kind, ComponentKind::SampleHold)).count();
        assert_eq!(sh, 1);
    }
}
