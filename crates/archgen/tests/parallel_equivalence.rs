//! Sequential/parallel equivalence of the branch-and-bound mapper.
//!
//! The parallel search must be a pure performance optimization: on any
//! graph it returns the same optimal area and op-amp count as the
//! sequential search, and the same input always yields the same area at
//! any worker count.

use proptest::prelude::*;
use vase_archgen::{map_graph, MapperConfig};
use vase_estimate::Estimator;
use vase_vhif::{BlockKind, SignalFlowGraph};

/// Strategy: a random layered combinational signal-flow graph with one
/// output (mirrors the workspace-level `arb_graph`).
fn arb_graph() -> impl Strategy<Value = SignalFlowGraph> {
    (
        1usize..4,                                                // inputs
        proptest::collection::vec((0u8..4, 0.25f64..8.0), 1..10), // ops
    )
        .prop_map(|(n_inputs, ops)| {
            let mut g = SignalFlowGraph::new("random");
            let mut pool = Vec::new();
            for i in 0..n_inputs {
                pool.push(g.add(BlockKind::Input {
                    name: format!("in{i}"),
                }));
            }
            for (i, (op, gain)) in ops.into_iter().enumerate() {
                let a = pool[i % pool.len()];
                let b = pool[(i * 7 + 1) % pool.len()];
                let id = match op {
                    0 => {
                        let id = g.add(BlockKind::Scale { gain });
                        g.connect(a, id, 0).expect("wire");
                        id
                    }
                    1 => {
                        let id = g.add(BlockKind::Add { arity: 2 });
                        g.connect(a, id, 0).expect("wire");
                        g.connect(b, id, 1).expect("wire");
                        id
                    }
                    2 => {
                        let id = g.add(BlockKind::Sub);
                        g.connect(a, id, 0).expect("wire");
                        g.connect(b, id, 1).expect("wire");
                        id
                    }
                    _ => {
                        let id = g.add(BlockKind::Mul);
                        g.connect(a, id, 0).expect("wire");
                        g.connect(b, id, 1).expect("wire");
                        id
                    }
                };
                pool.push(id);
            }
            let out = g.add(BlockKind::Output { name: "y".into() });
            let last = *pool.last().expect("nonempty");
            g.connect(last, out, 0).expect("wire");
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Sequential and parallel searches agree on the optimal area and
    /// op-amp count on random graphs, at every worker count.
    #[test]
    fn parallel_matches_sequential_optimum(g in arb_graph(), workers in 2usize..6) {
        let estimator = Estimator::default();
        let seq = map_graph(&g, &estimator, &MapperConfig::default());
        let config = MapperConfig { parallelism: workers, ..MapperConfig::default() };
        let par = map_graph(&g, &estimator, &config);
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                prop_assert_eq!(
                    s.netlist.opamp_count(),
                    p.netlist.opamp_count(),
                    "workers={}", workers
                );
                prop_assert!(
                    (s.estimate.area_m2 - p.estimate.area_m2).abs()
                        <= s.estimate.area_m2 * 1e-9,
                    "workers={}: {} vs {}", workers, s.estimate.area_m2, p.estimate.area_m2
                );
                p.netlist.validate().expect("valid netlist");
            }
            (Err(s), Err(p)) => prop_assert_eq!(s, p),
            (s, p) => prop_assert!(false, "disagreement: {s:?} vs {p:?}"),
        }
    }

    /// The same input yields the same area on repeated parallel runs
    /// (worker scheduling must not leak into the result).
    #[test]
    fn parallel_area_is_deterministic(g in arb_graph(), workers in 2usize..5) {
        let estimator = Estimator::default();
        let config = MapperConfig { parallelism: workers, ..MapperConfig::default() };
        let first = map_graph(&g, &estimator, &config);
        let second = map_graph(&g, &estimator, &config);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.netlist.opamp_count(), b.netlist.opamp_count());
                prop_assert!(
                    (a.estimate.area_m2 - b.estimate.area_m2).abs()
                        <= a.estimate.area_m2 * 1e-12,
                    "{} vs {}", a.estimate.area_m2, b.estimate.area_m2
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "nondeterministic: {a:?} vs {b:?}"),
        }
    }
}
