//! Sequential/parallel equivalence of the branch-and-bound mapper.
//!
//! The parallel search must be a pure performance optimization: on any
//! graph it returns the same optimal area and op-amp count as the
//! sequential search, and the same input always yields the same area at
//! any worker count.
//!
//! Randomized graphs come from a seed-driven generator (a SplitMix64
//! stream) instead of proptest, which is unavailable in the offline
//! build environment; every case is reproducible from its printed seed.

use vase_archgen::{
    map_graph, map_graph_with_cache, Budget, CoverCache, MapperConfig, SearchStrategy,
};
use vase_estimate::Estimator;
use vase_vhif::{BlockKind, SignalFlowGraph};

/// SplitMix64 step: deterministic, well-mixed, dependency-free.
fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random layered combinational signal-flow graph with one output
/// (mirrors the workspace-level `arb_graph`): 1-3 inputs, 1-9 ops drawn
/// from Scale/Add/Sub/Mul with deterministic wiring.
fn random_graph(seed: u64) -> SignalFlowGraph {
    let mut state = seed;
    let n_inputs = 1 + (split_mix(&mut state) % 3) as usize;
    let n_ops = 1 + (split_mix(&mut state) % 9) as usize;
    let mut g = SignalFlowGraph::new("random");
    let mut pool = Vec::new();
    for i in 0..n_inputs {
        pool.push(g.add(BlockKind::Input { name: format!("in{i}") }));
    }
    for i in 0..n_ops {
        let op = (split_mix(&mut state) % 4) as u8;
        let unit = (split_mix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        let gain = 0.25 + unit * (8.0 - 0.25);
        let a = pool[i % pool.len()];
        let b = pool[(i * 7 + 1) % pool.len()];
        let id = match op {
            0 => {
                let id = g.add(BlockKind::Scale { gain });
                g.connect(a, id, 0).expect("wire");
                id
            }
            1 => {
                let id = g.add(BlockKind::Add { arity: 2 });
                g.connect(a, id, 0).expect("wire");
                g.connect(b, id, 1).expect("wire");
                id
            }
            2 => {
                let id = g.add(BlockKind::Sub);
                g.connect(a, id, 0).expect("wire");
                g.connect(b, id, 1).expect("wire");
                id
            }
            _ => {
                let id = g.add(BlockKind::Mul);
                g.connect(a, id, 0).expect("wire");
                g.connect(b, id, 1).expect("wire");
                id
            }
        };
        pool.push(id);
    }
    let out = g.add(BlockKind::Output { name: "y".into() });
    let last = *pool.last().expect("nonempty");
    g.connect(last, out, 0).expect("wire");
    g
}

/// Sequential and parallel searches agree on the optimal area and
/// op-amp count on random graphs, at every worker count.
#[test]
fn parallel_matches_sequential_optimum() {
    for case in 0u64..48 {
        let seed = 0xa11e_9001u64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let g = random_graph(seed);
        let workers = 2 + (case % 4) as usize; // 2..=5
        let estimator = Estimator::default();
        let seq = map_graph(&g, &estimator, &MapperConfig::default());
        let config = MapperConfig { parallelism: workers, ..MapperConfig::default() };
        let par = map_graph(&g, &estimator, &config);
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.netlist.opamp_count(),
                    p.netlist.opamp_count(),
                    "seed={seed:#x} workers={workers}"
                );
                assert!(
                    (s.estimate.area_m2 - p.estimate.area_m2).abs()
                        <= s.estimate.area_m2 * 1e-9,
                    "seed={seed:#x} workers={workers}: {} vs {}",
                    s.estimate.area_m2,
                    p.estimate.area_m2
                );
                p.netlist.validate().expect("valid netlist");
            }
            (Err(s), Err(p)) => assert_eq!(s, p, "seed={seed:#x}"),
            (s, p) => panic!("seed={seed:#x}: disagreement: {s:?} vs {p:?}"),
        }
    }
}

/// The same input yields the same area on repeated parallel runs
/// (worker scheduling must not leak into the result).
#[test]
fn parallel_area_is_deterministic() {
    for case in 0u64..24 {
        let seed = 0xde7e_c7edu64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let g = random_graph(seed);
        let workers = 2 + (case % 3) as usize; // 2..=4
        let estimator = Estimator::default();
        let config = MapperConfig { parallelism: workers, ..MapperConfig::default() };
        let first = map_graph(&g, &estimator, &config);
        let second = map_graph(&g, &estimator, &config);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.netlist.opamp_count(),
                    b.netlist.opamp_count(),
                    "seed={seed:#x}"
                );
                assert!(
                    (a.estimate.area_m2 - b.estimate.area_m2).abs()
                        <= a.estimate.area_m2 * 1e-12,
                    "seed={seed:#x}: {} vs {}",
                    a.estimate.area_m2,
                    b.estimate.area_m2
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "seed={seed:#x}"),
            (a, b) => panic!("seed={seed:#x}: nondeterministic: {a:?} vs {b:?}"),
        }
    }
}

/// Under the same tight node budget, the sequential and parallel
/// mappers both report exhaustion, and both incumbents are valid,
/// feasible netlists — the anytime contract holds at every worker
/// count.
#[test]
fn budget_exhaustion_is_reported_consistently_across_worker_counts() {
    for case in 0u64..16 {
        let seed = 0xb0d6_e7edu64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let g = random_graph(seed);
        let estimator = Estimator::default();
        // Only graphs whose full search needs clearly more than the
        // budget make exhaustion certain at every worker count; tiny
        // graphs can complete inside any nonzero budget.
        let full = map_graph(&g, &estimator, &MapperConfig::default()).expect("maps");
        if full.stats.nodes_explored() <= 8 {
            continue;
        }
        let budget = Budget::nodes(2);
        for workers in [1usize, 2, 4] {
            let config = MapperConfig { parallelism: workers, budget, ..MapperConfig::default() };
            let result = map_graph(&g, &estimator, &config)
                .unwrap_or_else(|e| panic!("seed={seed:#x} workers={workers}: {e}"));
            assert!(
                result.stats.budget_exhausted,
                "seed={seed:#x} workers={workers}: a 2-node budget must exhaust"
            );
            assert!(
                result.stats.nodes_explored() >= 1,
                "seed={seed:#x} workers={workers}: exhaustion still explores"
            );
            result.netlist.validate().unwrap_or_else(|e| {
                panic!("seed={seed:#x} workers={workers}: incumbent invalid: {e}")
            });
        }
    }
}

/// Budget-exhausted incumbents are deterministic per worker count and
/// never worse than the greedy seed they start from.
#[test]
fn budgeted_incumbent_is_deterministic() {
    for case in 0u64..12 {
        let seed = 0x1ac5_eed5u64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let g = random_graph(seed);
        let estimator = Estimator::default();
        let config = MapperConfig { budget: Budget::nodes(8), ..MapperConfig::default() };
        let a = map_graph(&g, &estimator, &config).expect("maps");
        let b = map_graph(&g, &estimator, &config).expect("maps");
        assert_eq!(a.netlist.opamp_count(), b.netlist.opamp_count(), "seed={seed:#x}");
        assert!(
            (a.estimate.area_m2 - b.estimate.area_m2).abs() <= a.estimate.area_m2 * 1e-12,
            "seed={seed:#x}: {} vs {}",
            a.estimate.area_m2,
            b.estimate.area_m2
        );
    }
}

/// The model-guided best-first search run to completion returns the
/// bit-identical netlist of the exact depth-first search on every
/// random graph — not just the same cost, the same architecture.
#[test]
fn guided_matches_exact_bitwise_on_random_graphs() {
    for case in 0u64..48 {
        let seed = 0xa11e_9001u64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let g = random_graph(seed);
        let estimator = Estimator::default();
        let exact = map_graph(&g, &estimator, &MapperConfig::default());
        let guided_config = MapperConfig {
            strategy: SearchStrategy::Guided,
            ..MapperConfig::default()
        };
        let guided = map_graph(&g, &estimator, &guided_config);
        match (exact, guided) {
            (Ok(e), Ok(u)) => {
                assert_eq!(e.netlist, u.netlist, "seed={seed:#x}: netlists diverge");
                assert_eq!(
                    e.estimate.area_m2.to_bits(),
                    u.estimate.area_m2.to_bits(),
                    "seed={seed:#x}: area not bit-identical"
                );
            }
            (Err(e), Err(u)) => assert_eq!(e, u, "seed={seed:#x}"),
            (e, u) => panic!("seed={seed:#x}: disagreement: {e:?} vs {u:?}"),
        }
    }
}

/// A warm cover-cache lookup replays the bit-identical netlist of the
/// cold search that populated it, reports the hit, and explores zero
/// nodes — under both search strategies.
#[test]
fn warm_cache_replays_cold_search_bitwise() {
    for case in 0u64..24 {
        let seed = 0xa11e_9001u64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let g = random_graph(seed);
        let estimator = Estimator::default();
        for strategy in [SearchStrategy::Exact, SearchStrategy::Guided] {
            let config = MapperConfig { strategy, ..MapperConfig::default() };
            let cache = CoverCache::new();
            let cold = match map_graph_with_cache(&g, &estimator, &config, &cache) {
                Ok(r) => r,
                // Unmappable graphs must fail identically warm or cold.
                Err(e) => {
                    let again = map_graph_with_cache(&g, &estimator, &config, &cache);
                    assert_eq!(again.expect_err("still fails"), e, "seed={seed:#x}");
                    continue;
                }
            };
            assert_eq!(cold.stats.cache_hits, 0, "seed={seed:#x} {strategy:?}");
            assert_eq!(cold.stats.cache_misses, 1, "seed={seed:#x} {strategy:?}");
            let warm = map_graph_with_cache(&g, &estimator, &config, &cache)
                .unwrap_or_else(|e| panic!("seed={seed:#x} {strategy:?}: warm run failed: {e}"));
            assert_eq!(warm.stats.cache_hits, 1, "seed={seed:#x} {strategy:?}: no hit");
            assert_eq!(
                warm.stats.visited_nodes, 0,
                "seed={seed:#x} {strategy:?}: warm hit explored nodes"
            );
            assert_eq!(warm.netlist, cold.netlist, "seed={seed:#x} {strategy:?}");
            assert_eq!(
                warm.estimate.area_m2.to_bits(),
                cold.estimate.area_m2.to_bits(),
                "seed={seed:#x} {strategy:?}"
            );
        }
    }
}

/// An unlimited budget must not change results: with and without the
/// (default) unlimited budget the mapper finds the same optimum and
/// never reports exhaustion.
#[test]
fn unlimited_budget_matches_seed_behavior() {
    for case in 0u64..12 {
        let seed = 0x5eed_0000u64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let g = random_graph(seed);
        let estimator = Estimator::default();
        let base = map_graph(&g, &estimator, &MapperConfig::default()).expect("maps");
        let explicit = MapperConfig { budget: Budget::unlimited(), ..MapperConfig::default() };
        let with_budget = map_graph(&g, &estimator, &explicit).expect("maps");
        assert!(!base.stats.budget_exhausted, "seed={seed:#x}");
        assert!(!with_budget.stats.budget_exhausted, "seed={seed:#x}");
        assert_eq!(
            base.netlist.opamp_count(),
            with_budget.netlist.opamp_count(),
            "seed={seed:#x}"
        );
        assert!(
            (base.estimate.area_m2 - with_budget.estimate.area_m2).abs()
                <= base.estimate.area_m2 * 1e-12,
            "seed={seed:#x}"
        );
    }
}
