//! Sequential/parallel equivalence of the branch-and-bound mapper.
//!
//! The parallel search must be a pure performance optimization: on any
//! graph it returns the same optimal area and op-amp count as the
//! sequential search, and the same input always yields the same area at
//! any worker count.
//!
//! Randomized graphs come from a seed-driven generator (a SplitMix64
//! stream) instead of proptest, which is unavailable in the offline
//! build environment; every case is reproducible from its printed seed.

use vase_archgen::{map_graph, MapperConfig};
use vase_estimate::Estimator;
use vase_vhif::{BlockKind, SignalFlowGraph};

/// SplitMix64 step: deterministic, well-mixed, dependency-free.
fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random layered combinational signal-flow graph with one output
/// (mirrors the workspace-level `arb_graph`): 1-3 inputs, 1-9 ops drawn
/// from Scale/Add/Sub/Mul with deterministic wiring.
fn random_graph(seed: u64) -> SignalFlowGraph {
    let mut state = seed;
    let n_inputs = 1 + (split_mix(&mut state) % 3) as usize;
    let n_ops = 1 + (split_mix(&mut state) % 9) as usize;
    let mut g = SignalFlowGraph::new("random");
    let mut pool = Vec::new();
    for i in 0..n_inputs {
        pool.push(g.add(BlockKind::Input { name: format!("in{i}") }));
    }
    for i in 0..n_ops {
        let op = (split_mix(&mut state) % 4) as u8;
        let unit = (split_mix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        let gain = 0.25 + unit * (8.0 - 0.25);
        let a = pool[i % pool.len()];
        let b = pool[(i * 7 + 1) % pool.len()];
        let id = match op {
            0 => {
                let id = g.add(BlockKind::Scale { gain });
                g.connect(a, id, 0).expect("wire");
                id
            }
            1 => {
                let id = g.add(BlockKind::Add { arity: 2 });
                g.connect(a, id, 0).expect("wire");
                g.connect(b, id, 1).expect("wire");
                id
            }
            2 => {
                let id = g.add(BlockKind::Sub);
                g.connect(a, id, 0).expect("wire");
                g.connect(b, id, 1).expect("wire");
                id
            }
            _ => {
                let id = g.add(BlockKind::Mul);
                g.connect(a, id, 0).expect("wire");
                g.connect(b, id, 1).expect("wire");
                id
            }
        };
        pool.push(id);
    }
    let out = g.add(BlockKind::Output { name: "y".into() });
    let last = *pool.last().expect("nonempty");
    g.connect(last, out, 0).expect("wire");
    g
}

/// Sequential and parallel searches agree on the optimal area and
/// op-amp count on random graphs, at every worker count.
#[test]
fn parallel_matches_sequential_optimum() {
    for case in 0u64..48 {
        let seed = 0xa11e_9001u64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let g = random_graph(seed);
        let workers = 2 + (case % 4) as usize; // 2..=5
        let estimator = Estimator::default();
        let seq = map_graph(&g, &estimator, &MapperConfig::default());
        let config = MapperConfig { parallelism: workers, ..MapperConfig::default() };
        let par = map_graph(&g, &estimator, &config);
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.netlist.opamp_count(),
                    p.netlist.opamp_count(),
                    "seed={seed:#x} workers={workers}"
                );
                assert!(
                    (s.estimate.area_m2 - p.estimate.area_m2).abs()
                        <= s.estimate.area_m2 * 1e-9,
                    "seed={seed:#x} workers={workers}: {} vs {}",
                    s.estimate.area_m2,
                    p.estimate.area_m2
                );
                p.netlist.validate().expect("valid netlist");
            }
            (Err(s), Err(p)) => assert_eq!(s, p, "seed={seed:#x}"),
            (s, p) => panic!("seed={seed:#x}: disagreement: {s:?} vs {p:?}"),
        }
    }
}

/// The same input yields the same area on repeated parallel runs
/// (worker scheduling must not leak into the result).
#[test]
fn parallel_area_is_deterministic() {
    for case in 0u64..24 {
        let seed = 0xde7e_c7edu64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let g = random_graph(seed);
        let workers = 2 + (case % 3) as usize; // 2..=4
        let estimator = Estimator::default();
        let config = MapperConfig { parallelism: workers, ..MapperConfig::default() };
        let first = map_graph(&g, &estimator, &config);
        let second = map_graph(&g, &estimator, &config);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.netlist.opamp_count(),
                    b.netlist.opamp_count(),
                    "seed={seed:#x}"
                );
                assert!(
                    (a.estimate.area_m2 - b.estimate.area_m2).abs()
                        <= a.estimate.area_m2 * 1e-12,
                    "seed={seed:#x}: {} vs {}",
                    a.estimate.area_m2,
                    b.estimate.area_m2
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "seed={seed:#x}"),
            (a, b) => panic!("seed={seed:#x}: nondeterministic: {a:?} vs {b:?}"),
        }
    }
}
