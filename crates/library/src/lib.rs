//! # vase-library
//!
//! The op-amp-level analog component library and VHIF pattern catalog
//! of the VASE behavioral-synthesis environment (Doboli & Vemuri, DATE
//! 1999). This crate reproduces the role of the CMOS analog cell
//! library of Campisi \[7\] the paper maps onto:
//!
//! * [`ComponentKind`] — the library circuits (amplifiers, integrators,
//!   log/antilog amps, comparators, S/H, switches, ADCs, output
//!   stages, ...), each with its op-amp and passive budget;
//! * [`PatternMatch`] / [`matches_at`] — the pattern library relating
//!   VHIF block-structures to components (paper Fig. 6b), including the
//!   functional transformations of the branching rule (gain splitting,
//!   inverting-pair substitution, log/antilog multiplier recognition);
//! * [`Netlist`] — the mapped op-amp-level netlist, with the
//!   across-path sharing query used by the mapper.
//!
//! # Examples
//!
//! ```
//! use vase_library::{matches_at, ComponentKind, MatchOptions};
//! use vase_vhif::{BlockKind, SignalFlowGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 0.5·a + 0.25·b matches ONE summing amplifier (3 blocks → 1 op amp).
//! let mut g = SignalFlowGraph::new("sum");
//! let a = g.add(BlockKind::Input { name: "a".into() });
//! let b = g.add(BlockKind::Input { name: "b".into() });
//! let s1 = g.add(BlockKind::Scale { gain: 0.5 });
//! let s2 = g.add(BlockKind::Scale { gain: 0.25 });
//! let add = g.add(BlockKind::Add { arity: 2 });
//! g.connect(a, s1, 0)?;
//! g.connect(b, s2, 0)?;
//! g.connect(s1, add, 0)?;
//! g.connect(s2, add, 1)?;
//! let ms = matches_at(&g, add, &MatchOptions::default());
//! assert!(matches!(ms[0].kind, ComponentKind::SummingAmp { .. }));
//! assert_eq!(ms[0].covered.len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod component;
pub mod netlist;
pub mod pattern;
pub mod spice;

pub use component::ComponentKind;
pub use netlist::{Netlist, PlacedComponent, SourceRef};
pub use pattern::{
    matches_at, matches_at_calls_on_thread, MatchCache, MatchOptions, PatternMatch,
    GAIN_SPLIT_THRESHOLD,
};
pub use spice::to_spice;
