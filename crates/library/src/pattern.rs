//! The pattern library: relates VHIF block-structures to electronic
//! circuits in the component library (paper Section 5, Fig. 6b).
//!
//! [`matches_at`] enumerates every way a sub-graph ending at a given
//! output block can be implemented by ONE library component — the
//! mapper's *branching rule* generates one branch per returned match.
//! Matches are returned in decreasing order of covered-block count (the
//! *sequencing rule*: alternatives that map more blocks to one
//! component are visited first).

use serde::{Deserialize, Serialize};
use vase_vhif::{BlockId, BlockKind, SignalFlowGraph};

use crate::component::ComponentKind;

/// Controls which pattern families the matcher may use (the ablation
/// switches of the benchmark harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchOptions {
    /// Allow multi-block patterns (sub-graph → one component). With
    /// this off every block maps to its own component.
    pub multi_block: bool,
    /// Allow functional transformations (gain splitting, log/antilog
    /// multiplier recognition, inverting-pair alternatives).
    pub transforms: bool,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            multi_block: true,
            transforms: true,
        }
    }
}

/// One way to implement a sub-graph with a single library component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternMatch {
    /// The covered blocks (sorted). The mapper marks these as
    /// implemented by the allocated component.
    pub covered: Vec<BlockId>,
    /// Driver blocks outside the covered set, in component input-port
    /// order (data inputs first, control input last when present).
    pub inputs: Vec<BlockId>,
    /// The implementing component.
    pub kind: ComponentKind,
    /// Whether a functional transformation produced this alternative.
    pub transformed: bool,
}

impl PatternMatch {
    fn new(mut covered: Vec<BlockId>, inputs: Vec<BlockId>, kind: ComponentKind) -> Self {
        covered.sort();
        covered.dedup();
        PatternMatch {
            covered,
            inputs,
            kind,
            transformed: false,
        }
    }

    fn transformed(mut self) -> Self {
        self.transformed = true;
        self
    }
}

/// Gain magnitude above which the gain-splitting functional
/// transformation offers a two-stage alternative (bandwidth: each
/// closed-loop stage keeps more of the op amp's GBW).
pub const GAIN_SPLIT_THRESHOLD: f64 = 20.0;

thread_local! {
    static MATCHES_AT_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The number of [`matches_at`] invocations made *by the current
/// thread* since it started — a diagnostic counter used to verify that
/// match caching keeps the matcher off the mapper's hot path (at most
/// one invocation per block per mapping run).
pub fn matches_at_calls_on_thread() -> u64 {
    MATCHES_AT_CALLS.with(|c| c.get())
}

/// Precomputed pattern matches for every block of one graph.
///
/// The structural matcher is pure — for a fixed graph and
/// [`MatchOptions`] the alternatives at a block never change — so the
/// mapper builds this cache once per run and every decision-tree node
/// reads from it instead of re-running [`matches_at`].
#[derive(Debug, Clone, Default)]
pub struct MatchCache {
    matches: Vec<Vec<PatternMatch>>,
}

impl MatchCache {
    /// Run the matcher exactly once over every block of `g`.
    pub fn build(g: &SignalFlowGraph, opts: &MatchOptions) -> Self {
        MatchCache {
            matches: (0..g.len())
                .map(|i| matches_at(g, BlockId::from_index(i), opts))
                .collect(),
        }
    }

    /// All library matches ending at `b`, largest cover first (the
    /// same order [`matches_at`] returns).
    pub fn at(&self, b: BlockId) -> &[PatternMatch] {
        &self.matches[b.index()]
    }

    /// Number of blocks the cache was built over.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// Whether the cache covers no blocks at all.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }
}

/// Enumerate all library matches for the sub-graphs whose output block
/// is `out`, largest first.
///
/// Interface blocks (inputs/outputs) never match — they become external
/// nets. A multi-block match is only legal if every *interior* covered
/// block feeds nothing outside the covered set (its value would
/// otherwise be unavailable to the rest of the design).
pub fn matches_at(g: &SignalFlowGraph, out: BlockId, opts: &MatchOptions) -> Vec<PatternMatch> {
    MATCHES_AT_CALLS.with(|c| c.set(c.get() + 1));
    let mut matches = Vec::new();
    match g.kind(out).clone() {
        BlockKind::Input { .. } | BlockKind::Output { .. } | BlockKind::ControlInput { .. } => {}
        BlockKind::Const { value } => {
            matches.push(PatternMatch::new(
                vec![out],
                vec![],
                ComponentKind::VoltageRef { level: value },
            ));
        }
        BlockKind::Scale { gain } => match_scale(g, out, gain, opts, &mut matches),
        BlockKind::Add { .. } => match_add(g, out, 1.0, vec![out], opts, &mut matches),
        BlockKind::Sub => {
            let ins = dataful(g, out);
            matches.push(PatternMatch::new(
                vec![out],
                ins,
                ComponentKind::DifferenceAmp { gain: 1.0 },
            ));
        }
        BlockKind::Mul => match_mul(g, out, opts, &mut matches),
        BlockKind::Div => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::Divider,
            ));
        }
        BlockKind::Integrate { gain, initial } => {
            match_integrate(g, out, gain, initial, opts, &mut matches)
        }
        BlockKind::Differentiate { gain } => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::Differentiator { gain },
            ));
        }
        BlockKind::Log => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::LogAmp,
            ));
        }
        BlockKind::Antilog => match_antilog(g, out, opts, &mut matches),
        BlockKind::Abs => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::PrecisionRectifier,
            ));
        }
        BlockKind::SampleHold => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::SampleHold,
            ));
        }
        BlockKind::Switch => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::AnalogSwitch,
            ));
        }
        BlockKind::Mux { arity } => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::AnalogMux { inputs: arity },
            ));
        }
        BlockKind::Comparator { threshold } => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::ZeroCrossDetector {
                    level: threshold,
                    hysteresis: 0.0,
                },
            ));
        }
        BlockKind::SchmittTrigger { low, high } => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::SchmittTrigger { low, high },
            ));
        }
        BlockKind::Adc { bits } => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::Adc { bits },
            ));
        }
        BlockKind::Limiter { level } => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::Limiter { level },
            ));
        }
        BlockKind::OutputStage {
            load_ohms,
            peak_volts,
            limit,
        } => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::OutputStage {
                    load_ohms,
                    peak_volts,
                    limit,
                },
            ));
        }
        BlockKind::Memory => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::MemoryCell,
            ));
        }
        BlockKind::Logic { .. } => {
            matches.push(PatternMatch::new(
                vec![out],
                dataful(g, out),
                ComponentKind::LogicGate,
            ));
        }
    }
    matches.retain(|m| interior_ok(g, m));
    matches.sort_by_key(|m| std::cmp::Reverse(m.covered.len()));
    matches
}

/// The (driven) input blocks of `b`, in port order.
fn dataful(g: &SignalFlowGraph, b: BlockId) -> Vec<BlockId> {
    g.block_inputs(b)
        .iter()
        .map(|d| d.expect("validated graph"))
        .collect()
}

/// A multi-block match is legal only when interior covered blocks feed
/// nothing outside the covered set.
fn interior_ok(g: &SignalFlowGraph, m: &PatternMatch) -> bool {
    let out = *m
        .covered
        .iter()
        .max_by_key(|_| 0usize)
        .unwrap_or(&m.covered[0]);
    // `out` is whichever covered block has consumers outside; exactly
    // one such block is allowed. All others must be fully consumed
    // inside the cover.
    let mut external_outputs = 0;
    for &b in &m.covered {
        let escapes = g
            .fanout(b)
            .iter()
            .any(|(consumer, _)| !m.covered.contains(consumer));
        if escapes {
            external_outputs += 1;
        }
    }
    let _ = out;
    external_outputs <= 1
}

fn match_scale(
    g: &SignalFlowGraph,
    out: BlockId,
    gain: f64,
    opts: &MatchOptions,
    matches: &mut Vec<PatternMatch>,
) {
    let input = dataful(g, out)[0];
    if opts.multi_block {
        match g.kind(input).clone() {
            // Scale∘Scale → one amplifier with the product gain
            // (along-path sharing).
            BlockKind::Scale { gain: inner } => {
                let src = dataful(g, input)[0];
                matches.push(PatternMatch::new(
                    vec![out, input],
                    vec![src],
                    amp_for_gain(gain * inner),
                ));
            }
            // Scale∘Add → weighted summing amplifier with folded gain.
            BlockKind::Add { .. } => {
                match_add(g, input, gain, vec![out, input], opts, matches);
            }
            // Scale∘Integrate → integrator with gain.
            BlockKind::Integrate {
                gain: igain,
                initial,
            } => {
                let src = dataful(g, input)[0];
                matches.push(PatternMatch::new(
                    vec![out, input],
                    vec![src],
                    ComponentKind::Integrator {
                        weights: vec![gain * igain],
                        initial,
                    },
                ));
            }
            _ => {}
        }
    }
    // Single-block fallback.
    matches.push(PatternMatch::new(
        vec![out],
        vec![input],
        amp_for_gain(gain),
    ));
    // Functional transformations.
    if opts.transforms {
        if gain.abs() >= GAIN_SPLIT_THRESHOLD {
            let s = gain.abs().sqrt();
            let stage_gains = if gain < 0.0 { vec![-s, s] } else { vec![s, s] };
            matches.push(
                PatternMatch::new(
                    vec![out],
                    vec![input],
                    ComponentKind::AmplifierChain { stage_gains },
                )
                .transformed(),
            );
        }
        if gain > 0.0 {
            // Two inverting amplifiers substituted for a non-inverting
            // one (paper's second functional transformation example).
            matches.push(
                PatternMatch::new(
                    vec![out],
                    vec![input],
                    ComponentKind::AmplifierChain {
                        stage_gains: vec![-gain, -1.0],
                    },
                )
                .transformed(),
            );
        }
    }
}

fn amp_for_gain(gain: f64) -> ComponentKind {
    if (gain - 1.0).abs() < 1e-12 {
        ComponentKind::Follower
    } else if gain < 0.0 {
        ComponentKind::InvertingAmp { gain }
    } else {
        ComponentKind::NonInvertingAmp { gain }
    }
}

/// Match an adder rooted at `add`, folding `Scale` children into
/// weights; `outer_gain` scales every weight (for `Scale∘Add` covers).
/// Emits both the fully-folded match and (when reachable directly) the
/// adder-alone match.
fn match_add(
    g: &SignalFlowGraph,
    add: BlockId,
    outer_gain: f64,
    base_cover: Vec<BlockId>,
    opts: &MatchOptions,
    matches: &mut Vec<PatternMatch>,
) {
    let children = dataful(g, add);
    if opts.multi_block {
        let mut covered = base_cover.clone();
        let mut weights = Vec::new();
        let mut inputs = Vec::new();
        for &child in &children {
            match g.kind(child) {
                BlockKind::Scale { gain } => {
                    covered.push(child);
                    weights.push(outer_gain * gain);
                    inputs.push(dataful(g, child)[0]);
                }
                _ => {
                    weights.push(outer_gain);
                    inputs.push(child);
                }
            }
        }
        if covered.len() > base_cover.len() || base_cover.len() > 1 {
            matches.push(PatternMatch::new(
                covered,
                inputs,
                ComponentKind::SummingAmp { weights },
            ));
        }
    }
    if base_cover.len() == 1 {
        // Adder alone (unit weights).
        matches.push(PatternMatch::new(
            base_cover,
            children.clone(),
            ComponentKind::SummingAmp {
                weights: vec![outer_gain; children.len()],
            },
        ));
    }
}

/// Multiplier patterns: `signal × Mux(constants)` is a switched-gain
/// amplifier (how the paper's receiver realizes `(...) * rvar` in one
/// op amp); otherwise a four-quadrant multiplier.
fn match_mul(
    g: &SignalFlowGraph,
    out: BlockId,
    opts: &MatchOptions,
    matches: &mut Vec<PatternMatch>,
) {
    let ins = dataful(g, out);
    if opts.multi_block {
        for (mux_side, sig_side) in [(ins[0], ins[1]), (ins[1], ins[0])] {
            if let BlockKind::Mux { arity } = g.kind(mux_side) {
                let mux_ins = dataful(g, mux_side);
                let data = &mux_ins[..*arity];
                let select = mux_ins[*arity];
                let gains: Option<Vec<f64>> = data
                    .iter()
                    .map(|&d| match g.kind(d) {
                        BlockKind::Const { value } => Some(*value),
                        _ => None,
                    })
                    .collect();
                if let Some(gains) = gains {
                    let mut covered = vec![out, mux_side];
                    covered.extend_from_slice(data);
                    matches.push(PatternMatch::new(
                        covered,
                        vec![sig_side, select],
                        ComponentKind::SwitchedGainAmp { gains },
                    ));
                }
            }
        }
    }
    matches.push(PatternMatch::new(vec![out], ins, ComponentKind::Multiplier));
}

fn match_integrate(
    g: &SignalFlowGraph,
    out: BlockId,
    gain: f64,
    initial: f64,
    opts: &MatchOptions,
    matches: &mut Vec<PatternMatch>,
) {
    let input = dataful(g, out)[0];
    if opts.multi_block {
        match g.kind(input).clone() {
            // Summing integrator: Integrate∘Add(±Scale…) in one op amp.
            BlockKind::Add { .. } => {
                let children = dataful(g, input);
                let mut covered = vec![out, input];
                let mut weights = Vec::new();
                let mut inputs = Vec::new();
                for &child in &children {
                    match g.kind(child) {
                        BlockKind::Scale { gain: w } => {
                            covered.push(child);
                            weights.push(gain * w);
                            inputs.push(dataful(g, child)[0]);
                        }
                        _ => {
                            weights.push(gain);
                            inputs.push(child);
                        }
                    }
                }
                matches.push(PatternMatch::new(
                    covered,
                    inputs,
                    ComponentKind::Integrator { weights, initial },
                ));
            }
            // Integrate∘Scale → integrator with folded gain.
            BlockKind::Scale { gain: w } => {
                let src = dataful(g, input)[0];
                matches.push(PatternMatch::new(
                    vec![out, input],
                    vec![src],
                    ComponentKind::Integrator {
                        weights: vec![gain * w],
                        initial,
                    },
                ));
            }
            // Integrate∘Sub → two-input integrator (+w, -w).
            BlockKind::Sub => {
                let srcs = dataful(g, input);
                matches.push(PatternMatch::new(
                    vec![out, input],
                    srcs,
                    ComponentKind::Integrator {
                        weights: vec![gain, -gain],
                        initial,
                    },
                ));
            }
            _ => {}
        }
    }
    matches.push(PatternMatch::new(
        vec![out],
        vec![input],
        ComponentKind::Integrator {
            weights: vec![gain],
            initial,
        },
    ));
}

/// `Antilog∘Add(Log, Log)` is a log-antilog multiplier (functional
/// transformation recognizing the identity `x·y = exp(ln x + ln y)`).
fn match_antilog(
    g: &SignalFlowGraph,
    out: BlockId,
    opts: &MatchOptions,
    matches: &mut Vec<PatternMatch>,
) {
    let input = dataful(g, out)[0];
    if opts.multi_block && opts.transforms {
        if let BlockKind::Add { arity: 2 } = g.kind(input) {
            let children = dataful(g, input);
            if children
                .iter()
                .all(|&c| matches!(g.kind(c), BlockKind::Log))
            {
                let srcs: Vec<BlockId> = children.iter().map(|&c| dataful(g, c)[0]).collect();
                let mut covered = vec![out, input];
                covered.extend_from_slice(&children);
                matches.push(
                    PatternMatch::new(covered, srcs, ComponentKind::Multiplier).transformed(),
                );
            }
        }
    }
    matches.push(PatternMatch::new(
        vec![out],
        vec![input],
        ComponentKind::AntilogAmp,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn receiver_like_graph() -> (SignalFlowGraph, BlockId, BlockId) {
        // earph = (0.5*line + 0.25*local) * mux(c1 ? 220 : 550)
        let mut g = SignalFlowGraph::new("rx");
        let line = g.add(BlockKind::Input {
            name: "line".into(),
        });
        let local = g.add(BlockKind::Input {
            name: "local".into(),
        });
        let s1 = g.add(BlockKind::Scale { gain: 0.5 });
        let s2 = g.add(BlockKind::Scale { gain: 0.25 });
        let add = g.add(BlockKind::Add { arity: 2 });
        let c220 = g.add(BlockKind::Const { value: 220.0 });
        let c550 = g.add(BlockKind::Const { value: 550.0 });
        let c1 = g.add(BlockKind::ControlInput { name: "c1".into() });
        let mux = g.add(BlockKind::Mux { arity: 2 });
        let mul = g.add(BlockKind::Mul);
        let out = g.add(BlockKind::Output {
            name: "earph".into(),
        });
        g.connect(line, s1, 0).expect("wire");
        g.connect(local, s2, 0).expect("wire");
        g.connect(s1, add, 0).expect("wire");
        g.connect(s2, add, 1).expect("wire");
        g.connect(c550, mux, 0).expect("wire");
        g.connect(c220, mux, 1).expect("wire");
        g.connect(c1, mux, 2).expect("wire");
        g.connect(add, mul, 0).expect("wire");
        g.connect(mux, mul, 1).expect("wire");
        g.connect(mul, out, 0).expect("wire");
        (g, add, mul)
    }

    #[test]
    fn weighted_sum_folds_scales_into_one_summing_amp() {
        let (g, add, _) = receiver_like_graph();
        let ms = matches_at(&g, add, &MatchOptions::default());
        // Largest match first: 3 covered blocks (add + 2 scales).
        assert_eq!(ms[0].covered.len(), 3);
        match &ms[0].kind {
            ComponentKind::SummingAmp { weights } => {
                assert_eq!(weights, &vec![0.5, 0.25]);
            }
            other => panic!("expected summing amp, got {other:?}"),
        }
        // The adder-alone alternative also exists.
        assert!(ms.iter().any(|m| m.covered.len() == 1));
    }

    #[test]
    fn switched_gain_amp_recognized() {
        let (g, _, mul) = receiver_like_graph();
        let ms = matches_at(&g, mul, &MatchOptions::default());
        // Best: mul + mux + 2 consts covered by one switched-gain amp.
        assert_eq!(ms[0].covered.len(), 4);
        match &ms[0].kind {
            ComponentKind::SwitchedGainAmp { gains } => assert_eq!(gains, &vec![550.0, 220.0]),
            other => panic!("expected switched-gain amp, got {other:?}"),
        }
        assert_eq!(ms[0].kind.opamp_count(), 1);
        // Fallback multiplier exists too (4 op amps).
        assert!(ms
            .iter()
            .any(|m| matches!(m.kind, ComponentKind::Multiplier)));
    }

    #[test]
    fn multi_block_disabled_gives_single_block_matches_only() {
        let (g, add, mul) = receiver_like_graph();
        let opts = MatchOptions {
            multi_block: false,
            transforms: false,
        };
        for b in [add, mul] {
            for m in matches_at(&g, b, &opts) {
                assert_eq!(m.covered.len(), 1);
            }
        }
    }

    #[test]
    fn interior_escape_blocks_cover() {
        // add feeds both mul and an extra output → Scale∘Add cover of
        // the adder is illegal if the adder escapes.
        let mut g = SignalFlowGraph::new("t");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let y = g.add(BlockKind::Input { name: "y".into() });
        let add = g.add(BlockKind::Add { arity: 2 });
        let scale = g.add(BlockKind::Scale { gain: 2.0 });
        let out1 = g.add(BlockKind::Output { name: "a".into() });
        let out2 = g.add(BlockKind::Output { name: "b".into() });
        g.connect(x, add, 0).expect("wire");
        g.connect(y, add, 1).expect("wire");
        g.connect(add, scale, 0).expect("wire");
        g.connect(scale, out1, 0).expect("wire");
        g.connect(add, out2, 0).expect("wire"); // add escapes!
        let ms = matches_at(&g, scale, &MatchOptions::default());
        for m in &ms {
            assert!(
                !m.covered.contains(&add),
                "cover must not swallow escaping adder: {m:?}"
            );
        }
    }

    #[test]
    fn gain_split_transform_offered_for_large_gains() {
        let mut g = SignalFlowGraph::new("t");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let s = g.add(BlockKind::Scale { gain: 100.0 });
        g.connect(x, s, 0).expect("wire");
        let ms = matches_at(&g, s, &MatchOptions::default());
        let chain = ms
            .iter()
            .find(|m| matches!(m.kind, ComponentKind::AmplifierChain { .. }))
            .expect("chain alternative");
        assert!(chain.transformed);
        assert_eq!(chain.kind.opamp_count(), 2);
        // Without transforms it disappears.
        let ms = matches_at(
            &g,
            s,
            &MatchOptions {
                multi_block: true,
                transforms: false,
            },
        );
        assert!(!ms
            .iter()
            .any(|m| matches!(m.kind, ComponentKind::AmplifierChain { .. })));
    }

    #[test]
    fn log_antilog_multiplier_recognized() {
        let mut g = SignalFlowGraph::new("t");
        let x = g.add(BlockKind::Input { name: "x".into() });
        let y = g.add(BlockKind::Input { name: "y".into() });
        let lx = g.add(BlockKind::Log);
        let ly = g.add(BlockKind::Log);
        let add = g.add(BlockKind::Add { arity: 2 });
        let al = g.add(BlockKind::Antilog);
        g.connect(x, lx, 0).expect("wire");
        g.connect(y, ly, 0).expect("wire");
        g.connect(lx, add, 0).expect("wire");
        g.connect(ly, add, 1).expect("wire");
        g.connect(add, al, 0).expect("wire");
        let ms = matches_at(&g, al, &MatchOptions::default());
        assert_eq!(ms[0].covered.len(), 4);
        assert!(matches!(ms[0].kind, ComponentKind::Multiplier));
        assert_eq!(ms[0].inputs, vec![x, y]);
    }

    #[test]
    fn summing_integrator_recognized() {
        let mut g = SignalFlowGraph::new("t");
        let u = g.add(BlockKind::Input { name: "u".into() });
        let integ = g.add(BlockKind::Integrate {
            gain: 1.0,
            initial: 0.0,
        });
        let neg = g.add(BlockKind::Scale { gain: -1.0 });
        let add = g.add(BlockKind::Add { arity: 2 });
        g.connect(u, add, 0).expect("wire");
        g.connect(integ, neg, 0).expect("wire");
        g.connect(neg, add, 1).expect("wire");
        g.connect(add, integ, 0).expect("wire");
        let ms = matches_at(&g, integ, &MatchOptions::default());
        // Best: integ + add + neg in one summing integrator.
        assert_eq!(ms[0].covered.len(), 3);
        match &ms[0].kind {
            ComponentKind::Integrator { weights, .. } => {
                assert_eq!(weights, &vec![1.0, -1.0]);
            }
            other => panic!("expected integrator, got {other:?}"),
        }
    }

    #[test]
    fn interface_blocks_do_not_match() {
        let (g, ..) = receiver_like_graph();
        for (id, b) in g.iter() {
            if b.kind.is_interface() {
                assert!(matches_at(&g, id, &MatchOptions::default()).is_empty());
            }
        }
    }

    #[test]
    fn matches_sorted_largest_first() {
        let (g, add, _) = receiver_like_graph();
        let ms = matches_at(&g, add, &MatchOptions::default());
        for pair in ms.windows(2) {
            assert!(pair[0].covered.len() >= pair[1].covered.len());
        }
    }

    #[test]
    fn match_cache_agrees_with_direct_matcher() {
        let (g, ..) = receiver_like_graph();
        let opts = MatchOptions::default();
        let cache = MatchCache::build(&g, &opts);
        assert_eq!(cache.len(), g.len());
        assert!(!cache.is_empty());
        for (id, _) in g.iter() {
            assert_eq!(cache.at(id), matches_at(&g, id, &opts).as_slice());
        }
    }

    #[test]
    fn match_cache_build_calls_matcher_once_per_block() {
        let (g, ..) = receiver_like_graph();
        let before = matches_at_calls_on_thread();
        let _cache = MatchCache::build(&g, &MatchOptions::default());
        let calls = matches_at_calls_on_thread() - before;
        assert_eq!(calls, g.len() as u64);
    }
}
