//! The op-amp-level netlist produced by architecture synthesis.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use vase_vhif::BlockId;

use crate::component::ComponentKind;

/// Where a component input comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceRef {
    /// An external port of the system.
    External(String),
    /// The output of another placed component (by index).
    Component(usize),
    /// A constant bias/reference level.
    Const(f64),
}

impl fmt::Display for SourceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceRef::External(name) => write!(f, "port:{name}"),
            SourceRef::Component(i) => write!(f, "c{i}"),
            SourceRef::Const(v) => write!(f, "{v}V"),
        }
    }
}

/// One component instance placed in the netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedComponent {
    /// What circuit this is.
    pub kind: ComponentKind,
    /// Input connections (data inputs first, then the control input if
    /// the kind has one).
    pub inputs: Vec<SourceRef>,
    /// The VHIF blocks this component implements (indices into the
    /// signal-flow graph it was mapped from). One component may cover a
    /// whole sub-graph — that is the point of the mapping.
    pub implements: Vec<BlockId>,
    /// Human-readable label.
    pub label: String,
}

/// An op-amp-level netlist: placed components plus named external
/// output taps.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Netlist {
    /// Placed components; [`SourceRef::Component`] indices refer into
    /// this vector.
    pub components: Vec<PlacedComponent>,
    /// External outputs: port name → source.
    pub outputs: Vec<(String, SourceRef)>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Add a component; returns its index.
    pub fn push(&mut self, component: PlacedComponent) -> usize {
        self.components.push(component);
        self.components.len() - 1
    }

    /// Total op-amp count — the mapper's primary area proxy.
    pub fn opamp_count(&self) -> usize {
        self.components.iter().map(|c| c.kind.opamp_count()).sum()
    }

    /// Total passive-device count.
    pub fn passive_count(&self) -> usize {
        self.components.iter().map(|c| c.kind.passive_count()).sum()
    }

    /// Component counts per Table 1 report category, in first-seen
    /// order (e.g. `[("amplif.", 2), ("zero-cross det.", 1)]`).
    pub fn report_summary(&self) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut order: Vec<&'static str> = Vec::new();
        for c in &self.components {
            let cat = c.kind.report_category();
            if !counts.contains_key(cat) {
                order.push(cat);
            }
            *counts.entry(cat).or_insert(0) += 1;
        }
        order.into_iter().map(|cat| (cat.to_owned(), counts[cat])).collect()
    }

    /// Find an existing component with the same kind and inputs — the
    /// across-path hardware-sharing opportunity of Section 5 ("blocks
    /// in distinct signal paths can share the same component, if they
    /// have identical inputs, and perform similar operations").
    pub fn find_shareable(&self, kind: &ComponentKind, inputs: &[SourceRef]) -> Option<usize> {
        self.components
            .iter()
            .position(|c| &c.kind == kind && c.inputs == inputs)
    }

    /// How many component inputs are fed from component `index`
    /// (loading/fanout, used by the interfacing transformation).
    pub fn fanout(&self, index: usize) -> usize {
        self.components
            .iter()
            .flat_map(|c| &c.inputs)
            .chain(self.outputs.iter().map(|(_, s)| s))
            .filter(|s| matches!(s, SourceRef::Component(i) if *i == index))
            .count()
    }

    /// Validate internal references: every `Component` source index
    /// must exist and input arities must match the component kinds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.components.iter().enumerate() {
            let expect = c.kind.data_inputs() + usize::from(c.kind.has_control_input());
            if c.inputs.len() != expect {
                return Err(format!(
                    "component {i} ({}) has {} inputs, expected {expect}",
                    c.kind,
                    c.inputs.len()
                ));
            }
            for s in &c.inputs {
                if let SourceRef::Component(j) = s {
                    if *j >= self.components.len() {
                        return Err(format!("component {i} references missing component {j}"));
                    }
                }
            }
        }
        for (name, s) in &self.outputs {
            if let SourceRef::Component(j) = s {
                if *j >= self.components.len() {
                    return Err(format!("output `{name}` references missing component {j}"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "netlist ({} op amps) {{", self.opamp_count())?;
        for (i, c) in self.components.iter().enumerate() {
            write!(f, "  c{i} [{}] {} <- (", c.label, c.kind)?;
            for (j, s) in c.inputs.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
            }
            writeln!(f, ")")?;
        }
        for (name, s) in &self.outputs {
            writeln!(f, "  out {name} <- {s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp(gain: f64, inputs: Vec<SourceRef>) -> PlacedComponent {
        PlacedComponent {
            kind: ComponentKind::InvertingAmp { gain },
            inputs,
            implements: vec![],
            label: "amp".into(),
        }
    }

    #[test]
    fn opamp_count_sums_components() {
        let mut n = Netlist::new();
        n.push(amp(-2.0, vec![SourceRef::External("x".into())]));
        n.push(PlacedComponent {
            kind: ComponentKind::Multiplier,
            inputs: vec![SourceRef::Component(0), SourceRef::External("y".into())],
            implements: vec![],
            label: "mul".into(),
        });
        assert_eq!(n.opamp_count(), 5);
        assert!(n.passive_count() > 0);
    }

    #[test]
    fn report_summary_groups_by_category() {
        let mut n = Netlist::new();
        n.push(amp(-1.0, vec![SourceRef::External("a".into())]));
        n.push(amp(-2.0, vec![SourceRef::External("b".into())]));
        n.push(PlacedComponent {
            kind: ComponentKind::ZeroCrossDetector { level: 0.0, hysteresis: 0.01 },
            inputs: vec![SourceRef::External("a".into())],
            implements: vec![],
            label: "zc".into(),
        });
        let summary = n.report_summary();
        assert_eq!(
            summary,
            vec![("amplif.".to_owned(), 2), ("zero-cross det.".to_owned(), 1)]
        );
    }

    #[test]
    fn find_shareable_requires_identical_inputs_and_kind() {
        let mut n = Netlist::new();
        let a = amp(-2.0, vec![SourceRef::External("x".into())]);
        n.push(a.clone());
        assert_eq!(
            n.find_shareable(&a.kind, &[SourceRef::External("x".into())]),
            Some(0)
        );
        assert_eq!(n.find_shareable(&a.kind, &[SourceRef::External("y".into())]), None);
        assert_eq!(
            n.find_shareable(
                &ComponentKind::InvertingAmp { gain: -3.0 },
                &[SourceRef::External("x".into())]
            ),
            None
        );
    }

    #[test]
    fn fanout_counts_consumers() {
        let mut n = Netlist::new();
        let src = n.push(amp(-1.0, vec![SourceRef::External("x".into())]));
        n.push(amp(-2.0, vec![SourceRef::Component(src)]));
        n.push(amp(-3.0, vec![SourceRef::Component(src)]));
        n.outputs.push(("y".into(), SourceRef::Component(src)));
        assert_eq!(n.fanout(src), 3);
        assert_eq!(n.fanout(1), 0);
    }

    #[test]
    fn validate_catches_arity_and_dangling_refs() {
        let mut n = Netlist::new();
        n.push(PlacedComponent {
            kind: ComponentKind::Multiplier,
            inputs: vec![SourceRef::Const(1.0)], // needs 2
            implements: vec![],
            label: "bad".into(),
        });
        assert!(n.validate().is_err());

        let mut n = Netlist::new();
        n.push(amp(-1.0, vec![SourceRef::Component(7)]));
        assert!(n.validate().is_err());

        let mut n = Netlist::new();
        n.push(amp(-1.0, vec![SourceRef::External("x".into())]));
        n.outputs.push(("y".into(), SourceRef::Component(0)));
        n.validate().expect("valid");
    }

    #[test]
    fn display_lists_components() {
        let mut n = Netlist::new();
        n.push(amp(-2.0, vec![SourceRef::External("x".into())]));
        let s = n.to_string();
        assert!(s.contains("1 op amps"));
        assert!(s.contains("port:x"));
    }
}
