//! Op-amp-level analog components.
//!
//! This is the reproduction of the CMOS analog cell library the paper
//! maps onto (Campisi \[7\], MOSIS SCN-2.0 µm): every component is a
//! small circuit built around zero or more operational amplifiers plus
//! passives. The mapper's cost function counts op amps (the paper's
//! sequencing rule approximates ASIC area by op-amp count); the
//! `vase-estimate` crate refines that into transistor-level area and
//! performance numbers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of library component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Inverting amplifier (`-Rf/Ri` gain), one op amp.
    InvertingAmp {
        /// Closed-loop gain (negative).
        gain: f64,
    },
    /// Non-inverting amplifier (`1 + Rf/Ri` gain ≥ 1), one op amp.
    NonInvertingAmp {
        /// Closed-loop gain (≥ 1).
        gain: f64,
    },
    /// Unity-gain follower/buffer (interfacing stage), one op amp.
    Follower,
    /// Cascade of two amplifiers realizing one gain with wider
    /// bandwidth (the paper's functional transformation: "an op amp is
    /// replaced by a chain of two op amps with lower gains").
    AmplifierChain {
        /// Per-stage gains (product = overall gain).
        stage_gains: Vec<f64>,
    },
    /// Weighted summing amplifier, one op amp.
    SummingAmp {
        /// Per-input weights.
        weights: Vec<f64>,
    },
    /// Difference amplifier `k (a - b)`, one op amp.
    DifferenceAmp {
        /// Output gain.
        gain: f64,
    },
    /// Amplifier whose gain is selected among fixed settings by a
    /// control signal (switched feedback network) — how the paper's
    /// receiver realizes `(...) * rvar` with `rvar` chosen by `c1`.
    SwitchedGainAmp {
        /// Selectable gains (control selects the index).
        gains: Vec<f64>,
    },
    /// (Summing) integrator, one op amp: `y' = Σ w_i u_i`.
    Integrator {
        /// Per-input gains (1/RC each).
        weights: Vec<f64>,
        /// Initial condition.
        initial: f64,
    },
    /// Differentiator, one op amp.
    Differentiator {
        /// Gain (RC).
        gain: f64,
    },
    /// Logarithmic amplifier, one op amp + junction.
    LogAmp,
    /// Anti-log (exponential) amplifier, one op amp + junction.
    AntilogAmp,
    /// Four-quadrant analog multiplier (log-antilog core).
    Multiplier,
    /// Analog divider (log-antilog core).
    Divider,
    /// Precision rectifier (absolute value), two op amps.
    PrecisionRectifier,
    /// Comparator against a fixed threshold, one (open-loop) op amp.
    Comparator {
        /// Threshold in volts.
        threshold: f64,
    },
    /// Zero-cross detector with a small hysteresis margin (the paper's
    /// receiver control element).
    ZeroCrossDetector {
        /// Detection level.
        level: f64,
        /// Hysteresis margin.
        hysteresis: f64,
    },
    /// Schmitt trigger with thresholds `[low, high]`.
    SchmittTrigger {
        /// Lower threshold.
        low: f64,
        /// Upper threshold.
        high: f64,
    },
    /// Sample-and-hold circuit.
    SampleHold,
    /// Transmission-gate analog switch (no op amp).
    AnalogSwitch,
    /// Analog multiplexer (switch bank), no op amp.
    AnalogMux {
        /// Number of data inputs.
        inputs: usize,
    },
    /// Analog-to-digital converter.
    Adc {
        /// Resolution in bits.
        bits: u32,
    },
    /// Digital/control logic gate (negligible analog area).
    LogicGate,
    /// One-signal memory cell (S/H-based latch).
    MemoryCell,
    /// Voltage reference (resistor divider + optional buffer).
    VoltageRef {
        /// Reference level in volts.
        level: f64,
    },
    /// Hard limiter (op amp + clamping diodes).
    Limiter {
        /// Clipping level in volts.
        level: f64,
    },
    /// Power output stage: low output impedance, drives `load_ohms` at
    /// `peak_volts`, optional limiting (the paper's inferred `block 4`).
    OutputStage {
        /// Load resistance.
        load_ohms: f64,
        /// Peak output amplitude.
        peak_volts: f64,
        /// Clipping level, if limiting.
        limit: Option<f64>,
    },
}

impl ComponentKind {
    /// Number of operational amplifiers in the component's circuit —
    /// the quantity the mapper's sequencing rule uses as its area
    /// proxy.
    pub fn opamp_count(&self) -> usize {
        use ComponentKind::*;
        match self {
            InvertingAmp { .. } | NonInvertingAmp { .. } | Follower | SummingAmp { .. }
            | DifferenceAmp { .. } | SwitchedGainAmp { .. } | Integrator { .. }
            | Differentiator { .. } | LogAmp | AntilogAmp | Comparator { .. }
            | ZeroCrossDetector { .. } | SchmittTrigger { .. } | SampleHold | MemoryCell
            | Limiter { .. } | OutputStage { .. } => 1,
            AmplifierChain { stage_gains } => stage_gains.len(),
            PrecisionRectifier => 2,
            Multiplier | Divider => 4,
            Adc { .. } => 3,
            AnalogSwitch | AnalogMux { .. } | LogicGate | VoltageRef { .. } => 0,
        }
    }

    /// Approximate passive-device count (resistors + capacitors), used
    /// as a secondary area term by the estimator.
    pub fn passive_count(&self) -> usize {
        use ComponentKind::*;
        match self {
            Follower => 0,
            InvertingAmp { .. } | NonInvertingAmp { .. } | DifferenceAmp { .. } => 2,
            AmplifierChain { stage_gains } => 2 * stage_gains.len(),
            SummingAmp { weights } => weights.len() + 1,
            SwitchedGainAmp { gains } => gains.len() + 1,
            Integrator { weights, .. } => weights.len() + 1,
            Differentiator { .. } => 2,
            LogAmp | AntilogAmp => 2,
            Multiplier | Divider => 8,
            PrecisionRectifier => 4,
            Comparator { .. } => 1,
            ZeroCrossDetector { .. } | SchmittTrigger { .. } => 3,
            SampleHold | MemoryCell => 2,
            AnalogSwitch => 0,
            AnalogMux { inputs } => *inputs,
            Adc { bits } => 2 * (*bits as usize),
            LogicGate => 0,
            VoltageRef { .. } => 2,
            Limiter { .. } => 3,
            OutputStage { .. } => 3,
        }
    }

    /// Number of analog data inputs the component accepts.
    pub fn data_inputs(&self) -> usize {
        use ComponentKind::*;
        match self {
            VoltageRef { .. } => 0,
            SummingAmp { weights } => weights.len(),
            Integrator { weights, .. } => weights.len(),
            AnalogMux { inputs } => *inputs,
            DifferenceAmp { .. } | Multiplier | Divider => 2,
            _ => 1,
        }
    }

    /// Whether the component takes a control input (select/sample).
    pub fn has_control_input(&self) -> bool {
        matches!(
            self,
            ComponentKind::SwitchedGainAmp { .. }
                | ComponentKind::SampleHold
                | ComponentKind::AnalogSwitch
                | ComponentKind::AnalogMux { .. }
                | ComponentKind::Adc { .. }
                | ComponentKind::MemoryCell
        )
    }

    /// The category name used in the paper's Table 1 "Synthesis
    /// Results" column (e.g. `amplif.`, `integ.`, `zero-cross det.`).
    pub fn report_category(&self) -> &'static str {
        use ComponentKind::*;
        match self {
            InvertingAmp { .. } | NonInvertingAmp { .. } | SummingAmp { .. }
            | SwitchedGainAmp { .. } | AmplifierChain { .. } => "amplif.",
            Follower => "follower",
            DifferenceAmp { .. } => "diff. amplif.",
            Integrator { .. } => "integ.",
            Differentiator { .. } => "differentiator",
            LogAmp => "log.amplif.",
            AntilogAmp => "anti-log.amplif.",
            Multiplier => "multiplier",
            Divider => "divider",
            PrecisionRectifier => "rectifier",
            Comparator { .. } | ZeroCrossDetector { .. } => "zero-cross det.",
            SchmittTrigger { .. } => "Schmitt trigger",
            SampleHold => "S/H",
            AnalogSwitch => "switch",
            AnalogMux { .. } => "MUX",
            Adc { .. } => "ADC",
            LogicGate => "logic",
            MemoryCell => "memory",
            VoltageRef { .. } => "ref",
            Limiter { .. } => "limiter",
            OutputStage { .. } => "output stage",
        }
    }

    /// The magnitude of the largest closed-loop *voltage* gain the
    /// component must realize (drives op-amp UGF requirements in the
    /// estimator). Integrator/differentiator weights are time constants
    /// (1/RC), not voltage gains, so they do not contribute here.
    pub fn max_gain(&self) -> f64 {
        use ComponentKind::*;
        match self {
            InvertingAmp { gain } | NonInvertingAmp { gain } => gain.abs(),
            AmplifierChain { stage_gains } => {
                stage_gains.iter().fold(1.0_f64, |m, g| m.max(g.abs()))
            }
            SummingAmp { weights } => weights.iter().fold(1.0_f64, |m, w| m.max(w.abs())),
            SwitchedGainAmp { gains } => gains.iter().fold(1.0_f64, |m, g| m.max(g.abs())),
            DifferenceAmp { gain } => gain.abs(),
            _ => 1.0,
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ComponentKind::*;
        match self {
            InvertingAmp { gain } => write!(f, "inv-amp(gain={gain})"),
            NonInvertingAmp { gain } => write!(f, "noninv-amp(gain={gain})"),
            Follower => f.write_str("follower"),
            AmplifierChain { stage_gains } => write!(f, "amp-chain{stage_gains:?}"),
            SummingAmp { weights } => write!(f, "sum-amp{weights:?}"),
            DifferenceAmp { gain } => write!(f, "diff-amp(gain={gain})"),
            SwitchedGainAmp { gains } => write!(f, "switched-gain-amp{gains:?}"),
            Integrator { weights, .. } => write!(f, "integrator{weights:?}"),
            Differentiator { gain } => write!(f, "differentiator(gain={gain})"),
            LogAmp => f.write_str("log-amp"),
            AntilogAmp => f.write_str("antilog-amp"),
            Multiplier => f.write_str("multiplier"),
            Divider => f.write_str("divider"),
            PrecisionRectifier => f.write_str("precision-rectifier"),
            Comparator { threshold } => write!(f, "comparator(>{threshold})"),
            ZeroCrossDetector { level, hysteresis } => {
                write!(f, "zero-cross(level={level}, hyst={hysteresis})")
            }
            SchmittTrigger { low, high } => write!(f, "schmitt({low},{high})"),
            SampleHold => f.write_str("sample-hold"),
            AnalogSwitch => f.write_str("switch"),
            AnalogMux { inputs } => write!(f, "mux/{inputs}"),
            Adc { bits } => write!(f, "adc({bits}b)"),
            LogicGate => f.write_str("logic-gate"),
            MemoryCell => f.write_str("memory-cell"),
            VoltageRef { level } => write!(f, "vref({level})"),
            Limiter { level } => write!(f, "limiter(±{level})"),
            OutputStage { load_ohms, peak_volts, .. } => {
                write!(f, "output-stage({load_ohms}Ω @ {peak_volts}Vpk)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opamp_counts() {
        assert_eq!(ComponentKind::InvertingAmp { gain: -2.0 }.opamp_count(), 1);
        assert_eq!(
            ComponentKind::AmplifierChain { stage_gains: vec![10.0, 10.0] }.opamp_count(),
            2
        );
        assert_eq!(ComponentKind::Multiplier.opamp_count(), 4);
        assert_eq!(ComponentKind::AnalogSwitch.opamp_count(), 0);
        assert_eq!(ComponentKind::Adc { bits: 8 }.opamp_count(), 3);
        assert_eq!(
            ComponentKind::SummingAmp { weights: vec![0.5, 0.25] }.opamp_count(),
            1
        );
    }

    #[test]
    fn report_categories_match_table1_names() {
        assert_eq!(ComponentKind::SummingAmp { weights: vec![1.0] }.report_category(), "amplif.");
        assert_eq!(
            ComponentKind::Integrator { weights: vec![1.0], initial: 0.0 }.report_category(),
            "integ."
        );
        assert_eq!(
            ComponentKind::ZeroCrossDetector { level: 0.0, hysteresis: 0.01 }.report_category(),
            "zero-cross det."
        );
        assert_eq!(ComponentKind::SampleHold.report_category(), "S/H");
        assert_eq!(ComponentKind::Adc { bits: 8 }.report_category(), "ADC");
        assert_eq!(ComponentKind::AnalogMux { inputs: 2 }.report_category(), "MUX");
        assert_eq!(
            ComponentKind::SchmittTrigger { low: -0.1, high: 0.1 }.report_category(),
            "Schmitt trigger"
        );
        assert_eq!(ComponentKind::LogAmp.report_category(), "log.amplif.");
        assert_eq!(ComponentKind::AntilogAmp.report_category(), "anti-log.amplif.");
        assert_eq!(ComponentKind::DifferenceAmp { gain: 1.0 }.report_category(), "diff. amplif.");
    }

    #[test]
    fn data_inputs_and_controls() {
        assert_eq!(ComponentKind::SummingAmp { weights: vec![1.0, 2.0, 3.0] }.data_inputs(), 3);
        assert_eq!(ComponentKind::Multiplier.data_inputs(), 2);
        assert!(ComponentKind::SampleHold.has_control_input());
        assert!(!ComponentKind::Follower.has_control_input());
        assert_eq!(ComponentKind::VoltageRef { level: 1.0 }.data_inputs(), 0);
    }

    #[test]
    fn max_gain_drives_ugf() {
        assert_eq!(ComponentKind::InvertingAmp { gain: -50.0 }.max_gain(), 50.0);
        assert_eq!(
            ComponentKind::SummingAmp { weights: vec![0.5, -8.0] }.max_gain(),
            8.0
        );
        assert_eq!(ComponentKind::Follower.max_gain(), 1.0);
    }
}
