//! # vase-frontend
//!
//! Frontend for **VASS** — the VHDL-AMS Subset for Synthesis defined in
//! *"A VHDL-AMS Compiler and Architecture Generator for Behavioral
//! Synthesis of Analog Systems"* (Doboli & Vemuri, DATE 1999), Section 3.
//!
//! The crate provides:
//!
//! * a [`lexer`] and recursive-descent [`parser`] producing an [`ast`],
//! * the VASS [`annot`] (annotation) model — the declarative mechanism
//!   for describing signal properties (kind, ranges, impedances, output
//!   limiting and drive requirements) that plain VHDL-AMS lacks,
//! * a semantic analyzer ([`sema`]) that resolves names, checks types,
//!   and enforces the VASS synthesizability restrictions (statically
//!   bounded `for` loops, no `wait` statements, single-facet terminal
//!   use, *signals* never read after being assigned, ...).
//!
//! # Examples
//!
//! Parse and analyze a small amplifier specification:
//!
//! ```
//! use vase_frontend::{analyze, parse_design_file};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = r#"
//!   entity amp is
//!     port (quantity vin  : in  real is voltage;
//!           quantity vout : out real is voltage limited at 1.5 v);
//!   end entity;
//!   architecture behav of amp is
//!   begin
//!     vout == 10.0 * vin;
//!   end architecture;
//! "#;
//! let design = parse_design_file(source)?;
//! let analyzed = analyze(&design)?;
//! assert_eq!(analyzed.design.entities().count(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod annot;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod span;
pub mod token;

pub use annot::{Annotation, AnnotationSet, SignalKind};
pub use error::{FrontendError, LexError, ParseError, SemaError, SemaErrorKind};
pub use parser::{parse_design_file, parse_design_file_recovering, parse_expression};
pub use sema::{analyze, AnalyzedDesign};
