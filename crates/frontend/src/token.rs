//! Token definitions for the VASS lexer.

use std::fmt;

use crate::span::Span;

/// Keywords recognized by the VASS subset.
///
/// This covers the VHDL-AMS keywords used by the synthesis subset of the
/// paper (entities, architectures, simultaneous/procedural/process
/// statements) plus the annotation keywords the subset adds (`limited`,
/// `drives`, `peak`, ...).
#[allow(missing_docs)] // variant names mirror their keyword spelling
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Entity,
    Architecture,
    Package,
    Body,
    Is,
    Of,
    Port,
    Begin,
    End,
    Quantity,
    Signal,
    Terminal,
    Constant,
    Variable,
    In,
    Out,
    Inout,
    Across,
    Through,
    Nature,
    If,
    Then,
    Else,
    Elsif,
    Case,
    When,
    Use,
    Process,
    Procedural,
    While,
    For,
    Loop,
    Null,
    Function,
    Return,
    Wait,
    And,
    Or,
    Not,
    Xor,
    Nand,
    Nor,
    Abs,
    Mod,
    Rem,
    To,
    Downto,
    Others,
    True,
    False,
    // Annotation keywords (VASS extension, Section 3 of the paper).
    Voltage,
    Current,
    Limited,
    Drives,
    At,
    Peak,
    Impedance,
    Frequency,
    Range,
}

impl Keyword {
    /// Look up a keyword from a lower-cased identifier.
    pub fn from_str_lower(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "entity" => Entity,
            "architecture" => Architecture,
            "package" => Package,
            "body" => Body,
            "is" => Is,
            "of" => Of,
            "port" => Port,
            "begin" => Begin,
            "end" => End,
            "quantity" => Quantity,
            "signal" => Signal,
            "terminal" => Terminal,
            "constant" => Constant,
            "variable" => Variable,
            "in" => In,
            "out" => Out,
            "inout" => Inout,
            "across" => Across,
            "through" => Through,
            "nature" => Nature,
            "if" => If,
            "then" => Then,
            "else" => Else,
            "elsif" => Elsif,
            "case" => Case,
            "when" => When,
            "use" => Use,
            "process" => Process,
            "procedural" => Procedural,
            "while" => While,
            "for" => For,
            "loop" => Loop,
            "null" => Null,
            "function" => Function,
            "return" => Return,
            "wait" => Wait,
            "and" => And,
            "or" => Or,
            "not" => Not,
            "xor" => Xor,
            "nand" => Nand,
            "nor" => Nor,
            "abs" => Abs,
            "mod" => Mod,
            "rem" => Rem,
            "to" => To,
            "downto" => Downto,
            "others" => Others,
            "true" => True,
            "false" => False,
            "voltage" => Voltage,
            "current" => Current,
            "limited" => Limited,
            "drives" => Drives,
            "at" => At,
            "peak" => Peak,
            "impedance" => Impedance,
            "frequency" => Frequency,
            "range" => Range,
            _ => return None,
        })
    }

    /// The canonical (lower-case) spelling of the keyword.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Entity => "entity",
            Architecture => "architecture",
            Package => "package",
            Body => "body",
            Is => "is",
            Of => "of",
            Port => "port",
            Begin => "begin",
            End => "end",
            Quantity => "quantity",
            Signal => "signal",
            Terminal => "terminal",
            Constant => "constant",
            Variable => "variable",
            In => "in",
            Out => "out",
            Inout => "inout",
            Across => "across",
            Through => "through",
            Nature => "nature",
            If => "if",
            Then => "then",
            Else => "else",
            Elsif => "elsif",
            Case => "case",
            When => "when",
            Use => "use",
            Process => "process",
            Procedural => "procedural",
            While => "while",
            For => "for",
            Loop => "loop",
            Null => "null",
            Function => "function",
            Return => "return",
            Wait => "wait",
            And => "and",
            Or => "or",
            Not => "not",
            Xor => "xor",
            Nand => "nand",
            Nor => "nor",
            Abs => "abs",
            Mod => "mod",
            Rem => "rem",
            To => "to",
            Downto => "downto",
            Others => "others",
            True => "true",
            False => "false",
            Voltage => "voltage",
            Current => "current",
            Limited => "limited",
            Drives => "drives",
            At => "at",
            Peak => "peak",
            Impedance => "impedance",
            Frequency => "frequency",
            Range => "range",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier (case-insensitive in VHDL; stored lower-cased with
    /// the original spelling preserved separately by the lexer).
    Ident(String),
    /// A reserved word.
    Keyword(Keyword),
    /// An integer literal.
    IntLiteral(i64),
    /// A real literal (also produced for integer literals followed by an
    /// exponent).
    RealLiteral(f64),
    /// A character literal such as `'0'` or `'1'`.
    CharLiteral(char),
    /// A string literal such as `"0101"`.
    StringLiteral(String),
    /// `==` — the simultaneous-statement relation.
    EqEq,
    /// `:=` — variable assignment.
    ColonEq,
    /// `<=` — signal assignment or less-or-equal, disambiguated by the
    /// parser from context.
    LtEq,
    /// `=>`
    Arrow,
    /// `=`
    Eq,
    /// `/=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `/`
    Slash,
    /// `&`
    Ampersand,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `'` when used as the attribute tick (e.g. `line'ABOVE(vth)`).
    Tick,
    /// `|`
    Bar,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Keyword(kw) => format!("keyword `{kw}`"),
            TokenKind::IntLiteral(v) => format!("integer literal `{v}`"),
            TokenKind::RealLiteral(v) => format!("real literal `{v}`"),
            TokenKind::CharLiteral(c) => format!("character literal `'{c}'`"),
            TokenKind::StringLiteral(s) => format!("string literal `\"{s}\"`"),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::ColonEq => "`:=`".into(),
            TokenKind::LtEq => "`<=`".into(),
            TokenKind::Arrow => "`=>`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::NotEq => "`/=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::GtEq => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::StarStar => "`**`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Ampersand => "`&`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Tick => "`'`".into(),
            TokenKind::Bar => "`|`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A lexed token: kind plus source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(self.kind, TokenKind::Keyword(k) if k == kw)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Entity,
            Keyword::Procedural,
            Keyword::Limited,
            Keyword::Drives,
            Keyword::Downto,
            Keyword::Frequency,
        ] {
            assert_eq!(Keyword::from_str_lower(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn unknown_keyword_is_none() {
        assert_eq!(Keyword::from_str_lower("resistor"), None);
        assert_eq!(Keyword::from_str_lower(""), None);
    }

    #[test]
    fn token_is_keyword() {
        let t = Token::new(TokenKind::Keyword(Keyword::Entity), Span::default());
        assert!(t.is_keyword(Keyword::Entity));
        assert!(!t.is_keyword(Keyword::End));
        let t = Token::new(TokenKind::Ident("entityx".into()), Span::default());
        assert!(!t.is_keyword(Keyword::Entity));
    }

    #[test]
    fn describe_is_nonempty() {
        assert!(TokenKind::Eof.describe().contains("end of input"));
        assert!(TokenKind::Ident("foo".into()).describe().contains("foo"));
    }
}
