//! A hand-written lexer for the VASS subset of VHDL-AMS.
//!
//! VHDL is case-insensitive: identifiers are normalized to lower case.
//! Comments (`-- ...` to end of line) and whitespace are skipped.
//! Physical-unit suffixes (e.g. `285 mV`, `270 ohm`) are *not* handled
//! here; the parser treats them as a literal followed by an identifier
//! in annotation positions.

use crate::error::LexError;
use crate::span::{Position, Span};
use crate::token::{Keyword, Token, TokenKind};

/// Lex a full VASS source into a token vector terminated by
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated string literals, malformed
/// numeric literals, or characters outside the VASS alphabet.
///
/// # Examples
///
/// ```
/// use vase_frontend::lexer::lex;
/// use vase_frontend::token::TokenKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tokens = lex("earph == line * 2.0;")?;
/// assert!(matches!(tokens[1].kind, TokenKind::EqEq));
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: Position,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer { chars: source.chars().peekable(), pos: Position::start(), tokens: Vec::new() }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.next()?;
        self.pos.advance(ch);
        Some(ch)
    }

    fn error(&self, message: impl Into<String>, start: Position) -> LexError {
        LexError { message: message.into(), span: Span::new(start, self.pos) }
    }

    fn push(&mut self, kind: TokenKind, start: Position) {
        self.tokens.push(Token::new(kind, Span::new(start, self.pos)));
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        while let Some(ch) = self.peek() {
            let start = self.pos;
            match ch {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '-' => {
                    self.bump();
                    if self.peek() == Some('-') {
                        // comment to end of line
                        while let Some(c) = self.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else {
                        self.push(TokenKind::Minus, start);
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => self.lex_word(start),
                c if c.is_ascii_digit() => self.lex_number(start)?,
                '\'' => self.lex_tick_or_char(start)?,
                '"' => self.lex_string(start)?,
                _ => self.lex_symbol(start)?,
            }
        }
        let here = self.pos;
        self.push(TokenKind::Eof, here);
        Ok(self.tokens)
    }

    fn lex_word(&mut self, start: Position) {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                word.push(c.to_ascii_lowercase());
                self.bump();
            } else {
                break;
            }
        }
        let kind = match Keyword::from_str_lower(&word) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(word),
        };
        self.push(kind, start);
    }

    fn lex_number(&mut self, start: Position) -> Result<(), LexError> {
        let mut text = String::new();
        let mut is_real = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: a dot followed by a digit (a bare `.` would be
        // a record selector, which VASS does not lex after numbers).
        if self.peek() == Some('.') {
            is_real = true;
            text.push('.');
            self.bump();
            let mut saw_digit = false;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == '_' {
                    if c != '_' {
                        text.push(c);
                        saw_digit = true;
                    }
                    self.bump();
                } else {
                    break;
                }
            }
            if !saw_digit {
                return Err(self.error("expected digits after decimal point", start));
            }
        }
        // Exponent
        if matches!(self.peek(), Some('e') | Some('E')) {
            // Only treat as an exponent if followed by digits or sign+digits;
            // otherwise it's the start of an identifier (e.g. `2 eV`... not
            // valid VASS, but be conservative).
            let mut clone = self.chars.clone();
            clone.next();
            let next = clone.peek().copied();
            let next2 = {
                let mut c2 = clone.clone();
                c2.next();
                c2.peek().copied()
            };
            let exp_ok = match next {
                Some(d) if d.is_ascii_digit() => true,
                Some('+') | Some('-') => matches!(next2, Some(d) if d.is_ascii_digit()),
                _ => false,
            };
            if exp_ok {
                is_real = true;
                text.push('e');
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    text.push(self.bump().expect("peeked"));
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        let kind = if is_real {
            let v: f64 = text
                .parse()
                .map_err(|_| self.error(format!("malformed real literal `{text}`"), start))?;
            TokenKind::RealLiteral(v)
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.error(format!("malformed integer literal `{text}`"), start))?;
            TokenKind::IntLiteral(v)
        };
        self.push(kind, start);
        Ok(())
    }

    /// A `'` is either a character literal (`'0'`) or the attribute tick
    /// (`line'above(...)`). It is a character literal exactly when the
    /// character after the next one is another `'`.
    fn lex_tick_or_char(&mut self, start: Position) -> Result<(), LexError> {
        self.bump(); // consume '
        let mut clone = self.chars.clone();
        let c1 = clone.next();
        let c2 = clone.next();
        if let (Some(c), Some('\'')) = (c1, c2) {
            self.bump();
            self.bump();
            self.push(TokenKind::CharLiteral(c), start);
        } else {
            self.push(TokenKind::Tick, start);
        }
        Ok(())
    }

    fn lex_string(&mut self, start: Position) -> Result<(), LexError> {
        self.bump(); // consume opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => {
                    // VHDL escapes a quote by doubling it.
                    if self.peek() == Some('"') {
                        self.bump();
                        s.push('"');
                    } else {
                        break;
                    }
                }
                Some('\n') | None => {
                    return Err(self.error("unterminated string literal", start));
                }
                Some(c) => s.push(c),
            }
        }
        self.push(TokenKind::StringLiteral(s), start);
        Ok(())
    }

    fn lex_symbol(&mut self, start: Position) -> Result<(), LexError> {
        let ch = self.bump().expect("caller peeked");
        let kind = match ch {
            '=' => match self.peek() {
                Some('=') => {
                    self.bump();
                    TokenKind::EqEq
                }
                Some('>') => {
                    self.bump();
                    TokenKind::Arrow
                }
                _ => TokenKind::Eq,
            },
            ':' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::ColonEq
                } else {
                    TokenKind::Colon
                }
            }
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::LtEq
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            '/' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Slash
                }
            }
            '*' => {
                if self.peek() == Some('*') {
                    self.bump();
                    TokenKind::StarStar
                } else {
                    TokenKind::Star
                }
            }
            '+' => TokenKind::Plus,
            '&' => TokenKind::Ampersand,
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            ';' => TokenKind::Semicolon,
            ',' => TokenKind::Comma,
            '.' => TokenKind::Dot,
            '|' => TokenKind::Bar,
            other => {
                return Err(self.error(format!("unexpected character `{other}`"), start));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).expect("lex ok").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_case_insensitively() {
        let ks = kinds("ENTITY Entity entity");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Entity),
                TokenKind::Keyword(Keyword::Entity),
                TokenKind::Keyword(Keyword::Entity),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_are_lowercased() {
        let ks = kinds("Earph RVar");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("earph".into()),
                TokenKind::Ident("rvar".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::IntLiteral(42));
        assert_eq!(kinds("3.5")[0], TokenKind::RealLiteral(3.5));
        assert_eq!(kinds("1e3")[0], TokenKind::RealLiteral(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::RealLiteral(0.025));
        assert_eq!(kinds("1_000")[0], TokenKind::IntLiteral(1000));
    }

    #[test]
    fn number_then_ident_unit() {
        // `285 mV` lexes as int + ident; the parser scales it.
        let ks = kinds("285 mv");
        assert_eq!(ks[0], TokenKind::IntLiteral(285));
        assert_eq!(ks[1], TokenKind::Ident("mv".into()));
    }

    #[test]
    fn rejects_trailing_dot_without_digits() {
        assert!(lex("3.").is_err());
    }

    #[test]
    fn lexes_compound_operators() {
        let ks = kinds("== := <= => /= >= ** = < > + - * / & | . , ; : ( )");
        assert_eq!(
            &ks[..9],
            &[
                TokenKind::EqEq,
                TokenKind::ColonEq,
                TokenKind::LtEq,
                TokenKind::Arrow,
                TokenKind::NotEq,
                TokenKind::GtEq,
                TokenKind::StarStar,
                TokenKind::Eq,
                TokenKind::Lt,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a -- this is a comment == *\nb");
        assert_eq!(
            ks,
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn minus_vs_comment() {
        let ks = kinds("a - b");
        assert_eq!(ks[1], TokenKind::Minus);
    }

    #[test]
    fn char_literal_vs_attribute_tick() {
        let ks = kinds("c1 <= '1'");
        assert_eq!(ks[2], TokenKind::CharLiteral('1'));
        // `above` is not reserved; it lexes as an identifier attribute name.
        let ks = kinds("line'above(vth)");
        assert_eq!(ks[1], TokenKind::Tick);
        assert_eq!(ks[2], TokenKind::Ident("above".into()));
    }

    #[test]
    fn string_literal_with_escaped_quote() {
        let ks = kinds(r#""01""10""#);
        assert_eq!(ks[0], TokenKind::StringLiteral("01\"10".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let err = lex("a # b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\nbb\n  ccc").expect("lex ok");
        assert_eq!(toks[0].span.start.line, 1);
        assert_eq!(toks[1].span.start.line, 2);
        assert_eq!(toks[2].span.start.line, 3);
        assert_eq!(toks[2].span.start.column, 3);
    }

    #[test]
    fn eof_token_is_last() {
        let toks = lex("").expect("lex ok");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Eof);
    }
}
