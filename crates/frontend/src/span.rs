//! Source positions and spans used throughout the frontend for error
//! reporting.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A position in a source text, expressed as 1-based line and column
/// numbers plus a 0-based byte offset.
///
/// # Examples
///
/// ```
/// use vase_frontend::span::Position;
///
/// let start = Position::start();
/// assert_eq!(start.line, 1);
/// assert_eq!(start.column, 1);
/// assert_eq!(start.offset, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
    /// 0-based byte offset into the source.
    pub offset: u32,
}

impl Position {
    /// The position of the first character of a source text.
    pub fn start() -> Self {
        Position { line: 1, column: 1, offset: 0 }
    }

    /// Advance the position over `ch`, updating line/column/offset.
    pub(crate) fn advance(&mut self, ch: char) {
        self.offset += ch.len_utf8() as u32;
        if ch == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }
}

impl Default for Position {
    fn default() -> Self {
        Position::start()
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A contiguous region of source text, from `start` (inclusive) to `end`
/// (exclusive).
///
/// # Examples
///
/// ```
/// use vase_frontend::span::{Position, Span};
///
/// let span = Span::point(Position::start());
/// assert_eq!(span.start, span.end);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// First position covered by the span.
    pub start: Position,
    /// One past the last position covered by the span.
    pub end: Position,
}

impl Span {
    /// Create a span covering `start..end`.
    pub fn new(start: Position, end: Position) -> Self {
        Span { start, end }
    }

    /// Create a zero-width span at `pos`.
    pub fn point(pos: Position) -> Self {
        Span { start: pos, end: pos }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: if self.start.offset <= other.start.offset { self.start } else { other.start },
            end: if self.end.offset >= other.end.offset { self.end } else { other.end },
        }
    }

    /// A synthetic span for nodes created by the compiler rather than
    /// parsed from source (e.g. unrolled loop bodies).
    pub fn synthetic() -> Span {
        Span::point(Position { line: 0, column: 0, offset: 0 })
    }

    /// Whether this span was created by [`Span::synthetic`].
    pub fn is_synthetic(&self) -> bool {
        self.start.line == 0
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::point(Position::start())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}", self.start)
        }
    }
}

/// A value paired with the source span it was parsed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where the value appeared in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pair `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }

    /// Map the wrapped value, keeping the span.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Spanned<U> {
        Spanned { node: f(self.node), span: self.span }
    }
}

impl<T: fmt::Display> fmt::Display for Spanned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_advances_over_newline() {
        let mut pos = Position::start();
        pos.advance('a');
        assert_eq!((pos.line, pos.column, pos.offset), (1, 2, 1));
        pos.advance('\n');
        assert_eq!((pos.line, pos.column, pos.offset), (2, 1, 2));
        pos.advance('x');
        assert_eq!((pos.line, pos.column, pos.offset), (2, 2, 3));
    }

    #[test]
    fn position_advance_counts_utf8_bytes() {
        let mut pos = Position::start();
        pos.advance('µ');
        assert_eq!(pos.offset, 2);
        assert_eq!(pos.column, 2);
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(
            Position { line: 1, column: 1, offset: 0 },
            Position { line: 1, column: 5, offset: 4 },
        );
        let b = Span::new(
            Position { line: 2, column: 1, offset: 10 },
            Position { line: 2, column: 3, offset: 12 },
        );
        let m = a.merge(b);
        assert_eq!(m.start, a.start);
        assert_eq!(m.end, b.end);
        // merge is symmetric
        assert_eq!(b.merge(a), m);
    }

    #[test]
    fn synthetic_span_displays_marker() {
        assert_eq!(Span::synthetic().to_string(), "<synthetic>");
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::default().is_synthetic());
    }

    #[test]
    fn spanned_map_keeps_span() {
        let s = Spanned::new(21, Span::default());
        let t = s.map(|v| v * 2);
        assert_eq!(t.node, 42);
        assert_eq!(t.span, s.span);
    }
}
