//! Error types for the VASS frontend.

use std::error::Error as StdError;
use std::fmt;

use crate::span::Span;

/// An error produced while lexing VASS source text.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Where the problem occurred.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl StdError for LexError {}

/// An error produced while parsing a VASS token stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Where the problem occurred.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl StdError for ParseError {}

/// The category of a semantic-analysis diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemaErrorKind {
    /// A name was referenced but never declared.
    UndeclaredName,
    /// A name was declared more than once in the same scope.
    DuplicateDeclaration,
    /// An expression or assignment has mismatched types.
    TypeMismatch,
    /// A VASS synthesizability restriction was violated (Section 3 of
    /// the paper), e.g. a `wait` statement, a `for` loop without static
    /// bounds, or a *signal* read after being assigned in a process.
    RestrictionViolation,
    /// An annotation is malformed or contradictory.
    BadAnnotation,
    /// A reference to something that exists but is used in an
    /// inappropriate role (e.g. assigning to an `in` port).
    InvalidUse,
}

impl fmt::Display for SemaErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SemaErrorKind::UndeclaredName => "undeclared name",
            SemaErrorKind::DuplicateDeclaration => "duplicate declaration",
            SemaErrorKind::TypeMismatch => "type mismatch",
            SemaErrorKind::RestrictionViolation => "VASS restriction violation",
            SemaErrorKind::BadAnnotation => "bad annotation",
            SemaErrorKind::InvalidUse => "invalid use",
        };
        f.write_str(s)
    }
}

/// A semantic-analysis diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    /// Which class of problem this is.
    pub kind: SemaErrorKind,
    /// Human-readable description of the problem.
    pub message: String,
    /// Where the problem occurred.
    pub span: Span,
}

impl SemaError {
    /// Construct a diagnostic.
    pub fn new(kind: SemaErrorKind, message: impl Into<String>, span: Span) -> Self {
        SemaError { kind, message: message.into(), span }
    }
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.span, self.message)
    }
}

impl StdError for SemaError {}

/// Any error the frontend can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Lexing failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
    /// Semantic analysis failed; all collected diagnostics are included.
    Sema(Vec<SemaError>),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex(e) => write!(f, "{e}"),
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Sema(errs) => {
                write!(f, "{} semantic error(s)", errs.len())?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl StdError for FrontendError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            FrontendError::Lex(e) => Some(e),
            FrontendError::Parse(e) => Some(e),
            FrontendError::Sema(errs) => errs.first().map(|e| e as _),
        }
    }
}

impl From<LexError> for FrontendError {
    fn from(e: LexError) -> Self {
        FrontendError::Lex(e)
    }
}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_message() {
        let e = LexError { message: "bad char".into(), span: Span::default() };
        let s = e.to_string();
        assert!(s.contains("1:1"));
        assert!(s.contains("bad char"));
    }

    #[test]
    fn sema_error_display() {
        let e = SemaError::new(SemaErrorKind::TypeMismatch, "real vs bit", Span::default());
        assert!(e.to_string().contains("type mismatch"));
        assert!(e.to_string().contains("real vs bit"));
    }

    #[test]
    fn frontend_error_aggregates_sema() {
        let errs = vec![
            SemaError::new(SemaErrorKind::UndeclaredName, "no `x`", Span::default()),
            SemaError::new(SemaErrorKind::InvalidUse, "assign to in port", Span::default()),
        ];
        let e = FrontendError::Sema(errs);
        let s = e.to_string();
        assert!(s.contains("2 semantic error(s)"));
        assert!(s.contains("no `x`"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrontendError>();
    }
}
