//! Expression nodes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::span::Span;

/// An identifier with its source span. VHDL identifiers are
/// case-insensitive; the lexer normalizes them to lower case, so two
/// [`Ident`]s refer to the same object iff their `name`s are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ident {
    /// Lower-cased identifier text.
    pub name: String,
    /// Where the identifier appeared.
    pub span: Span,
}

impl Ident {
    /// Construct an identifier (the caller is responsible for lower-casing).
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident { name: name.into(), span }
    }

    /// Construct a synthetic identifier not tied to source text.
    pub fn synthetic(name: impl Into<String>) -> Self {
        Ident { name: name.into(), span: Span::synthetic() }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Identity `+x`.
    Plus,
    /// Logical negation `not x`.
    Not,
    /// Absolute value `abs x`.
    Abs,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOp::Neg => "-",
            UnaryOp::Plus => "+",
            UnaryOp::Not => "not",
            UnaryOp::Abs => "abs",
        };
        f.write_str(s)
    }
}

/// Binary operators, in VHDL precedence classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `mod`
    Mod,
    /// `rem`
    Rem,
    /// `and`
    And,
    /// `or`
    Or,
    /// `xor`
    Xor,
    /// `nand`
    Nand,
    /// `nor`
    Nor,
    /// `&` (concatenation)
    Concat,
    /// `=`
    Eq,
    /// `/=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl BinaryOp {
    /// Whether the operator yields a boolean result.
    pub fn is_relational(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// Whether the operator is a logical connective.
    pub fn is_logical(&self) -> bool {
        matches!(
            self,
            BinaryOp::And | BinaryOp::Or | BinaryOp::Xor | BinaryOp::Nand | BinaryOp::Nor
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Pow => "**",
            BinaryOp::Mod => "mod",
            BinaryOp::Rem => "rem",
            BinaryOp::And => "and",
            BinaryOp::Or => "or",
            BinaryOp::Xor => "xor",
            BinaryOp::Nand => "nand",
            BinaryOp::Nor => "nor",
            BinaryOp::Concat => "&",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "/=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
        };
        f.write_str(s)
    }
}

/// VHDL-AMS attributes supported by VASS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeKind {
    /// `q'above(threshold)` — boolean event source (paper Section 3).
    Above,
    /// `q'dot` — time derivative.
    Dot,
    /// `q'integ` — time integral.
    Integ,
    /// `q'delayed(t)` — delayed quantity.
    Delayed,
    /// `t'across` — the across (voltage) facet of a terminal.
    Across,
    /// `t'through` — the through (current) facet of a terminal.
    Through,
}

impl AttributeKind {
    /// Parse an attribute name (already lower-cased).
    pub fn from_name(name: &str) -> Option<AttributeKind> {
        Some(match name {
            "above" => AttributeKind::Above,
            "dot" => AttributeKind::Dot,
            "integ" => AttributeKind::Integ,
            "delayed" => AttributeKind::Delayed,
            "across" => AttributeKind::Across,
            "through" => AttributeKind::Through,
            _ => return None,
        })
    }
}

impl fmt::Display for AttributeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttributeKind::Above => "above",
            AttributeKind::Dot => "dot",
            AttributeKind::Integ => "integ",
            AttributeKind::Delayed => "delayed",
            AttributeKind::Across => "across",
            AttributeKind::Through => "through",
        };
        f.write_str(s)
    }
}

/// The payload of an expression node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Character literal (`'0'`, `'1'`).
    Char(char),
    /// String literal (bit-vector value).
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// A simple name reference.
    Name(Ident),
    /// `name(args)` — a function call or indexed name; semantic
    /// analysis resolves which.
    Call {
        /// Callee or array name.
        name: Ident,
        /// Arguments or indices.
        args: Vec<Expr>,
    },
    /// `prefix'attr` or `prefix'attr(args)`.
    Attribute {
        /// The attributed name.
        prefix: Ident,
        /// Which attribute.
        attr: AttributeKind,
        /// Attribute arguments (e.g. the `'above` threshold).
        args: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// An expression: kind plus source span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Where it appeared.
    pub span: Span,
}

impl Expr {
    /// Construct an expression.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// A synthetic real-literal expression.
    pub fn real(value: f64) -> Self {
        Expr::new(ExprKind::Real(value), Span::synthetic())
    }

    /// A synthetic name expression.
    pub fn name(name: impl Into<String>) -> Self {
        Expr::new(ExprKind::Name(Ident::synthetic(name)), Span::synthetic())
    }

    /// Iterate over all simple-name and attribute-prefix identifiers
    /// referenced anywhere in this expression (used for data-dependency
    /// analysis during compilation).
    pub fn referenced_names(&self) -> Vec<&Ident> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a Ident>) {
        match &self.kind {
            ExprKind::Name(id) => out.push(id),
            ExprKind::Call { args, .. } => {
                for a in args {
                    a.collect_names(out);
                }
            }
            ExprKind::Attribute { prefix, args, .. } => {
                out.push(prefix);
                for a in args {
                    a.collect_names(out);
                }
            }
            ExprKind::Unary { operand, .. } => operand.collect_names(out),
            ExprKind::Binary { lhs, rhs, .. } => {
                lhs.collect_names(out);
                rhs.collect_names(out);
            }
            _ => {}
        }
    }

    /// If the expression is a compile-time numeric constant, evaluate it.
    /// Handles literals and arithmetic on them; names are not folded
    /// (use the semantic analyzer's constant environment for that).
    pub fn const_fold(&self) -> Option<f64> {
        match &self.kind {
            ExprKind::Int(v) => Some(*v as f64),
            ExprKind::Real(v) => Some(*v),
            ExprKind::Unary { op, operand } => {
                let v = operand.const_fold()?;
                match op {
                    UnaryOp::Neg => Some(-v),
                    UnaryOp::Plus => Some(v),
                    UnaryOp::Abs => Some(v.abs()),
                    UnaryOp::Not => None,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let a = lhs.const_fold()?;
                let b = rhs.const_fold()?;
                match op {
                    BinaryOp::Add => Some(a + b),
                    BinaryOp::Sub => Some(a - b),
                    BinaryOp::Mul => Some(a * b),
                    BinaryOp::Div => Some(a / b),
                    BinaryOp::Pow => Some(a.powf(b)),
                    BinaryOp::Mod => Some(a.rem_euclid(b)),
                    BinaryOp::Rem => Some(a % b),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Int(v) => write!(f, "{v}"),
            ExprKind::Real(v) => write!(f, "{v}"),
            ExprKind::Char(c) => write!(f, "'{c}'"),
            ExprKind::Str(s) => write!(f, "\"{s}\""),
            ExprKind::Bool(b) => write!(f, "{b}"),
            ExprKind::Name(id) => write!(f, "{id}"),
            ExprKind::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ExprKind::Attribute { prefix, attr, args } => {
                write!(f, "{prefix}'{attr}")?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            ExprKind::Unary { op, operand } => match op {
                UnaryOp::Not | UnaryOp::Abs => write!(f, "{op} ({operand})"),
                // VHDL permits a sign only at the head of a simple
                // expression, so print signs pre-parenthesized.
                _ => write!(f, "({op}({operand}))"),
            },
            ExprKind::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bin(op: BinaryOp, l: Expr, r: Expr) -> Expr {
        Expr::new(
            ExprKind::Binary { op, lhs: Box::new(l), rhs: Box::new(r) },
            Span::synthetic(),
        )
    }

    #[test]
    fn const_fold_arithmetic() {
        let e = bin(BinaryOp::Mul, Expr::real(3.0), bin(BinaryOp::Add, Expr::real(1.0), Expr::real(2.0)));
        assert_eq!(e.const_fold(), Some(9.0));
    }

    #[test]
    fn const_fold_stops_at_names() {
        let e = bin(BinaryOp::Add, Expr::real(1.0), Expr::name("x"));
        assert_eq!(e.const_fold(), None);
    }

    #[test]
    fn referenced_names_walks_tree() {
        let attr = Expr::new(
            ExprKind::Attribute {
                prefix: Ident::synthetic("line"),
                attr: AttributeKind::Above,
                args: vec![Expr::name("vth")],
            },
            Span::synthetic(),
        );
        let e = bin(BinaryOp::And, attr, Expr::name("c1"));
        let names: Vec<_> = e.referenced_names().iter().map(|i| i.name.clone()).collect();
        assert_eq!(names, vec!["line", "vth", "c1"]);
    }

    #[test]
    fn display_roundtrips_structure() {
        let e = bin(BinaryOp::Add, Expr::name("a"), Expr::real(2.0));
        assert_eq!(e.to_string(), "(a + 2)");
    }

    #[test]
    fn attribute_kind_from_name() {
        assert_eq!(AttributeKind::from_name("above"), Some(AttributeKind::Above));
        assert_eq!(AttributeKind::from_name("dot"), Some(AttributeKind::Dot));
        assert_eq!(AttributeKind::from_name("ramp"), None);
    }

    #[test]
    fn relational_and_logical_classification() {
        assert!(BinaryOp::LtEq.is_relational());
        assert!(!BinaryOp::Add.is_relational());
        assert!(BinaryOp::Nand.is_logical());
        assert!(!BinaryOp::Lt.is_logical());
    }
}
