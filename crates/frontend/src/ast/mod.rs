//! Abstract syntax tree for the VASS subset.
//!
//! The tree mirrors the structure of Section 3 of the paper: design
//! files hold entities and architectures; architectures hold
//! declarations plus concurrent statements (simultaneous statements,
//! procedurals, processes); sequential statements appear inside
//! procedurals, processes, and function bodies.

pub mod decl;
pub mod design;
pub mod expr;
pub mod stmt;

pub use decl::{FunctionDecl, ObjectClass, ObjectDecl, TypeName};
pub use design::{Architecture, DesignFile, DesignUnit, Entity, Mode, PortClass, PortDecl};
pub use expr::{AttributeKind, BinaryOp, Expr, ExprKind, Ident, UnaryOp};
pub use stmt::{CaseArm, Choice, ConcurrentStmt, Direction, SeqStmt, SeqStmtKind};
