//! Declaration nodes: objects (quantities, signals, constants,
//! variables, terminals), types, and functions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::annot::Annotation;
use crate::ast::expr::{Expr, Ident};
use crate::ast::stmt::SeqStmt;
use crate::span::Span;

/// The object class of a declared name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Continuous-time analog value (VHDL-AMS `quantity`).
    Quantity,
    /// Event-driven value (VHDL `signal`).
    Signal,
    /// Structural connection point (VHDL-AMS `terminal`).
    Terminal,
    /// Compile-time constant.
    Constant,
    /// Process/procedural-local variable.
    Variable,
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ObjectClass::Quantity => "quantity",
            ObjectClass::Signal => "signal",
            ObjectClass::Terminal => "terminal",
            ObjectClass::Constant => "constant",
            ObjectClass::Variable => "variable",
        })
    }
}

/// Type names supported by VASS. Quantities must be of *nature type*
/// (real, or composites of reals); signals are of nature or bit-vector
/// types (paper §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TypeName {
    /// `real` — the nature scalar type.
    Real,
    /// `integer` (constants and loop variables only).
    Integer,
    /// `boolean`.
    Boolean,
    /// `bit`.
    Bit,
    /// `bit_vector(lo to|downto hi)`.
    BitVector {
        /// Left bound.
        lo: i64,
        /// Right bound.
        hi: i64,
    },
    /// `real_vector(lo to hi)` — a composite of nature type.
    RealVector {
        /// Left bound.
        lo: i64,
        /// Right bound.
        hi: i64,
    },
    /// `electrical` — the predefined nature for terminals.
    Electrical,
}

impl TypeName {
    /// Whether this is a nature type (legal for quantities).
    pub fn is_nature(&self) -> bool {
        matches!(self, TypeName::Real | TypeName::RealVector { .. })
    }

    /// Whether this is a discrete type (legal for signals).
    pub fn is_discrete(&self) -> bool {
        matches!(
            self,
            TypeName::Bit | TypeName::Boolean | TypeName::BitVector { .. } | TypeName::Integer
        )
    }

    /// Number of scalar elements (1 for scalars).
    pub fn element_count(&self) -> usize {
        match self {
            TypeName::BitVector { lo, hi } | TypeName::RealVector { lo, hi } => {
                (hi - lo).unsigned_abs() as usize + 1
            }
            _ => 1,
        }
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeName::Real => f.write_str("real"),
            TypeName::Integer => f.write_str("integer"),
            TypeName::Boolean => f.write_str("boolean"),
            TypeName::Bit => f.write_str("bit"),
            TypeName::BitVector { lo, hi } => write!(f, "bit_vector({lo} to {hi})"),
            TypeName::RealVector { lo, hi } => write!(f, "real_vector({lo} to {hi})"),
            TypeName::Electrical => f.write_str("electrical"),
        }
    }
}

/// A (possibly multi-name) object declaration, e.g.
/// `quantity rvar : real;` or `constant r1c : real := 220.0;`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectDecl {
    /// Object class.
    pub class: ObjectClass,
    /// Declared names (one declaration can introduce several).
    pub names: Vec<Ident>,
    /// Declared type.
    pub ty: TypeName,
    /// Initial value, if any.
    pub init: Option<Expr>,
    /// VASS annotations attached to the declaration.
    pub annotations: Vec<Annotation>,
    /// Declaration span.
    pub span: Span,
}

/// A function declaration with a body (VASS functions are pure and are
/// inlined by the compiler).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDecl {
    /// Function name.
    pub name: Ident,
    /// Parameters: `(name, type)` pairs.
    pub params: Vec<(Ident, TypeName)>,
    /// Return type.
    pub ret: TypeName,
    /// Local variable declarations.
    pub decls: Vec<ObjectDecl>,
    /// Body statements (must end in a `return`).
    pub body: Vec<SeqStmt>,
    /// Declaration span.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nature_and_discrete_classification() {
        assert!(TypeName::Real.is_nature());
        assert!(TypeName::RealVector { lo: 0, hi: 3 }.is_nature());
        assert!(!TypeName::Bit.is_nature());
        assert!(TypeName::Bit.is_discrete());
        assert!(TypeName::BitVector { lo: 0, hi: 7 }.is_discrete());
        assert!(!TypeName::Real.is_discrete());
    }

    #[test]
    fn element_count() {
        assert_eq!(TypeName::Real.element_count(), 1);
        assert_eq!(TypeName::BitVector { lo: 0, hi: 7 }.element_count(), 8);
        assert_eq!(TypeName::BitVector { lo: 7, hi: 0 }.element_count(), 8);
        assert_eq!(TypeName::RealVector { lo: 1, hi: 3 }.element_count(), 3);
    }

    #[test]
    fn type_display() {
        assert_eq!(TypeName::BitVector { lo: 0, hi: 3 }.to_string(), "bit_vector(0 to 3)");
        assert_eq!(TypeName::Electrical.to_string(), "electrical");
    }
}
