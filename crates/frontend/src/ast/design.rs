//! Design-unit nodes: entities, architectures, packages.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::annot::Annotation;
use crate::ast::decl::{FunctionDecl, ObjectClass, ObjectDecl, TypeName};
use crate::ast::expr::Ident;
use crate::ast::stmt::ConcurrentStmt;
use crate::span::Span;

/// Port object class (paper §3: VASS accepts signal, quantity, and
/// terminal ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortClass {
    /// Continuous-time analog port.
    Quantity,
    /// Event-driven port.
    Signal,
    /// Structural connection port. VASS requires that only one of its
    /// through/across facets be used in the body.
    Terminal,
}

impl fmt::Display for PortClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortClass::Quantity => "quantity",
            PortClass::Signal => "signal",
            PortClass::Terminal => "terminal",
        })
    }
}

impl From<PortClass> for ObjectClass {
    fn from(pc: PortClass) -> ObjectClass {
        match pc {
            PortClass::Quantity => ObjectClass::Quantity,
            PortClass::Signal => ObjectClass::Signal,
            PortClass::Terminal => ObjectClass::Terminal,
        }
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// `in`
    In,
    /// `out`
    Out,
    /// `inout`
    Inout,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::In => "in",
            Mode::Out => "out",
            Mode::Inout => "inout",
        })
    }
}

/// A port declaration in an entity header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortDecl {
    /// Port class.
    pub class: PortClass,
    /// Declared names.
    pub names: Vec<Ident>,
    /// Direction.
    pub mode: Mode,
    /// Declared type.
    pub ty: TypeName,
    /// VASS annotations (kind, ranges, impedance, limiting, drive).
    pub annotations: Vec<Annotation>,
    /// Declaration span.
    pub span: Span,
}

/// An entity declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// Entity name.
    pub name: Ident,
    /// Port list.
    pub ports: Vec<PortDecl>,
    /// Declaration span.
    pub span: Span,
}

impl Entity {
    /// Find a port declaration covering `name`.
    pub fn port(&self, name: &str) -> Option<&PortDecl> {
        self.ports.iter().find(|p| p.names.iter().any(|n| n.name == name))
    }
}

/// An architecture body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Architecture name.
    pub name: Ident,
    /// Name of the entity this body belongs to.
    pub entity: Ident,
    /// Declarative part: objects.
    pub decls: Vec<ObjectDecl>,
    /// Declarative part: functions.
    pub functions: Vec<FunctionDecl>,
    /// Statement part.
    pub stmts: Vec<ConcurrentStmt>,
    /// Body span.
    pub span: Span,
}

/// A package declaration (constants and functions shared by designs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Package {
    /// Package name.
    pub name: Ident,
    /// Declared constants.
    pub decls: Vec<ObjectDecl>,
    /// Declared functions.
    pub functions: Vec<FunctionDecl>,
    /// Declaration span.
    pub span: Span,
}

/// One unit in a design file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DesignUnit {
    /// An entity declaration.
    Entity(Entity),
    /// An architecture body.
    Architecture(Architecture),
    /// A package declaration (VASS merges package and package body).
    Package(Package),
}

impl DesignUnit {
    /// The unit's name.
    pub fn name(&self) -> &Ident {
        match self {
            DesignUnit::Entity(e) => &e.name,
            DesignUnit::Architecture(a) => &a.name,
            DesignUnit::Package(p) => &p.name,
        }
    }
}

/// A parsed VASS design file.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DesignFile {
    /// The units in declaration order.
    pub units: Vec<DesignUnit>,
}

impl DesignFile {
    /// An empty design file.
    pub fn new() -> Self {
        DesignFile::default()
    }

    /// Find the entity named `name`.
    pub fn entity(&self, name: &str) -> Option<&Entity> {
        self.units.iter().find_map(|u| match u {
            DesignUnit::Entity(e) if e.name.name == name => Some(e),
            _ => None,
        })
    }

    /// Find an architecture of entity `entity` (the first if several).
    pub fn architecture_of(&self, entity: &str) -> Option<&Architecture> {
        self.units.iter().find_map(|u| match u {
            DesignUnit::Architecture(a) if a.entity.name == entity => Some(a),
            _ => None,
        })
    }

    /// All entities in the file.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        self.units.iter().filter_map(|u| match u {
            DesignUnit::Entity(e) => Some(e),
            _ => None,
        })
    }

    /// All architectures in the file.
    pub fn architectures(&self) -> impl Iterator<Item = &Architecture> {
        self.units.iter().filter_map(|u| match u {
            DesignUnit::Architecture(a) => Some(a),
            _ => None,
        })
    }

    /// All packages in the file.
    pub fn packages(&self) -> impl Iterator<Item = &Package> {
        self.units.iter().filter_map(|u| match u {
            DesignUnit::Package(p) => Some(p),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(name: &str) -> Entity {
        Entity { name: Ident::synthetic(name), ports: vec![], span: Span::synthetic() }
    }

    #[test]
    fn design_file_lookup() {
        let mut df = DesignFile::new();
        df.units.push(DesignUnit::Entity(entity("telephone")));
        df.units.push(DesignUnit::Architecture(Architecture {
            name: Ident::synthetic("behavioral"),
            entity: Ident::synthetic("telephone"),
            decls: vec![],
            functions: vec![],
            stmts: vec![],
            span: Span::synthetic(),
        }));
        assert!(df.entity("telephone").is_some());
        assert!(df.entity("nope").is_none());
        assert!(df.architecture_of("telephone").is_some());
        assert_eq!(df.entities().count(), 1);
        assert_eq!(df.architectures().count(), 1);
        assert_eq!(df.packages().count(), 0);
    }

    #[test]
    fn port_class_converts_to_object_class() {
        assert_eq!(ObjectClass::from(PortClass::Quantity), ObjectClass::Quantity);
        assert_eq!(ObjectClass::from(PortClass::Terminal), ObjectClass::Terminal);
    }

    #[test]
    fn entity_port_lookup_handles_multi_name_decls() {
        let mut e = entity("e");
        e.ports.push(PortDecl {
            class: PortClass::Quantity,
            names: vec![Ident::synthetic("a"), Ident::synthetic("b")],
            mode: Mode::In,
            ty: TypeName::Real,
            annotations: vec![],
            span: Span::synthetic(),
        });
        assert!(e.port("a").is_some());
        assert!(e.port("b").is_some());
        assert!(e.port("c").is_none());
    }
}
