//! Sequential and concurrent statement nodes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::annot::Annotation;
use crate::ast::decl::ObjectDecl;
use crate::ast::expr::{Expr, Ident};
use crate::span::Span;

/// Loop/range direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// `to` — ascending.
    To,
    /// `downto` — descending.
    Downto,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::To => "to",
            Direction::Downto => "downto",
        })
    }
}

/// A `when` choice in a case statement or a simultaneous case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Choice {
    /// A specific value.
    Expr(Expr),
    /// `others`.
    Others,
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::Expr(e) => write!(f, "{e}"),
            Choice::Others => f.write_str("others"),
        }
    }
}

/// One arm of a (sequential or simultaneous) case statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseArm<S> {
    /// The `when` choices (at least one).
    pub choices: Vec<Choice>,
    /// The statements executed when a choice matches.
    pub body: Vec<S>,
}

/// The payload of a sequential statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SeqStmtKind {
    /// `target := value;` — variable/quantity assignment inside a
    /// procedural or function body.
    VarAssign {
        /// Assigned name.
        target: Ident,
        /// Optional array index.
        index: Option<Expr>,
        /// Assigned value.
        value: Expr,
    },
    /// `target <= value;` — *signal* assignment inside a process.
    SignalAssign {
        /// Assigned signal.
        target: Ident,
        /// Assigned value.
        value: Expr,
    },
    /// `if ... then ... elsif ... else ... end if;`
    If {
        /// `(condition, body)` pairs: the `if` branch followed by any
        /// `elsif` branches.
        branches: Vec<(Expr, Vec<SeqStmt>)>,
        /// The `else` body (may be empty).
        else_body: Vec<SeqStmt>,
    },
    /// `case selector is when ... end case;`
    Case {
        /// The selecting expression.
        selector: Expr,
        /// The arms.
        arms: Vec<CaseArm<SeqStmt>>,
    },
    /// `for var in lo to|downto hi loop ... end loop;` — VASS requires
    /// statically-known bounds so the loop can be unrolled (paper §3).
    For {
        /// Loop variable.
        var: Ident,
        /// Lower bound expression.
        lo: Expr,
        /// Direction.
        dir: Direction,
        /// Upper bound expression.
        hi: Expr,
        /// Loop body.
        body: Vec<SeqStmt>,
    },
    /// `while cond loop ... end loop;` — compiled into the sampling
    /// structure of paper Fig. 4.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<SeqStmt>,
    },
    /// `return expr;` (function bodies only).
    Return(Option<Expr>),
    /// `null;`
    Null,
    /// `wait ...;` — parsed so semantic analysis can reject it with a
    /// targeted diagnostic (VASS processes must not contain waits).
    Wait,
}

/// A sequential statement: kind plus span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqStmt {
    /// What kind of statement.
    pub kind: SeqStmtKind,
    /// Where it appeared.
    pub span: Span,
}

impl SeqStmt {
    /// Construct a sequential statement.
    pub fn new(kind: SeqStmtKind, span: Span) -> Self {
        SeqStmt { kind, span }
    }
}

/// A concurrent statement inside an architecture body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConcurrentStmt {
    /// `lhs == rhs;` — a simple simultaneous statement (a DAE).
    SimpleSimultaneous {
        /// Optional label.
        label: Option<Ident>,
        /// Left side of the relation.
        lhs: Expr,
        /// Right side of the relation.
        rhs: Expr,
        /// Statement span.
        span: Span,
    },
    /// `if cond use ... elsif ... else ... end use;` — selects among
    /// sets of simultaneous statements based on *signal* conditions.
    SimultaneousIf {
        /// Optional label.
        label: Option<Ident>,
        /// `(condition, body)` pairs.
        branches: Vec<(Expr, Vec<ConcurrentStmt>)>,
        /// The `else` body (may be empty).
        else_body: Vec<ConcurrentStmt>,
        /// Statement span.
        span: Span,
    },
    /// `case selector use when ... end case;`
    SimultaneousCase {
        /// Optional label.
        label: Option<Ident>,
        /// Selector expression.
        selector: Expr,
        /// Arms of simultaneous statements.
        arms: Vec<CaseArm<ConcurrentStmt>>,
        /// Statement span.
        span: Span,
    },
    /// A process statement — the event-driven part (paper §3): resumes
    /// on events in its sensitivity list, runs its body to completion,
    /// suspends. No `wait` statements.
    Process {
        /// Optional label.
        label: Option<Ident>,
        /// Sensitivity expressions: `'above` attributes or port names.
        sensitivity: Vec<Expr>,
        /// Process-local declarations (variables).
        decls: Vec<ObjectDecl>,
        /// Body.
        body: Vec<SeqStmt>,
        /// Statement span.
        span: Span,
    },
    /// A procedural statement — explicit continuous-time behavior as an
    /// instruction sequence, compiled to a pure functional block.
    Procedural {
        /// Optional label.
        label: Option<Ident>,
        /// Procedural-local declarations (variables).
        decls: Vec<ObjectDecl>,
        /// Body.
        body: Vec<SeqStmt>,
        /// Statement span.
        span: Span,
    },
    /// A quantity-annotation statement (VASS extension): attaches
    /// signal-property annotations to an architecture-local quantity.
    AnnotationStmt {
        /// The annotated quantity.
        target: Ident,
        /// The annotations.
        annotations: Vec<Annotation>,
        /// Statement span.
        span: Span,
    },
}

impl ConcurrentStmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            ConcurrentStmt::SimpleSimultaneous { span, .. }
            | ConcurrentStmt::SimultaneousIf { span, .. }
            | ConcurrentStmt::SimultaneousCase { span, .. }
            | ConcurrentStmt::Process { span, .. }
            | ConcurrentStmt::Procedural { span, .. }
            | ConcurrentStmt::AnnotationStmt { span, .. } => *span,
        }
    }

    /// Whether this is part of the continuous-time partition (anything
    /// except a process).
    pub fn is_continuous_time(&self) -> bool {
        !matches!(self, ConcurrentStmt::Process { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_display() {
        assert_eq!(Direction::To.to_string(), "to");
        assert_eq!(Direction::Downto.to_string(), "downto");
    }

    #[test]
    fn concurrent_partition_classification() {
        let sim = ConcurrentStmt::SimpleSimultaneous {
            label: None,
            lhs: Expr::name("y"),
            rhs: Expr::name("x"),
            span: Span::synthetic(),
        };
        assert!(sim.is_continuous_time());
        let proc_stmt = ConcurrentStmt::Process {
            label: None,
            sensitivity: vec![],
            decls: vec![],
            body: vec![],
            span: Span::synthetic(),
        };
        assert!(!proc_stmt.is_continuous_time());
    }

    #[test]
    fn choice_display() {
        assert_eq!(Choice::Others.to_string(), "others");
        assert_eq!(Choice::Expr(Expr::real(1.0)).to_string(), "1");
    }
}
