//! VASS synthesis annotations (paper Section 3).
//!
//! As opposed to plain VHDL-AMS, the VASS subset includes a declarative
//! mechanism for describing properties of quantities and ports: signal
//! kind (voltage/current), value and frequency ranges, terminal
//! impedances, output limiting, and drive requirements. The paper's
//! receiver example annotates its output as
//! `IS voltage limited` / `drives 270 Ohm at 285 mV peak`, from which
//! the synthesis tool infers a dedicated output stage (`block 4` in
//! paper Fig. 7) that is *not* derivable from the behavioral code.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Electrical kind of an analog signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalKind {
    /// The signal is a voltage (across quantity).
    Voltage,
    /// The signal is a current (through quantity).
    Current,
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SignalKind::Voltage => "voltage",
            SignalKind::Current => "current",
        })
    }
}

/// A single VASS annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Annotation {
    /// `voltage` / `current` — the electrical kind of the quantity.
    Kind(SignalKind),
    /// `limited [at <level>]` — the output saturates at the given level
    /// (volts). When no level is given the synthesized output stage's
    /// native limit applies.
    Limited {
        /// Clipping level in volts, if specified.
        level: Option<f64>,
    },
    /// `drives <load> at <peak> peak` — the port must drive `load` ohms
    /// at `peak` volts peak amplitude; forces a low-output-impedance
    /// output stage.
    Drives {
        /// Load resistance in ohms.
        load_ohms: f64,
        /// Peak amplitude in volts.
        peak_volts: f64,
    },
    /// `range <lo> to <hi>` — the value range of the quantity (volts or
    /// amperes according to its kind).
    ValueRange {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// `frequency <lo> to <hi>` — the frequency band of interest in Hz.
    FrequencyRange {
        /// Lower band edge in Hz.
        lo: f64,
        /// Upper band edge in Hz.
        hi: f64,
    },
    /// `impedance <ohms>` — the impedance at a terminal port.
    Impedance {
        /// Impedance magnitude in ohms.
        ohms: f64,
    },
}

impl Annotation {
    /// Whether two annotations describe the same property (and thus
    /// conflict when both are present with different payloads).
    pub fn same_property(&self, other: &Annotation) -> bool {
        use Annotation::*;
        matches!(
            (self, other),
            (Kind(_), Kind(_))
                | (Limited { .. }, Limited { .. })
                | (Drives { .. }, Drives { .. })
                | (ValueRange { .. }, ValueRange { .. })
                | (FrequencyRange { .. }, FrequencyRange { .. })
                | (Impedance { .. }, Impedance { .. })
        )
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::Kind(k) => write!(f, "{k}"),
            Annotation::Limited { level: Some(v) } => write!(f, "limited at {v} V"),
            Annotation::Limited { level: None } => f.write_str("limited"),
            Annotation::Drives { load_ohms, peak_volts } => {
                write!(f, "drives {load_ohms} ohm at {peak_volts} V peak")
            }
            Annotation::ValueRange { lo, hi } => write!(f, "range {lo} to {hi}"),
            Annotation::FrequencyRange { lo, hi } => write!(f, "frequency {lo} Hz to {hi} Hz"),
            Annotation::Impedance { ohms } => write!(f, "impedance {ohms} ohm"),
        }
    }
}

/// A convenient view over the annotation list of one object.
///
/// # Examples
///
/// ```
/// use vase_frontend::annot::{Annotation, AnnotationSet, SignalKind};
///
/// let set = AnnotationSet::new(&[
///     Annotation::Kind(SignalKind::Voltage),
///     Annotation::Limited { level: Some(1.5) },
/// ]);
/// assert_eq!(set.kind(), Some(SignalKind::Voltage));
/// assert!(set.is_limited());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AnnotationSet<'a> {
    annotations: &'a [Annotation],
}

impl<'a> AnnotationSet<'a> {
    /// Wrap an annotation slice.
    pub fn new(annotations: &'a [Annotation]) -> Self {
        AnnotationSet { annotations }
    }

    /// The declared signal kind, if any.
    pub fn kind(&self) -> Option<SignalKind> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::Kind(k) => Some(*k),
            _ => None,
        })
    }

    /// Whether the object is annotated `limited`.
    pub fn is_limited(&self) -> bool {
        self.annotations.iter().any(|a| matches!(a, Annotation::Limited { .. }))
    }

    /// The limiting level in volts, if one was given.
    pub fn limit_level(&self) -> Option<f64> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::Limited { level } => *level,
            _ => None,
        })
    }

    /// The drive requirement `(load_ohms, peak_volts)`, if any.
    pub fn drive(&self) -> Option<(f64, f64)> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::Drives { load_ohms, peak_volts } => Some((*load_ohms, *peak_volts)),
            _ => None,
        })
    }

    /// The declared value range, if any.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::ValueRange { lo, hi } => Some((*lo, *hi)),
            _ => None,
        })
    }

    /// The declared frequency band, if any.
    pub fn frequency_range(&self) -> Option<(f64, f64)> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::FrequencyRange { lo, hi } => Some((*lo, *hi)),
            _ => None,
        })
    }

    /// The declared terminal impedance, if any.
    pub fn impedance(&self) -> Option<f64> {
        self.annotations.iter().find_map(|a| match a {
            Annotation::Impedance { ohms } => Some(*ohms),
            _ => None,
        })
    }

    /// Whether an output stage must be synthesized for this object
    /// (paper §6: `block 4` of the receiver was inferred from the
    /// limiting/drive attributes, not from VHDL-AMS code).
    pub fn needs_output_stage(&self) -> bool {
        self.is_limited() || self.drive().is_some()
    }

    /// Find the first pair of conflicting annotations (same property,
    /// different payload).
    pub fn find_conflict(&self) -> Option<(&'a Annotation, &'a Annotation)> {
        for (i, a) in self.annotations.iter().enumerate() {
            for b in &self.annotations[i + 1..] {
                if a.same_property(b) && a != b {
                    return Some((a, b));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_find_their_annotation() {
        let anns = [
            Annotation::Kind(SignalKind::Current),
            Annotation::Drives { load_ohms: 270.0, peak_volts: 0.285 },
            Annotation::ValueRange { lo: -1.0, hi: 1.0 },
            Annotation::FrequencyRange { lo: 300.0, hi: 3400.0 },
            Annotation::Impedance { ohms: 1e4 },
        ];
        let set = AnnotationSet::new(&anns);
        assert_eq!(set.kind(), Some(SignalKind::Current));
        assert_eq!(set.drive(), Some((270.0, 0.285)));
        assert_eq!(set.value_range(), Some((-1.0, 1.0)));
        assert_eq!(set.frequency_range(), Some((300.0, 3400.0)));
        assert_eq!(set.impedance(), Some(1e4));
        assert!(!set.is_limited());
        assert!(set.needs_output_stage());
    }

    #[test]
    fn empty_set_has_nothing() {
        let set = AnnotationSet::new(&[]);
        assert_eq!(set.kind(), None);
        assert!(!set.needs_output_stage());
        assert!(set.find_conflict().is_none());
    }

    #[test]
    fn conflict_detection() {
        let anns =
            [Annotation::Kind(SignalKind::Voltage), Annotation::Kind(SignalKind::Current)];
        let set = AnnotationSet::new(&anns);
        assert!(set.find_conflict().is_some());

        let anns = [Annotation::Kind(SignalKind::Voltage), Annotation::Kind(SignalKind::Voltage)];
        assert!(AnnotationSet::new(&anns).find_conflict().is_none());
    }

    #[test]
    fn limited_without_level() {
        let anns = [Annotation::Limited { level: None }];
        let set = AnnotationSet::new(&anns);
        assert!(set.is_limited());
        assert_eq!(set.limit_level(), None);
        assert!(set.needs_output_stage());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Annotation::Kind(SignalKind::Voltage).to_string(), "voltage");
        assert_eq!(
            Annotation::Drives { load_ohms: 270.0, peak_volts: 0.285 }.to_string(),
            "drives 270 ohm at 0.285 V peak"
        );
        assert_eq!(Annotation::Limited { level: Some(1.5) }.to_string(), "limited at 1.5 V");
    }
}
