//! VASS synthesizability restrictions (paper Section 3).
//!
//! These checks go beyond ordinary static semantics: they ensure a
//! specification can be realized as a continuous signal-flow structure
//! plus a small FSM:
//!
//! * `for` loops must have statically-known bounds (so they can be
//!   unrolled into the signal-flow graph);
//! * process bodies must not contain `wait` statements;
//! * a *signal* must not be referenced after being assigned within a
//!   process body (so each signal maps to exactly one memory block);
//! * `while` loop bodies must not assign *signals* (the loop denotes a
//!   sampling functionality over quantities/variables).

use std::collections::HashSet;

use crate::ast::{Expr, SeqStmt, SeqStmtKind};
use crate::error::{SemaError, SemaErrorKind};
use crate::sema::symbols::SymbolTable;

/// Check the "no reference after assignment" rule for *signals* in a
/// process body: once a signal is assigned, later statements may not
/// read it. This lets the compiler allocate exactly one memory block
/// per signal (paper Section 4).
pub fn check_signal_read_after_write(
    body: &[SeqStmt],
    symbols: &SymbolTable,
    errors: &mut Vec<SemaError>,
) {
    let mut written = HashSet::new();
    walk_raw(body, symbols, &mut written, errors);
}

fn is_signal(symbols: &SymbolTable, name: &str) -> bool {
    symbols.get(name).is_some_and(|s| s.is_signal())
}

fn check_reads(
    expr: &Expr,
    symbols: &SymbolTable,
    written: &HashSet<String>,
    errors: &mut Vec<SemaError>,
) {
    for id in expr.referenced_names() {
        if written.contains(&id.name) && is_signal(symbols, &id.name) {
            errors.push(SemaError::new(
                SemaErrorKind::RestrictionViolation,
                format!(
                    "signal `{}` is referenced after being assigned in the same process; \
                     VASS requires one memory block per signal (no read-after-write)",
                    id.name
                ),
                id.span,
            ));
        }
    }
}

fn walk_raw(
    body: &[SeqStmt],
    symbols: &SymbolTable,
    written: &mut HashSet<String>,
    errors: &mut Vec<SemaError>,
) {
    for stmt in body {
        match &stmt.kind {
            SeqStmtKind::VarAssign { index, value, .. } => {
                if let Some(idx) = index {
                    check_reads(idx, symbols, written, errors);
                }
                check_reads(value, symbols, written, errors);
            }
            SeqStmtKind::SignalAssign { target, value } => {
                check_reads(value, symbols, written, errors);
                if is_signal(symbols, &target.name) {
                    written.insert(target.name.clone());
                }
            }
            SeqStmtKind::If { branches, else_body } => {
                for (cond, _) in branches {
                    check_reads(cond, symbols, written, errors);
                }
                // Writes in any branch poison subsequent reads: take the
                // union of writes across branches.
                let mut union = written.clone();
                for (_, b) in branches {
                    let mut w = written.clone();
                    walk_raw(b, symbols, &mut w, errors);
                    union.extend(w);
                }
                let mut w = written.clone();
                walk_raw(else_body, symbols, &mut w, errors);
                union.extend(w);
                *written = union;
            }
            SeqStmtKind::Case { selector, arms } => {
                check_reads(selector, symbols, written, errors);
                let mut union = written.clone();
                for arm in arms {
                    let mut w = written.clone();
                    walk_raw(&arm.body, symbols, &mut w, errors);
                    union.extend(w);
                }
                *written = union;
            }
            SeqStmtKind::For { lo, hi, body, .. } => {
                check_reads(lo, symbols, written, errors);
                check_reads(hi, symbols, written, errors);
                walk_raw(body, symbols, written, errors);
            }
            SeqStmtKind::While { cond, body } => {
                check_reads(cond, symbols, written, errors);
                walk_raw(body, symbols, written, errors);
            }
            SeqStmtKind::Return(Some(e)) => check_reads(e, symbols, written, errors),
            SeqStmtKind::Return(None) | SeqStmtKind::Null | SeqStmtKind::Wait => {}
        }
    }
}

/// Reject `wait` statements anywhere in a statement list (VASS process
/// bodies run to completion and suspend implicitly).
pub fn check_no_wait(body: &[SeqStmt], errors: &mut Vec<SemaError>) {
    for stmt in body {
        match &stmt.kind {
            SeqStmtKind::Wait => errors.push(SemaError::new(
                SemaErrorKind::RestrictionViolation,
                "`wait` statements are not allowed in VASS processes; processes resume on \
                 sensitivity-list events, run to completion, and suspend",
                stmt.span,
            )),
            SeqStmtKind::If { branches, else_body } => {
                for (_, b) in branches {
                    check_no_wait(b, errors);
                }
                check_no_wait(else_body, errors);
            }
            SeqStmtKind::Case { arms, .. } => {
                for arm in arms {
                    check_no_wait(&arm.body, errors);
                }
            }
            SeqStmtKind::For { body, .. } | SeqStmtKind::While { body, .. } => {
                check_no_wait(body, errors);
            }
            _ => {}
        }
    }
}

/// Reject *signal* assignments inside `while` bodies: a VASS `while`
/// denotes sampling over continuous values, and its outputs go through
/// sample-and-hold circuits, not signal memories (paper Fig. 4).
pub fn check_while_restrictions(
    body: &[SeqStmt],
    symbols: &SymbolTable,
    errors: &mut Vec<SemaError>,
) {
    for stmt in body {
        match &stmt.kind {
            SeqStmtKind::While { body: wbody, .. } => {
                forbid_signal_assign(wbody, symbols, errors);
                // nested whiles inside the body are checked recursively
                check_while_restrictions(wbody, symbols, errors);
            }
            SeqStmtKind::If { branches, else_body } => {
                for (_, b) in branches {
                    check_while_restrictions(b, symbols, errors);
                }
                check_while_restrictions(else_body, symbols, errors);
            }
            SeqStmtKind::Case { arms, .. } => {
                for arm in arms {
                    check_while_restrictions(&arm.body, symbols, errors);
                }
            }
            SeqStmtKind::For { body, .. } => check_while_restrictions(body, symbols, errors),
            _ => {}
        }
    }
}

fn forbid_signal_assign(body: &[SeqStmt], symbols: &SymbolTable, errors: &mut Vec<SemaError>) {
    for stmt in body {
        match &stmt.kind {
            SeqStmtKind::SignalAssign { target, .. } if is_signal(symbols, &target.name) => {
                errors.push(SemaError::new(
                    SemaErrorKind::RestrictionViolation,
                    format!(
                        "signal `{}` is assigned inside a `while` loop; VASS while-loops \
                         denote sampling functionality and may only assign variables and \
                         quantities",
                        target.name
                    ),
                    stmt.span,
                ));
            }
            SeqStmtKind::If { branches, else_body } => {
                for (_, b) in branches {
                    forbid_signal_assign(b, symbols, errors);
                }
                forbid_signal_assign(else_body, symbols, errors);
            }
            SeqStmtKind::Case { arms, .. } => {
                for arm in arms {
                    forbid_signal_assign(&arm.body, symbols, errors);
                }
            }
            SeqStmtKind::For { body, .. } | SeqStmtKind::While { body, .. } => {
                forbid_signal_assign(body, symbols, errors);
            }
            _ => {}
        }
    }
}

/// Fold an expression to a compile-time constant, consulting declared
/// constants. Used for `for`-loop bounds, which VASS requires to be
/// statically known so loops can be unrolled.
pub fn fold_static(expr: &Expr, symbols: &SymbolTable) -> Option<f64> {
    use crate::ast::ExprKind;
    match &expr.kind {
        ExprKind::Int(v) => Some(*v as f64),
        ExprKind::Real(v) => Some(*v),
        ExprKind::Name(id) => symbols.get(&id.name).and_then(|s| s.const_value),
        ExprKind::Unary { op, operand } => {
            let v = fold_static(operand, symbols)?;
            match op {
                crate::ast::UnaryOp::Neg => Some(-v),
                crate::ast::UnaryOp::Plus => Some(v),
                crate::ast::UnaryOp::Abs => Some(v.abs()),
                crate::ast::UnaryOp::Not => None,
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let a = fold_static(lhs, symbols)?;
            let b = fold_static(rhs, symbols)?;
            use crate::ast::BinaryOp::*;
            match op {
                Add => Some(a + b),
                Sub => Some(a - b),
                Mul => Some(a * b),
                Div => Some(a / b),
                Pow => Some(a.powf(b)),
                Mod => Some(a.rem_euclid(b)),
                Rem => Some(a % b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Whether a `for`-loop bound is statically determined: it folds to a
/// constant, or it is an arithmetic combination of constants and
/// *enclosing* loop variables (which take a known value in every
/// unrolled copy of the outer loop, so the nested loop still unrolls —
/// e.g. `for j in 1 to i` inside `for i in 1 to 4`).
fn is_static_bound(expr: &Expr, symbols: &SymbolTable, loop_vars: &HashSet<String>) -> bool {
    use crate::ast::ExprKind;
    if fold_static(expr, symbols).is_some() {
        return true;
    }
    match &expr.kind {
        ExprKind::Name(id) => loop_vars.contains(&id.name),
        ExprKind::Unary { op, operand } => {
            use crate::ast::UnaryOp::*;
            matches!(op, Neg | Plus | Abs) && is_static_bound(operand, symbols, loop_vars)
        }
        ExprKind::Binary { op, lhs, rhs } => {
            use crate::ast::BinaryOp::*;
            matches!(op, Add | Sub | Mul | Div | Pow | Mod | Rem)
                && is_static_bound(lhs, symbols, loop_vars)
                && is_static_bound(rhs, symbols, loop_vars)
        }
        _ => false,
    }
}

/// Check that every `for` loop in `body` has statically-known bounds.
pub fn check_for_bounds(body: &[SeqStmt], symbols: &SymbolTable, errors: &mut Vec<SemaError>) {
    let mut loop_vars = HashSet::new();
    check_for_bounds_in(body, symbols, &mut loop_vars, errors);
}

fn check_for_bounds_in(
    body: &[SeqStmt],
    symbols: &SymbolTable,
    loop_vars: &mut HashSet<String>,
    errors: &mut Vec<SemaError>,
) {
    for stmt in body {
        match &stmt.kind {
            SeqStmtKind::For { var, lo, hi, body: fbody, .. } => {
                if !is_static_bound(lo, symbols, loop_vars)
                    || !is_static_bound(hi, symbols, loop_vars)
                {
                    errors.push(SemaError::new(
                        SemaErrorKind::RestrictionViolation,
                        format!(
                            "for-loop over `{}` must have statically-known bounds so the \
                             loop can be unrolled into the signal-flow structure",
                            var.name
                        ),
                        stmt.span,
                    ));
                }
                // Inside the body the loop variable is static either
                // way; treating it so even after a bad bound avoids
                // cascading errors on the nested loops.
                let added = loop_vars.insert(var.name.clone());
                check_for_bounds_in(fbody, symbols, loop_vars, errors);
                if added {
                    loop_vars.remove(&var.name);
                }
            }
            SeqStmtKind::If { branches, else_body } => {
                for (_, b) in branches {
                    check_for_bounds_in(b, symbols, loop_vars, errors);
                }
                check_for_bounds_in(else_body, symbols, loop_vars, errors);
            }
            SeqStmtKind::Case { arms, .. } => {
                for arm in arms {
                    check_for_bounds_in(&arm.body, symbols, loop_vars, errors);
                }
            }
            SeqStmtKind::While { body, .. } => {
                check_for_bounds_in(body, symbols, loop_vars, errors)
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ConcurrentStmt, ObjectClass, TypeName};
    use crate::parser::parse_design_file;
    use crate::sema::symbols::Symbol;
    use crate::span::Span;

    fn symbols() -> SymbolTable {
        let mut t = SymbolTable::new();
        for (n, c, ty) in [
            ("s1", ObjectClass::Signal, TypeName::Bit),
            ("s2", ObjectClass::Signal, TypeName::Bit),
            ("x", ObjectClass::Quantity, TypeName::Real),
        ] {
            t.insert(Symbol {
                name: n.into(),
                class: c,
                ty,
                mode: None,
                annotations: vec![],
                is_port: false,
                const_value: None,
                span: Span::synthetic(),
            })
            .expect("insert");
        }
        let mut n = Symbol {
            name: "lim".into(),
            class: ObjectClass::Constant,
            ty: TypeName::Integer,
            mode: None,
            annotations: vec![],
            is_port: false,
            const_value: Some(4.0),
            span: Span::synthetic(),
        };
        t.insert(n.clone()).expect("insert lim");
        n.name = "q".into();
        n.const_value = None;
        t.insert(n).expect("insert q");
        t
    }

    fn process_body(src: &str) -> Vec<SeqStmt> {
        let full = format!(
            "entity e is end entity; architecture a of e is begin
             process is variable v : real; variable i : integer; begin {src} end process;
             end architecture;"
        );
        let df = parse_design_file(&full).expect("parses");
        match &df.architecture_of("e").unwrap().stmts[0] {
            ConcurrentStmt::Process { body, .. } => body.clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn read_after_write_detected() {
        let body = process_body("s1 <= '1'; s2 <= s1;");
        let mut errors = Vec::new();
        check_signal_read_after_write(&body, &symbols(), &mut errors);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("s1"));
    }

    #[test]
    fn write_without_later_read_ok() {
        let body = process_body("s1 <= '1'; s2 <= '0';");
        let mut errors = Vec::new();
        check_signal_read_after_write(&body, &symbols(), &mut errors);
        assert!(errors.is_empty());
    }

    #[test]
    fn read_before_write_ok() {
        let body = process_body("s2 <= s1; s1 <= '1';");
        let mut errors = Vec::new();
        check_signal_read_after_write(&body, &symbols(), &mut errors);
        assert!(errors.is_empty());
    }

    #[test]
    fn write_in_branch_poisons_later_read() {
        let body = process_body(
            "if (x > 0.0) then s1 <= '1'; end if;
             s2 <= s1;",
        );
        let mut errors = Vec::new();
        check_signal_read_after_write(&body, &symbols(), &mut errors);
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn reads_within_sibling_branches_ok() {
        // Writing in one branch and reading in the *other* branch of the
        // same if is fine: only one branch executes.
        let body = process_body(
            "if (x > 0.0) then s1 <= '1'; else s2 <= s1; end if;",
        );
        let mut errors = Vec::new();
        check_signal_read_after_write(&body, &symbols(), &mut errors);
        assert!(errors.is_empty());
    }

    #[test]
    fn wait_rejected_even_nested() {
        let body = process_body("if (x > 0.0) then wait; end if;");
        let mut errors = Vec::new();
        check_no_wait(&body, &mut errors);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("wait"));
    }

    #[test]
    fn signal_assign_in_while_rejected() {
        let body = process_body("while x > 0.0 loop s1 <= '1'; end loop;");
        let mut errors = Vec::new();
        check_while_restrictions(&body, &symbols(), &mut errors);
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn var_assign_in_while_ok() {
        let body = process_body("while x > 0.0 loop v := v + 1.0; end loop;");
        let mut errors = Vec::new();
        check_while_restrictions(&body, &symbols(), &mut errors);
        assert!(errors.is_empty());
    }

    #[test]
    fn static_for_bounds_accepted() {
        let body = process_body("for i in 1 to lim loop v := v + x; end loop;");
        let mut errors = Vec::new();
        check_for_bounds(&body, &symbols(), &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn dynamic_for_bounds_rejected() {
        let body = process_body("for i in 1 to q loop v := v + x; end loop;");
        let mut errors = Vec::new();
        check_for_bounds(&body, &symbols(), &mut errors);
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn computed_static_bounds_accepted() {
        for src in [
            "for i in 0 to (lim - 1) loop v := v + x; end loop;",
            "for i in -lim to lim loop v := v + x; end loop;",
            "for i in 1 to 2 * lim + 1 loop v := v + x; end loop;",
        ] {
            let body = process_body(src);
            let mut errors = Vec::new();
            check_for_bounds(&body, &symbols(), &mut errors);
            assert!(errors.is_empty(), "{src}: {errors:?}");
        }
    }

    #[test]
    fn nested_loop_bound_on_outer_var_accepted() {
        let body = process_body(
            "for i in 1 to lim loop
               for j in 1 to i loop v := v + x; end loop;
             end loop;",
        );
        let mut errors = Vec::new();
        check_for_bounds(&body, &symbols(), &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
        // The loop variable is only static *inside* its loop.
        let body = process_body(
            "for i in 1 to lim loop v := v + x; end loop;
             for j in 1 to i loop v := v + x; end loop;",
        );
        let mut errors = Vec::new();
        check_for_bounds(&body, &symbols(), &mut errors);
        assert_eq!(errors.len(), 1, "{errors:?}");
    }

    #[test]
    fn dynamic_outer_bound_reported_once_not_cascaded() {
        let body = process_body(
            "for i in 1 to q loop
               for j in 1 to i loop v := v + x; end loop;
             end loop;",
        );
        let mut errors = Vec::new();
        check_for_bounds(&body, &symbols(), &mut errors);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].message.contains("`i`"));
    }

    #[test]
    fn fold_static_uses_constants() {
        let t = symbols();
        let e = crate::parser::parse_expression("2 * lim - 1").expect("parses");
        assert_eq!(fold_static(&e, &t), Some(7.0));
        let e = crate::parser::parse_expression("q + 1").expect("parses");
        assert_eq!(fold_static(&e, &t), None);
    }
}
