//! Semantic analysis for VASS designs.
//!
//! [`analyze`] resolves names, infers and checks types, validates
//! annotations, and enforces the VASS synthesizability restrictions
//! from Section 3 of the paper (see [`restrict`] for the list).

mod check;
pub mod restrict;
pub mod symbols;
pub mod types;

use crate::ast::DesignFile;
use crate::error::FrontendError;

pub use check::AnalyzedArchitecture;
pub use symbols::{Symbol, SymbolTable};
pub use types::{Ty, TypeEnv};

/// A semantically-checked design: the (cloned) AST plus per-architecture
/// symbol tables.
#[derive(Debug, Clone)]
pub struct AnalyzedDesign {
    /// The checked design.
    pub design: DesignFile,
    /// One entry per architecture body, in file order.
    pub architectures: Vec<AnalyzedArchitecture>,
}

impl AnalyzedDesign {
    /// Look up the analysis result for the architecture of `entity`.
    pub fn architecture_of(&self, entity: &str) -> Option<&AnalyzedArchitecture> {
        self.architectures.iter().find(|a| a.entity == entity)
    }
}

/// Run semantic analysis on a parsed design.
///
/// # Errors
///
/// Returns [`FrontendError::Sema`] carrying *all* collected diagnostics
/// (analysis does not stop at the first error).
///
/// # Examples
///
/// ```
/// use vase_frontend::{analyze, parse_design_file};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = parse_design_file(
///     "entity e is port (quantity x : in real is voltage;
///                        quantity y : out real is voltage);
///      end entity;
///      architecture a of e is begin y == 2.0 * x; end architecture;",
/// )?;
/// let analyzed = analyze(&design)?;
/// assert!(analyzed.architecture_of("e").is_some());
/// # Ok(())
/// # }
/// ```
pub fn analyze(design: &DesignFile) -> Result<AnalyzedDesign, FrontendError> {
    let checker = check::Checker::new(design);
    match checker.check() {
        Ok(architectures) => Ok(AnalyzedDesign { design: design.clone(), architectures }),
        Err(errors) => Err(FrontendError::Sema(errors)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{FrontendError, SemaErrorKind};
    use crate::parser::parse_design_file;

    fn analyze_src(src: &str) -> Result<AnalyzedDesign, FrontendError> {
        analyze(&parse_design_file(src).expect("parses"))
    }

    fn expect_kinds(src: &str) -> Vec<SemaErrorKind> {
        match analyze_src(src) {
            Err(FrontendError::Sema(errs)) => errs.into_iter().map(|e| e.kind).collect(),
            Ok(_) => panic!("expected semantic errors"),
            Err(other) => panic!("expected sema errors, got {other}"),
        }
    }

    const RECEIVER: &str = r#"
        entity telephone is
          port (
            quantity line  : in  real is voltage;
            quantity local : in  real is voltage;
            quantity earph : out real is voltage limited at 1.5 v
                                        drives 270 ohm at 285 mv peak
          );
        end entity;
        architecture behavioral of telephone is
          quantity rvar : real;
          signal c1 : bit;
          constant aline  : real := 0.5;
          constant alocal : real := 0.25;
          constant r1c : real := 220.0;
          constant r2c : real := 330.0;
          constant vth : real := 0.07;
        begin
          earph == (aline * line + alocal * local) * rvar;
          if (c1 = '1') use
            rvar == r1c;
          else
            rvar == r1c + r2c;
          end use;
          process (line'above(vth)) is
          begin
            if (line'above(vth) = true) then
              c1 <= '1';
            else
              c1 <= '0';
            end if;
          end process;
        end architecture;
    "#;

    #[test]
    fn receiver_module_from_paper_analyzes_cleanly() {
        let analyzed = analyze_src(RECEIVER).expect("analyzes");
        let arch = analyzed.architecture_of("telephone").expect("arch");
        assert!(arch.symbols.get("rvar").is_some());
        assert!(arch.symbols.get("c1").unwrap().is_signal());
        assert_eq!(arch.symbols.ports().count(), 3);
    }

    #[test]
    fn undeclared_name_in_simultaneous() {
        let kinds = expect_kinds(
            "entity e is port (quantity y : out real is voltage); end entity;
             architecture a of e is begin y == 2.0 * ghost; end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::UndeclaredName));
    }

    #[test]
    fn quantity_of_bit_type_rejected() {
        let kinds = expect_kinds(
            "entity e is end entity;
             architecture a of e is
               quantity q : bit;
             begin end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::TypeMismatch));
    }

    #[test]
    fn assigning_in_port_rejected() {
        let kinds = expect_kinds(
            "entity e is port (quantity x : in real is voltage); end entity;
             architecture a of e is begin
               procedural is begin x := 1.0; end procedural;
             end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::InvalidUse));
    }

    #[test]
    fn wait_in_process_rejected() {
        let kinds = expect_kinds(
            "entity e is end entity;
             architecture a of e is
               signal s : bit;
             begin
               process (s) is begin wait; end process;
             end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::RestrictionViolation));
    }

    #[test]
    fn process_without_sensitivity_rejected() {
        let kinds = expect_kinds(
            "entity e is end entity;
             architecture a of e is
               signal s : bit;
             begin
               process is begin s <= '1'; end process;
             end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::RestrictionViolation));
    }

    #[test]
    fn signal_read_after_write_rejected() {
        let kinds = expect_kinds(
            "entity e is end entity;
             architecture a of e is
               signal s1, s2 : bit;
             begin
               process (s1) is begin s2 <= '1'; s1 <= s2; end process;
             end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::RestrictionViolation));
    }

    #[test]
    fn quantity_in_simultaneous_if_condition_rejected() {
        let kinds = expect_kinds(
            "entity e is port (quantity x : in real is voltage;
                               quantity y : out real is voltage); end entity;
             architecture a of e is begin
               if (x > 0.0) use y == x; else y == 0.0 - x; end use;
             end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::RestrictionViolation));
    }

    #[test]
    fn conflicting_annotations_rejected() {
        let kinds = expect_kinds(
            "entity e is port (quantity x : in real is voltage current); end entity;
             architecture a of e is begin end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::BadAnnotation));
    }

    #[test]
    fn undriven_out_port_rejected() {
        let kinds = expect_kinds(
            "entity e is port (quantity y : out real is voltage); end entity;
             architecture a of e is begin end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::InvalidUse));
    }

    #[test]
    fn terminal_both_facets_rejected() {
        let kinds = expect_kinds(
            "entity e is port (terminal t : electrical;
                               quantity y : out real is voltage); end entity;
             architecture a of e is begin
               y == t'across + t'through;
             end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::RestrictionViolation));
    }

    #[test]
    fn terminal_single_facet_ok() {
        let result = analyze_src(
            "entity e is port (terminal t : electrical;
                               quantity y : out real is voltage); end entity;
             architecture a of e is begin
               y == 2.0 * t'across;
             end architecture;",
        );
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn function_without_return_rejected() {
        let kinds = expect_kinds(
            "entity e is end entity;
             architecture a of e is
               function f(x : real) return real is
               begin
                 null;
               end function;
             begin end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::InvalidUse));
    }

    #[test]
    fn function_call_arity_checked() {
        let kinds = expect_kinds(
            "entity e is port (quantity y : out real is voltage); end entity;
             architecture a of e is
               function sq(x : real) return real is
               begin return x * x; end function;
             begin
               y == sq(1.0, 2.0);
             end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::TypeMismatch));
    }

    #[test]
    fn package_constants_visible() {
        let result = analyze_src(
            "package consts is
               constant gain : real := 4.0;
             end package;
             entity e is port (quantity x : in real is voltage;
                               quantity y : out real is voltage); end entity;
             architecture a of e is begin
               y == gain * x;
             end architecture;",
        );
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn signal_assignment_outside_process_rejected() {
        let kinds = expect_kinds(
            "entity e is end entity;
             architecture a of e is
               signal s : bit;
             begin
               procedural is begin s <= '1'; end procedural;
             end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::RestrictionViolation));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let kinds = expect_kinds(
            "entity e is end entity;
             architecture a of e is
               quantity q : real;
               signal q : bit;
             begin end architecture;",
        );
        assert!(kinds.contains(&SemaErrorKind::DuplicateDeclaration));
    }

    #[test]
    fn all_errors_collected_not_just_first() {
        let kinds = expect_kinds(
            "entity e is end entity;
             architecture a of e is
               quantity q : bit;
               signal s : bit;
             begin
               process (s) is begin wait; end process;
             end architecture;",
        );
        assert!(kinds.len() >= 2, "{kinds:?}");
    }
}
