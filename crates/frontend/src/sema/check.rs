//! The architecture-level semantic checker.

use std::collections::{HashMap, HashSet};

use crate::annot::AnnotationSet;
use crate::ast::{
    Architecture, AttributeKind, ConcurrentStmt, DesignFile, Expr, ExprKind, FunctionDecl,
    Mode, ObjectClass, ObjectDecl, SeqStmt, SeqStmtKind,
};
use crate::error::{SemaError, SemaErrorKind};
use crate::sema::restrict;
use crate::sema::symbols::{Symbol, SymbolTable};
use crate::sema::types::{Ty, TypeEnv};
use crate::span::Span;

/// The result of analyzing one architecture.
#[derive(Debug, Clone)]
pub struct AnalyzedArchitecture {
    /// Architecture name.
    pub name: String,
    /// Name of the implemented entity.
    pub entity: String,
    /// All visible symbols (ports, architecture objects, process and
    /// procedural locals — locals are prefixed by nothing; VASS keeps a
    /// flat namespace per architecture and rejects shadowing).
    pub symbols: SymbolTable,
}

pub(crate) struct Checker<'a> {
    design: &'a DesignFile,
    pub errors: Vec<SemaError>,
}

impl<'a> Checker<'a> {
    pub(crate) fn new(design: &'a DesignFile) -> Self {
        Checker { design, errors: Vec::new() }
    }

    /// Check every architecture in the design.
    pub(crate) fn check(mut self) -> Result<Vec<AnalyzedArchitecture>, Vec<SemaError>> {
        let mut out = Vec::new();
        for arch in self.design.architectures() {
            if let Some(a) = self.check_architecture(arch) {
                out.push(a);
            }
        }
        if self.errors.is_empty() {
            Ok(out)
        } else {
            Err(self.errors)
        }
    }

    fn error(&mut self, kind: SemaErrorKind, msg: impl Into<String>, span: Span) {
        self.errors.push(SemaError::new(kind, msg, span));
    }

    fn check_architecture(&mut self, arch: &Architecture) -> Option<AnalyzedArchitecture> {
        let mut symbols = SymbolTable::new();

        // 1. Entity ports.
        let Some(entity) = self.design.entity(&arch.entity.name) else {
            self.error(
                SemaErrorKind::UndeclaredName,
                format!("architecture `{}` refers to unknown entity `{}`", arch.name, arch.entity),
                arch.entity.span,
            );
            return None;
        };
        for port in &entity.ports {
            for name in &port.names {
                let sym = Symbol {
                    name: name.name.clone(),
                    class: port.class.into(),
                    ty: port.ty.clone(),
                    mode: Some(port.mode),
                    annotations: port.annotations.clone(),
                    is_port: true,
                    const_value: None,
                    span: name.span,
                };
                if let Err(e) = symbols.insert(sym) {
                    self.errors.push(e);
                }
            }
            self.check_port_rules(port);
        }

        // 2. Package declarations are globally visible.
        for pkg in self.design.packages() {
            for decl in &pkg.decls {
                self.declare_objects(&mut symbols, decl);
            }
        }

        // 3. Architecture declarations.
        for decl in &arch.decls {
            self.declare_objects(&mut symbols, decl);
        }

        // 4. Hoist process/procedural locals into the flat table.
        for stmt in &arch.stmts {
            match stmt {
                ConcurrentStmt::Process { decls, .. }
                | ConcurrentStmt::Procedural { decls, .. } => {
                    for decl in decls {
                        if decl.class != ObjectClass::Variable
                            && decl.class != ObjectClass::Constant
                        {
                            self.error(
                                SemaErrorKind::InvalidUse,
                                format!(
                                    "only variables and constants may be declared locally; \
                                     `{}` is a {}",
                                    decl.names[0].name, decl.class
                                ),
                                decl.span,
                            );
                        }
                        self.declare_objects(&mut symbols, decl);
                    }
                }
                _ => {}
            }
        }

        // 5. Merge annotation statements into symbols.
        for stmt in &arch.stmts {
            if let ConcurrentStmt::AnnotationStmt { target, annotations, span } = stmt {
                match symbols.get_mut(&target.name) {
                    Some(sym) if sym.is_quantity() => {
                        sym.annotations.extend(annotations.iter().cloned());
                    }
                    Some(sym) => {
                        let class = sym.class;
                        self.error(
                            SemaErrorKind::InvalidUse,
                            format!("annotation target `{}` is a {class}, not a quantity", target.name),
                            *span,
                        );
                    }
                    None => self.error(
                        SemaErrorKind::UndeclaredName,
                        format!("annotation target `{}` is not declared", target.name),
                        *span,
                    ),
                }
            }
        }

        // 6. Annotation conflicts.
        let conflicts: Vec<(String, Span, String)> = symbols
            .iter()
            .filter_map(|sym| {
                AnnotationSet::new(&sym.annotations).find_conflict().map(|(a, b)| {
                    (sym.name.clone(), sym.span, format!("`{a}` conflicts with `{b}`"))
                })
            })
            .collect();
        for (name, span, msg) in conflicts {
            self.error(
                SemaErrorKind::BadAnnotation,
                format!("conflicting annotations on `{name}`: {msg}"),
                span,
            );
        }

        // 7. Functions (architecture-local + package-level).
        let mut functions: HashMap<String, &FunctionDecl> = HashMap::new();
        for pkg in self.design.packages() {
            for f in &pkg.functions {
                functions.insert(f.name.name.clone(), f);
            }
        }
        for f in &arch.functions {
            if functions.insert(f.name.name.clone(), f).is_some() {
                self.error(
                    SemaErrorKind::DuplicateDeclaration,
                    format!("function `{}` is declared more than once", f.name.name),
                    f.span,
                );
            }
        }
        for f in arch.functions.iter().chain(self.design.packages().flat_map(|p| &p.functions)) {
            self.check_function(f, &symbols, &functions);
        }

        // 8. Statements.
        for stmt in &arch.stmts {
            self.check_concurrent(stmt, &symbols, &functions);
        }

        // 9. Terminal single-facet usage across the whole architecture.
        self.check_terminal_facets(arch, &symbols);

        // 10. Every `out` quantity port must be driven.
        self.check_out_ports_driven(arch, entity, &symbols);

        Some(AnalyzedArchitecture {
            name: arch.name.name.clone(),
            entity: arch.entity.name.clone(),
            symbols,
        })
    }

    fn check_port_rules(&mut self, port: &crate::ast::PortDecl) {
        use crate::ast::PortClass;
        match port.class {
            PortClass::Quantity => {
                if !port.ty.is_nature() {
                    self.error(
                        SemaErrorKind::TypeMismatch,
                        format!(
                            "quantity port `{}` must have a nature type (real or real_vector), \
                             got {}",
                            port.names[0].name, port.ty
                        ),
                        port.span,
                    );
                }
            }
            PortClass::Signal => {
                if !(port.ty.is_discrete() || port.ty.is_nature()) {
                    self.error(
                        SemaErrorKind::TypeMismatch,
                        format!(
                            "signal port `{}` must have a discrete or nature type, got {}",
                            port.names[0].name, port.ty
                        ),
                        port.span,
                    );
                }
            }
            PortClass::Terminal => {
                if port.ty != crate::ast::TypeName::Electrical {
                    self.error(
                        SemaErrorKind::TypeMismatch,
                        format!(
                            "terminal port `{}` must be of nature `electrical`, got {}",
                            port.names[0].name, port.ty
                        ),
                        port.span,
                    );
                }
            }
        }
    }

    fn declare_objects(&mut self, symbols: &mut SymbolTable, decl: &ObjectDecl) {
        // Class/type coherence.
        match decl.class {
            ObjectClass::Quantity if !decl.ty.is_nature() => {
                self.error(
                    SemaErrorKind::TypeMismatch,
                    format!(
                        "quantity `{}` must have a nature type, got {}",
                        decl.names[0].name, decl.ty
                    ),
                    decl.span,
                );
            }
            ObjectClass::Signal if !(decl.ty.is_discrete() || decl.ty.is_nature()) => {
                self.error(
                    SemaErrorKind::TypeMismatch,
                    format!(
                        "signal `{}` must have a discrete or nature type, got {}",
                        decl.names[0].name, decl.ty
                    ),
                    decl.span,
                );
            }
            _ => {}
        }
        let const_value = if decl.class == ObjectClass::Constant {
            decl.init.as_ref().and_then(|e| restrict::fold_static(e, symbols))
        } else {
            None
        };
        if decl.class == ObjectClass::Constant && decl.init.is_none() {
            self.error(
                SemaErrorKind::InvalidUse,
                format!("constant `{}` must have an initializer", decl.names[0].name),
                decl.span,
            );
        }
        for name in &decl.names {
            let sym = Symbol {
                name: name.name.clone(),
                class: decl.class,
                ty: decl.ty.clone(),
                mode: None,
                annotations: decl.annotations.clone(),
                is_port: false,
                const_value,
                span: name.span,
            };
            if let Err(e) = symbols.insert(sym) {
                self.errors.push(e);
            }
        }
    }

    fn check_function(
        &mut self,
        f: &FunctionDecl,
        arch_symbols: &SymbolTable,
        functions: &HashMap<String, &FunctionDecl>,
    ) {
        // Functions see only their parameters and locals (purity).
        let mut local = SymbolTable::new();
        for (pname, pty) in &f.params {
            let sym = Symbol {
                name: pname.name.clone(),
                class: ObjectClass::Variable,
                ty: pty.clone(),
                mode: None,
                annotations: vec![],
                is_port: false,
                const_value: None,
                span: pname.span,
            };
            if let Err(e) = local.insert(sym) {
                self.errors.push(e);
            }
        }
        for decl in &f.decls {
            self.declare_objects(&mut local, decl);
        }
        // Constants from the architecture scope remain visible.
        for sym in arch_symbols.iter() {
            if sym.class == ObjectClass::Constant && !local.contains(&sym.name) {
                let _ = local.insert(sym.clone());
            }
        }
        let env = TypeEnv::new(&local, functions);
        let mut saw_return = false;
        self.check_seq_body(&f.body, &env, SeqContext::Function, &mut saw_return);
        if !saw_return {
            self.error(
                SemaErrorKind::InvalidUse,
                format!("function `{}` has no `return` statement", f.name.name),
                f.span,
            );
        }
        restrict::check_for_bounds(&f.body, &local, &mut self.errors);
        restrict::check_no_wait(&f.body, &mut self.errors);
    }

    fn check_concurrent(
        &mut self,
        stmt: &ConcurrentStmt,
        symbols: &SymbolTable,
        functions: &HashMap<String, &FunctionDecl>,
    ) {
        let env = TypeEnv::new(symbols, functions);
        match stmt {
            ConcurrentStmt::SimpleSimultaneous { lhs, rhs, span, .. } => {
                for side in [lhs, rhs] {
                    match env.infer(side) {
                        Ok(t) if t.is_numeric() => {}
                        Ok(t) => self.error(
                            SemaErrorKind::TypeMismatch,
                            format!("simultaneous statement sides must be real-valued, got {t}"),
                            *span,
                        ),
                        Err(e) => self.errors.push(e),
                    }
                }
            }
            ConcurrentStmt::SimultaneousIf { branches, else_body, .. } => {
                for (cond, body) in branches {
                    self.check_event_condition(cond, &env, symbols);
                    for s in body {
                        self.check_concurrent(s, symbols, functions);
                    }
                }
                for s in else_body {
                    self.check_concurrent(s, symbols, functions);
                }
            }
            ConcurrentStmt::SimultaneousCase { selector, arms, .. } => {
                match env.infer(selector) {
                    Ok(Ty::Bit | Ty::Boolean | Ty::BitVector | Ty::Integer) => {}
                    Ok(t) => self.error(
                        SemaErrorKind::TypeMismatch,
                        format!("simultaneous case selector must be discrete, got {t}"),
                        selector.span,
                    ),
                    Err(e) => self.errors.push(e),
                }
                for arm in arms {
                    for s in &arm.body {
                        self.check_concurrent(s, symbols, functions);
                    }
                }
            }
            ConcurrentStmt::Process { sensitivity, body, span, .. } => {
                if sensitivity.is_empty() {
                    self.error(
                        SemaErrorKind::RestrictionViolation,
                        "VASS processes must have a sensitivity list (they have no `wait` \
                         statements to suspend on)",
                        *span,
                    );
                }
                for sens in sensitivity {
                    self.check_sensitivity_entry(sens, &env, symbols);
                }
                let mut saw_return = false;
                self.check_seq_body(body, &env, SeqContext::Process, &mut saw_return);
                restrict::check_no_wait(body, &mut self.errors);
                restrict::check_signal_read_after_write(body, symbols, &mut self.errors);
                restrict::check_for_bounds(body, symbols, &mut self.errors);
                restrict::check_while_restrictions(body, symbols, &mut self.errors);
            }
            ConcurrentStmt::Procedural { body, span: _, .. } => {
                let mut saw_return = false;
                self.check_seq_body(body, &env, SeqContext::Procedural, &mut saw_return);
                restrict::check_no_wait(body, &mut self.errors);
                restrict::check_for_bounds(body, symbols, &mut self.errors);
                restrict::check_while_restrictions(body, symbols, &mut self.errors);
            }
            ConcurrentStmt::AnnotationStmt { .. } => {} // handled during table building
        }
    }

    /// Conditions of simultaneous if/case statements select among modes
    /// of continuous-time behavior and must be event-driven: they may
    /// reference signals, constants, and `'above` attributes, but not
    /// raw quantities (paper Section 3's behavioral model).
    fn check_event_condition(&mut self, cond: &Expr, env: &TypeEnv<'_>, symbols: &SymbolTable) {
        match env.infer(cond) {
            Ok(Ty::Boolean) => {}
            Ok(t) => self.error(
                SemaErrorKind::TypeMismatch,
                format!("condition must be boolean, got {t}"),
                cond.span,
            ),
            Err(e) => self.errors.push(e),
        }
        let mut quantities_outside_above = Vec::new();
        collect_raw_quantity_refs(cond, symbols, &mut quantities_outside_above);
        for id in quantities_outside_above {
            self.error(
                SemaErrorKind::RestrictionViolation,
                format!(
                    "quantity `{}` referenced directly in an event-driven condition; use a \
                     signal set by a process or the `'above` attribute",
                    id.name
                ),
                id.span,
            );
        }
    }

    fn check_sensitivity_entry(&mut self, sens: &Expr, env: &TypeEnv<'_>, symbols: &SymbolTable) {
        match &sens.kind {
            ExprKind::Attribute { attr: AttributeKind::Above, .. } => {
                if let Err(e) = env.infer(sens) {
                    self.errors.push(e);
                }
            }
            ExprKind::Name(id) => match symbols.get(&id.name) {
                Some(sym) if sym.is_signal() => {}
                Some(sym) => self.error(
                    SemaErrorKind::RestrictionViolation,
                    format!(
                        "sensitivity entry `{}` is a {}; only signals and 'above events \
                         may resume a process",
                        id.name, sym.class
                    ),
                    id.span,
                ),
                None => self.error(
                    SemaErrorKind::UndeclaredName,
                    format!("`{}` is not declared", id.name),
                    id.span,
                ),
            },
            _ => self.error(
                SemaErrorKind::RestrictionViolation,
                "sensitivity entries must be signal names or 'above attributes",
                sens.span,
            ),
        }
    }

    fn check_seq_body(
        &mut self,
        body: &[SeqStmt],
        env: &TypeEnv<'_>,
        ctx: SeqContext,
        saw_return: &mut bool,
    ) {
        for stmt in body {
            self.check_seq_stmt(stmt, env, ctx, saw_return);
        }
    }

    fn check_seq_stmt(
        &mut self,
        stmt: &SeqStmt,
        env: &TypeEnv<'_>,
        ctx: SeqContext,
        saw_return: &mut bool,
    ) {
        match &stmt.kind {
            SeqStmtKind::VarAssign { target, index, value } => {
                let target_ty = match env.symbols.get(&target.name) {
                    Some(sym) => {
                        if !sym.is_writable() {
                            self.error(
                                SemaErrorKind::InvalidUse,
                                format!("cannot assign to `in` port `{}`", target.name),
                                target.span,
                            );
                        }
                        if sym.is_signal() {
                            self.error(
                                SemaErrorKind::InvalidUse,
                                format!(
                                    "`{}` is a signal; use `<=` for signal assignment",
                                    target.name
                                ),
                                target.span,
                            );
                        }
                        if ctx == SeqContext::Process && sym.is_quantity() {
                            self.error(
                                SemaErrorKind::RestrictionViolation,
                                format!(
                                    "process bodies are event-driven and may not assign \
                                     quantity `{}` with `:=`; drive quantities from the \
                                     continuous-time part",
                                    target.name
                                ),
                                target.span,
                            );
                        }
                        let base = Ty::from_type_name(&sym.ty);
                        if index.is_some() {
                            match base {
                                Ty::RealVector => Some(Ty::Real),
                                Ty::BitVector => Some(Ty::Bit),
                                other => {
                                    self.error(
                                        SemaErrorKind::InvalidUse,
                                        format!("`{}` of type {other} cannot be indexed", target.name),
                                        target.span,
                                    );
                                    None
                                }
                            }
                        } else {
                            Some(base)
                        }
                    }
                    None => {
                        self.error(
                            SemaErrorKind::UndeclaredName,
                            format!("`{}` is not declared", target.name),
                            target.span,
                        );
                        None
                    }
                };
                if let Some(idx) = index {
                    match env.infer(idx) {
                        Ok(Ty::Integer) => {}
                        Ok(t) => self.error(
                            SemaErrorKind::TypeMismatch,
                            format!("index must be an integer, got {t}"),
                            idx.span,
                        ),
                        Err(e) => self.errors.push(e),
                    }
                }
                match env.infer(value) {
                    Ok(vt) => {
                        if let Some(tt) = target_ty {
                            if !tt.accepts(vt) {
                                self.error(
                                    SemaErrorKind::TypeMismatch,
                                    format!("cannot assign {vt} to `{}` of type {tt}", target.name),
                                    stmt.span,
                                );
                            }
                        }
                    }
                    Err(e) => self.errors.push(e),
                }
            }
            SeqStmtKind::SignalAssign { target, value } => {
                if ctx != SeqContext::Process {
                    self.error(
                        SemaErrorKind::RestrictionViolation,
                        "signal assignment (`<=`) is only allowed inside processes",
                        stmt.span,
                    );
                }
                match env.symbols.get(&target.name) {
                    Some(sym) if sym.is_signal() => {
                        if !sym.is_writable() {
                            self.error(
                                SemaErrorKind::InvalidUse,
                                format!("cannot assign to `in` port `{}`", target.name),
                                target.span,
                            );
                        }
                        let tt = Ty::from_type_name(&sym.ty);
                        match env.infer(value) {
                            Ok(vt) if tt.accepts(vt) => {}
                            Ok(vt) => self.error(
                                SemaErrorKind::TypeMismatch,
                                format!("cannot assign {vt} to signal `{}` of type {tt}", target.name),
                                stmt.span,
                            ),
                            Err(e) => self.errors.push(e),
                        }
                    }
                    Some(sym) => {
                        let class = sym.class;
                        self.error(
                            SemaErrorKind::InvalidUse,
                            format!("`<=` target `{}` is a {class}, not a signal", target.name),
                            target.span,
                        );
                    }
                    None => self.error(
                        SemaErrorKind::UndeclaredName,
                        format!("`{}` is not declared", target.name),
                        target.span,
                    ),
                }
            }
            SeqStmtKind::If { branches, else_body } => {
                for (cond, body) in branches {
                    match env.infer(cond) {
                        Ok(Ty::Boolean) => {}
                        Ok(t) => self.error(
                            SemaErrorKind::TypeMismatch,
                            format!("if-condition must be boolean, got {t}"),
                            cond.span,
                        ),
                        Err(e) => self.errors.push(e),
                    }
                    self.check_seq_body(body, env, ctx, saw_return);
                }
                self.check_seq_body(else_body, env, ctx, saw_return);
            }
            SeqStmtKind::Case { selector, arms } => {
                if let Err(e) = env.infer(selector) {
                    self.errors.push(e);
                }
                for arm in arms {
                    for choice in &arm.choices {
                        if let crate::ast::Choice::Expr(e) = choice {
                            if let Err(err) = env.infer(e) {
                                self.errors.push(err);
                            }
                        }
                    }
                    self.check_seq_body(&arm.body, env, ctx, saw_return);
                }
            }
            SeqStmtKind::For { var, lo, hi, body, .. } => {
                for bound in [lo, hi] {
                    match env.infer(bound) {
                        Ok(t) if t.is_numeric() => {}
                        Ok(t) => self.error(
                            SemaErrorKind::TypeMismatch,
                            format!("for-loop bound must be numeric, got {t}"),
                            bound.span,
                        ),
                        Err(e) => self.errors.push(e),
                    }
                }
                let mut inner = TypeEnv::new(env.symbols, env.functions);
                inner.loop_vars = env.loop_vars.clone();
                inner.loop_vars.push(var.name.clone());
                self.check_seq_body(body, &inner, ctx, saw_return);
            }
            SeqStmtKind::While { cond, body } => {
                match env.infer(cond) {
                    Ok(Ty::Boolean) => {}
                    Ok(t) => self.error(
                        SemaErrorKind::TypeMismatch,
                        format!("while-condition must be boolean, got {t}"),
                        cond.span,
                    ),
                    Err(e) => self.errors.push(e),
                }
                self.check_seq_body(body, env, ctx, saw_return);
            }
            SeqStmtKind::Return(value) => {
                *saw_return = true;
                if ctx != SeqContext::Function {
                    self.error(
                        SemaErrorKind::InvalidUse,
                        "`return` is only allowed inside function bodies",
                        stmt.span,
                    );
                }
                if let Some(v) = value {
                    if let Err(e) = env.infer(v) {
                        self.errors.push(e);
                    }
                }
            }
            SeqStmtKind::Null => {}
            SeqStmtKind::Wait => {} // reported by restrict::check_no_wait
        }
    }

    /// Each terminal port may use only one of its `'across`/`'through`
    /// facets in the whole specification (paper Section 3).
    fn check_terminal_facets(&mut self, arch: &Architecture, symbols: &SymbolTable) {
        let mut across: HashSet<String> = HashSet::new();
        let mut through: HashSet<String> = HashSet::new();
        let mut spans: HashMap<String, Span> = HashMap::new();
        for stmt in &arch.stmts {
            collect_terminal_facets(stmt, &mut across, &mut through, &mut spans);
        }
        for name in across.intersection(&through) {
            let Some(symbol) = symbols.get(name) else { continue };
            if symbol.class == ObjectClass::Terminal {
                // Point at a use site if one was collected, otherwise at
                // the terminal's declaration — never at a made-up 1:1.
                let span = spans.get(name).copied().unwrap_or(symbol.span);
                self.error(
                    SemaErrorKind::RestrictionViolation,
                    format!(
                        "terminal `{name}` uses both its 'across and 'through facets; VASS \
                         permits only one facet per terminal port"
                    ),
                    span,
                );
            }
        }
    }

    fn check_out_ports_driven(
        &mut self,
        arch: &Architecture,
        entity: &crate::ast::Entity,
        symbols: &SymbolTable,
    ) {
        let mut driven: HashSet<String> = HashSet::new();
        for stmt in &arch.stmts {
            collect_driven_names(stmt, &mut driven);
        }
        for port in &entity.ports {
            if port.mode != Mode::Out || port.class != crate::ast::PortClass::Quantity {
                continue;
            }
            for name in &port.names {
                if !driven.contains(&name.name) && symbols.contains(&name.name) {
                    self.error(
                        SemaErrorKind::InvalidUse,
                        format!(
                            "out quantity port `{}` is never driven by any concurrent statement",
                            name.name
                        ),
                        name.span,
                    );
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqContext {
    Process,
    Procedural,
    Function,
}

/// Collect quantity names referenced outside `'above` attributes.
fn collect_raw_quantity_refs<'e>(
    expr: &'e Expr,
    symbols: &SymbolTable,
    out: &mut Vec<&'e crate::ast::Ident>,
) {
    match &expr.kind {
        ExprKind::Name(id) if symbols.get(&id.name).is_some_and(|s| s.is_quantity()) => {
            out.push(id);
        }
        ExprKind::Attribute { attr: AttributeKind::Above, args, .. } => {
            // the 'above event is legal; only descend into the threshold
            for a in args {
                collect_raw_quantity_refs(a, symbols, out);
            }
        }
        ExprKind::Attribute { args, .. } => {
            for a in args {
                collect_raw_quantity_refs(a, symbols, out);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_raw_quantity_refs(a, symbols, out);
            }
        }
        ExprKind::Unary { operand, .. } => collect_raw_quantity_refs(operand, symbols, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_raw_quantity_refs(lhs, symbols, out);
            collect_raw_quantity_refs(rhs, symbols, out);
        }
        _ => {}
    }
}

fn collect_terminal_facets_expr(
    expr: &Expr,
    across: &mut HashSet<String>,
    through: &mut HashSet<String>,
    spans: &mut HashMap<String, Span>,
) {
    match &expr.kind {
        ExprKind::Attribute { prefix, attr, args } => {
            match attr {
                AttributeKind::Across => {
                    across.insert(prefix.name.clone());
                    spans.entry(prefix.name.clone()).or_insert(prefix.span);
                }
                AttributeKind::Through => {
                    through.insert(prefix.name.clone());
                    spans.entry(prefix.name.clone()).or_insert(prefix.span);
                }
                _ => {}
            }
            for a in args {
                collect_terminal_facets_expr(a, across, through, spans);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_terminal_facets_expr(a, across, through, spans);
            }
        }
        ExprKind::Unary { operand, .. } => {
            collect_terminal_facets_expr(operand, across, through, spans)
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_terminal_facets_expr(lhs, across, through, spans);
            collect_terminal_facets_expr(rhs, across, through, spans);
        }
        _ => {}
    }
}

fn collect_terminal_facets(
    stmt: &ConcurrentStmt,
    across: &mut HashSet<String>,
    through: &mut HashSet<String>,
    spans: &mut HashMap<String, Span>,
) {
    let mut exprs: Vec<&Expr> = Vec::new();
    collect_stmt_exprs(stmt, &mut exprs);
    for e in exprs {
        collect_terminal_facets_expr(e, across, through, spans);
    }
}

fn collect_stmt_exprs<'a>(stmt: &'a ConcurrentStmt, out: &mut Vec<&'a Expr>) {
    match stmt {
        ConcurrentStmt::SimpleSimultaneous { lhs, rhs, .. } => {
            out.push(lhs);
            out.push(rhs);
        }
        ConcurrentStmt::SimultaneousIf { branches, else_body, .. } => {
            for (cond, body) in branches {
                out.push(cond);
                for s in body {
                    collect_stmt_exprs(s, out);
                }
            }
            for s in else_body {
                collect_stmt_exprs(s, out);
            }
        }
        ConcurrentStmt::SimultaneousCase { selector, arms, .. } => {
            out.push(selector);
            for arm in arms {
                for s in &arm.body {
                    collect_stmt_exprs(s, out);
                }
            }
        }
        ConcurrentStmt::Process { sensitivity, body, .. } => {
            for s in sensitivity {
                out.push(s);
            }
            collect_seq_exprs(body, out);
        }
        ConcurrentStmt::Procedural { body, .. } => collect_seq_exprs(body, out),
        ConcurrentStmt::AnnotationStmt { .. } => {}
    }
}

fn collect_seq_exprs<'a>(body: &'a [SeqStmt], out: &mut Vec<&'a Expr>) {
    for stmt in body {
        match &stmt.kind {
            SeqStmtKind::VarAssign { index, value, .. } => {
                if let Some(i) = index {
                    out.push(i);
                }
                out.push(value);
            }
            SeqStmtKind::SignalAssign { value, .. } => out.push(value),
            SeqStmtKind::If { branches, else_body } => {
                for (cond, b) in branches {
                    out.push(cond);
                    collect_seq_exprs(b, out);
                }
                collect_seq_exprs(else_body, out);
            }
            SeqStmtKind::Case { selector, arms } => {
                out.push(selector);
                for arm in arms {
                    collect_seq_exprs(&arm.body, out);
                }
            }
            SeqStmtKind::For { lo, hi, body, .. } => {
                out.push(lo);
                out.push(hi);
                collect_seq_exprs(body, out);
            }
            SeqStmtKind::While { cond, body } => {
                out.push(cond);
                collect_seq_exprs(body, out);
            }
            SeqStmtKind::Return(Some(e)) => out.push(e),
            _ => {}
        }
    }
}

/// Collect names driven (defined) by concurrent statements: LHS names of
/// simultaneous statements and targets of procedural assignments.
fn collect_driven_names(stmt: &ConcurrentStmt, out: &mut HashSet<String>) {
    match stmt {
        ConcurrentStmt::SimpleSimultaneous { lhs, rhs, .. } => {
            // A simple simultaneous `x == f(...)` drives `x` when the LHS
            // is a plain name; for general DAEs either side may define a
            // quantity, so be permissive and record top-level names on
            // both sides.
            for side in [lhs, rhs] {
                match &side.kind {
                    ExprKind::Name(id) => {
                        out.insert(id.name.clone());
                    }
                    // `x'dot == f(...)` defines x (through an integrator).
                    ExprKind::Attribute {
                        prefix,
                        attr: AttributeKind::Dot | AttributeKind::Integ,
                        ..
                    } => {
                        out.insert(prefix.name.clone());
                    }
                    _ => {}
                }
            }
        }
        ConcurrentStmt::SimultaneousIf { branches, else_body, .. } => {
            for (_, body) in branches {
                for s in body {
                    collect_driven_names(s, out);
                }
            }
            for s in else_body {
                collect_driven_names(s, out);
            }
        }
        ConcurrentStmt::SimultaneousCase { arms, .. } => {
            for arm in arms {
                for s in &arm.body {
                    collect_driven_names(s, out);
                }
            }
        }
        ConcurrentStmt::Procedural { body, .. } => collect_seq_driven(body, out),
        ConcurrentStmt::Process { body, .. } => collect_seq_driven(body, out),
        ConcurrentStmt::AnnotationStmt { .. } => {}
    }
}

fn collect_seq_driven(body: &[SeqStmt], out: &mut HashSet<String>) {
    for stmt in body {
        match &stmt.kind {
            SeqStmtKind::VarAssign { target, .. } | SeqStmtKind::SignalAssign { target, .. } => {
                out.insert(target.name.clone());
            }
            SeqStmtKind::If { branches, else_body } => {
                for (_, b) in branches {
                    collect_seq_driven(b, out);
                }
                collect_seq_driven(else_body, out);
            }
            SeqStmtKind::Case { arms, .. } => {
                for arm in arms {
                    collect_seq_driven(&arm.body, out);
                }
            }
            SeqStmtKind::For { body, .. } | SeqStmtKind::While { body, .. } => {
                collect_seq_driven(body, out);
            }
            _ => {}
        }
    }
}
