//! Symbol table for one architecture scope.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::annot::Annotation;
use crate::ast::{Mode, ObjectClass, TypeName};
use crate::error::{SemaError, SemaErrorKind};
use crate::span::Span;

/// A declared object: port, architecture-level object, or local
/// variable hoisted from a process/procedural.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Symbol {
    /// Lower-cased name.
    pub name: String,
    /// Object class.
    pub class: ObjectClass,
    /// Declared type.
    pub ty: TypeName,
    /// Port mode, if the symbol is a port.
    pub mode: Option<Mode>,
    /// Annotations attached at the declaration (plus any merged in from
    /// annotation statements).
    pub annotations: Vec<Annotation>,
    /// Whether this symbol is an entity port.
    pub is_port: bool,
    /// Constant value, if the symbol is a constant with a foldable
    /// initializer.
    pub const_value: Option<f64>,
    /// Declaration site.
    pub span: Span,
}

impl Symbol {
    /// Whether the symbol is a continuous-time quantity (including
    /// quantity ports).
    pub fn is_quantity(&self) -> bool {
        self.class == ObjectClass::Quantity
    }

    /// Whether the symbol is an event-driven *signal*.
    pub fn is_signal(&self) -> bool {
        self.class == ObjectClass::Signal
    }

    /// Whether the symbol may be read in the current design (an `out`
    /// port may not be read in strict VHDL; VASS allows reading `out`
    /// quantities since the signal-flow graph makes the tap explicit).
    pub fn is_readable(&self) -> bool {
        true
    }

    /// Whether the symbol may be assigned/driven.
    pub fn is_writable(&self) -> bool {
        !matches!(self.mode, Some(Mode::In))
    }
}

/// A scope's symbols, preserving declaration order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SymbolTable {
    map: HashMap<String, Symbol>,
    order: Vec<String>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Insert a symbol.
    ///
    /// # Errors
    ///
    /// Returns a [`SemaErrorKind::DuplicateDeclaration`] diagnostic if a
    /// symbol with the same name already exists.
    pub fn insert(&mut self, symbol: Symbol) -> Result<(), SemaError> {
        if let Some(prev) = self.map.get(&symbol.name) {
            return Err(SemaError::new(
                SemaErrorKind::DuplicateDeclaration,
                format!(
                    "`{}` is already declared as a {} at {}",
                    symbol.name, prev.class, prev.span
                ),
                symbol.span,
            ));
        }
        self.order.push(symbol.name.clone());
        self.map.insert(symbol.name.clone(), symbol);
        Ok(())
    }

    /// Look up a symbol by (lower-cased) name.
    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.map.get(name)
    }

    /// Mutable lookup (used to merge annotation statements).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Symbol> {
        self.map.get_mut(name)
    }

    /// Whether `name` is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterate over symbols in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.order.iter().filter_map(move |n| self.map.get(n))
    }

    /// Iterate over quantities (including quantity ports).
    pub fn quantities(&self) -> impl Iterator<Item = &Symbol> {
        self.iter().filter(|s| s.is_quantity())
    }

    /// Iterate over *signals* (including signal ports).
    pub fn signals(&self) -> impl Iterator<Item = &Symbol> {
        self.iter().filter(|s| s.is_signal())
    }

    /// Iterate over entity ports.
    pub fn ports(&self) -> impl Iterator<Item = &Symbol> {
        self.iter().filter(|s| s.is_port)
    }
}

impl<'a> IntoIterator for &'a SymbolTable {
    type Item = &'a Symbol;
    type IntoIter = Box<dyn Iterator<Item = &'a Symbol> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(name: &str, class: ObjectClass) -> Symbol {
        Symbol {
            name: name.into(),
            class,
            ty: TypeName::Real,
            mode: None,
            annotations: vec![],
            is_port: false,
            const_value: None,
            span: Span::synthetic(),
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = SymbolTable::new();
        t.insert(sym("a", ObjectClass::Quantity)).expect("insert a");
        t.insert(sym("b", ObjectClass::Signal)).expect("insert b");
        assert!(t.contains("a"));
        assert_eq!(t.get("b").map(|s| s.class), Some(ObjectClass::Signal));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn duplicate_rejected() {
        let mut t = SymbolTable::new();
        t.insert(sym("a", ObjectClass::Quantity)).expect("insert");
        let err = t.insert(sym("a", ObjectClass::Signal)).unwrap_err();
        assert_eq!(err.kind, SemaErrorKind::DuplicateDeclaration);
    }

    #[test]
    fn iteration_preserves_declaration_order() {
        let mut t = SymbolTable::new();
        for n in ["z", "m", "a"] {
            t.insert(sym(n, ObjectClass::Quantity)).expect("insert");
        }
        let names: Vec<_> = t.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["z", "m", "a"]);
    }

    #[test]
    fn class_filters() {
        let mut t = SymbolTable::new();
        t.insert(sym("q", ObjectClass::Quantity)).expect("insert");
        t.insert(sym("s", ObjectClass::Signal)).expect("insert");
        t.insert(sym("c", ObjectClass::Constant)).expect("insert");
        assert_eq!(t.quantities().count(), 1);
        assert_eq!(t.signals().count(), 1);
        assert_eq!(t.ports().count(), 0);
    }

    #[test]
    fn writability_respects_port_mode() {
        let mut s = sym("x", ObjectClass::Quantity);
        s.mode = Some(Mode::In);
        assert!(!s.is_writable());
        s.mode = Some(Mode::Out);
        assert!(s.is_writable());
        s.mode = None;
        assert!(s.is_writable());
    }
}
