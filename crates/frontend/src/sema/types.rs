//! Type inference for VASS expressions.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ast::{
    AttributeKind, BinaryOp, Expr, ExprKind, FunctionDecl, ObjectClass, TypeName, UnaryOp,
};
use crate::error::{SemaError, SemaErrorKind};
use crate::sema::symbols::SymbolTable;
use crate::span::Span;

/// An inferred expression type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// Continuous real value.
    Real,
    /// Integer (constants and loop indices).
    Integer,
    /// Boolean.
    Boolean,
    /// Single bit.
    Bit,
    /// Bit vector.
    BitVector,
    /// Vector of reals.
    RealVector,
    /// Terminal nature.
    Electrical,
}

impl Ty {
    /// Map a declared type to its inferred type.
    pub fn from_type_name(t: &TypeName) -> Ty {
        match t {
            TypeName::Real => Ty::Real,
            TypeName::Integer => Ty::Integer,
            TypeName::Boolean => Ty::Boolean,
            TypeName::Bit => Ty::Bit,
            TypeName::BitVector { .. } => Ty::BitVector,
            TypeName::RealVector { .. } => Ty::RealVector,
            TypeName::Electrical => Ty::Electrical,
        }
    }

    /// Whether values of this type are numeric (usable in arithmetic).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Ty::Real | Ty::Integer)
    }

    /// Whether `self` accepts a value of type `other` (VASS allows
    /// integer→real coercion; everything else must match exactly).
    pub fn accepts(&self, other: Ty) -> bool {
        *self == other || (*self == Ty::Real && other == Ty::Integer)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Real => "real",
            Ty::Integer => "integer",
            Ty::Boolean => "boolean",
            Ty::Bit => "bit",
            Ty::BitVector => "bit_vector",
            Ty::RealVector => "real_vector",
            Ty::Electrical => "electrical",
        };
        f.write_str(s)
    }
}

/// The environment used during inference: the architecture's symbols,
/// its functions, and any active loop variables (which are integers).
pub struct TypeEnv<'a> {
    /// Architecture symbols.
    pub symbols: &'a SymbolTable,
    /// Visible functions by name.
    pub functions: &'a HashMap<String, &'a FunctionDecl>,
    /// Names of active `for`-loop variables.
    pub loop_vars: Vec<String>,
}

impl<'a> TypeEnv<'a> {
    /// Create an environment with no active loop variables.
    pub fn new(
        symbols: &'a SymbolTable,
        functions: &'a HashMap<String, &'a FunctionDecl>,
    ) -> Self {
        TypeEnv { symbols, functions, loop_vars: Vec::new() }
    }

    fn err(&self, kind: SemaErrorKind, msg: String, span: Span) -> SemaError {
        SemaError::new(kind, msg, span)
    }

    /// Infer the type of `expr`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic on undeclared names, unknown functions,
    /// arity mismatches, or operand-type violations.
    pub fn infer(&self, expr: &Expr) -> Result<Ty, SemaError> {
        match &expr.kind {
            ExprKind::Int(_) => Ok(Ty::Integer),
            ExprKind::Real(_) => Ok(Ty::Real),
            ExprKind::Char(_) => Ok(Ty::Bit),
            ExprKind::Str(_) => Ok(Ty::BitVector),
            ExprKind::Bool(_) => Ok(Ty::Boolean),
            ExprKind::Name(id) => {
                if self.loop_vars.contains(&id.name) {
                    return Ok(Ty::Integer);
                }
                match self.symbols.get(&id.name) {
                    Some(sym) => Ok(Ty::from_type_name(&sym.ty)),
                    None => Err(self.err(
                        SemaErrorKind::UndeclaredName,
                        format!("`{}` is not declared", id.name),
                        id.span,
                    )),
                }
            }
            ExprKind::Call { name, args } => self.infer_call(name, args, expr.span),
            ExprKind::Attribute { prefix, attr, args } => {
                self.infer_attribute(prefix, *attr, args, expr.span)
            }
            ExprKind::Unary { op, operand } => {
                let t = self.infer(operand)?;
                match op {
                    UnaryOp::Neg | UnaryOp::Plus | UnaryOp::Abs => {
                        if t.is_numeric() {
                            Ok(t)
                        } else {
                            Err(self.err(
                                SemaErrorKind::TypeMismatch,
                                format!("unary `{op}` requires a numeric operand, got {t}"),
                                expr.span,
                            ))
                        }
                    }
                    UnaryOp::Not => {
                        if matches!(t, Ty::Boolean | Ty::Bit | Ty::BitVector) {
                            Ok(t)
                        } else {
                            Err(self.err(
                                SemaErrorKind::TypeMismatch,
                                format!("`not` requires a boolean or bit operand, got {t}"),
                                expr.span,
                            ))
                        }
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => self.infer_binary(*op, lhs, rhs, expr.span),
        }
    }

    fn infer_call(&self, name: &crate::ast::Ident, args: &[Expr], span: Span) -> Result<Ty, SemaError> {
        // Math/conversion intrinsics (not user-definable, always visible).
        let intrinsic_ret = match name.name.as_str() {
            "log" | "ln" | "exp" | "antilog" => Some(Ty::Real),
            "adc" => Some(Ty::Integer),
            _ => None,
        };
        if let Some(ret) = intrinsic_ret {
            if self.functions.contains_key(&name.name) || self.symbols.contains(&name.name) {
                // user declaration shadows the intrinsic; fall through
            } else {
                if args.len() != 1 {
                    return Err(self.err(
                        SemaErrorKind::TypeMismatch,
                        format!("intrinsic `{}` takes exactly one argument", name.name),
                        span,
                    ));
                }
                let at = self.infer(&args[0])?;
                if !at.is_numeric() {
                    return Err(self.err(
                        SemaErrorKind::TypeMismatch,
                        format!("intrinsic `{}` expects a numeric argument, got {at}", name.name),
                        args[0].span,
                    ));
                }
                return Ok(ret);
            }
        }
        // Function call?
        if let Some(func) = self.functions.get(&name.name) {
            if args.len() != func.params.len() {
                return Err(self.err(
                    SemaErrorKind::TypeMismatch,
                    format!(
                        "function `{}` takes {} argument(s), {} given",
                        name.name,
                        func.params.len(),
                        args.len()
                    ),
                    span,
                ));
            }
            for (arg, (pname, pty)) in args.iter().zip(&func.params) {
                let at = self.infer(arg)?;
                let want = Ty::from_type_name(pty);
                if !want.accepts(at) {
                    return Err(self.err(
                        SemaErrorKind::TypeMismatch,
                        format!(
                            "argument `{}` of `{}` expects {want}, got {at}",
                            pname.name, name.name
                        ),
                        arg.span,
                    ));
                }
            }
            return Ok(Ty::from_type_name(&func.ret));
        }
        // Indexed name?
        if let Some(sym) = self.symbols.get(&name.name) {
            let elem = match &sym.ty {
                TypeName::BitVector { .. } => Ty::Bit,
                TypeName::RealVector { .. } => Ty::Real,
                other => {
                    return Err(self.err(
                        SemaErrorKind::InvalidUse,
                        format!("`{}` of type {other} cannot be indexed or called", name.name),
                        span,
                    ))
                }
            };
            if args.len() != 1 {
                return Err(self.err(
                    SemaErrorKind::TypeMismatch,
                    format!("indexing `{}` requires exactly one index", name.name),
                    span,
                ));
            }
            let it = self.infer(&args[0])?;
            if it != Ty::Integer {
                return Err(self.err(
                    SemaErrorKind::TypeMismatch,
                    format!("index must be an integer, got {it}"),
                    args[0].span,
                ));
            }
            return Ok(elem);
        }
        Err(self.err(
            SemaErrorKind::UndeclaredName,
            format!("`{}` is neither a declared function nor an indexable object", name.name),
            span,
        ))
    }

    fn infer_attribute(
        &self,
        prefix: &crate::ast::Ident,
        attr: AttributeKind,
        args: &[Expr],
        span: Span,
    ) -> Result<Ty, SemaError> {
        let sym = self.symbols.get(&prefix.name).ok_or_else(|| {
            self.err(
                SemaErrorKind::UndeclaredName,
                format!("`{}` is not declared", prefix.name),
                prefix.span,
            )
        })?;
        match attr {
            AttributeKind::Above => {
                if !sym.is_quantity() {
                    return Err(self.err(
                        SemaErrorKind::InvalidUse,
                        format!("'above requires a quantity prefix; `{}` is a {}", sym.name, sym.class),
                        span,
                    ));
                }
                if args.len() != 1 {
                    return Err(self.err(
                        SemaErrorKind::TypeMismatch,
                        "'above takes exactly one threshold argument".into(),
                        span,
                    ));
                }
                let at = self.infer(&args[0])?;
                if !at.is_numeric() {
                    return Err(self.err(
                        SemaErrorKind::TypeMismatch,
                        format!("'above threshold must be numeric, got {at}"),
                        args[0].span,
                    ));
                }
                Ok(Ty::Boolean)
            }
            AttributeKind::Dot | AttributeKind::Integ => {
                if !sym.is_quantity() {
                    return Err(self.err(
                        SemaErrorKind::InvalidUse,
                        format!("'{attr} requires a quantity prefix; `{}` is a {}", sym.name, sym.class),
                        span,
                    ));
                }
                if !args.is_empty() {
                    return Err(self.err(
                        SemaErrorKind::TypeMismatch,
                        format!("'{attr} takes no arguments"),
                        span,
                    ));
                }
                Ok(Ty::Real)
            }
            AttributeKind::Delayed => {
                if !sym.is_quantity() {
                    return Err(self.err(
                        SemaErrorKind::InvalidUse,
                        format!("'delayed requires a quantity prefix; `{}` is a {}", sym.name, sym.class),
                        span,
                    ));
                }
                if args.len() != 1 {
                    return Err(self.err(
                        SemaErrorKind::TypeMismatch,
                        "'delayed takes exactly one delay argument".into(),
                        span,
                    ));
                }
                let at = self.infer(&args[0])?;
                if !at.is_numeric() {
                    return Err(self.err(
                        SemaErrorKind::TypeMismatch,
                        format!("'delayed delay must be numeric, got {at}"),
                        args[0].span,
                    ));
                }
                Ok(Ty::Real)
            }
            AttributeKind::Across | AttributeKind::Through => {
                if sym.class != ObjectClass::Terminal {
                    return Err(self.err(
                        SemaErrorKind::InvalidUse,
                        format!(
                            "'{attr} requires a terminal prefix; `{}` is a {}",
                            sym.name, sym.class
                        ),
                        span,
                    ));
                }
                if !args.is_empty() {
                    return Err(self.err(
                        SemaErrorKind::TypeMismatch,
                        format!("'{attr} takes no arguments"),
                        span,
                    ));
                }
                Ok(Ty::Real)
            }
        }
    }

    fn infer_binary(
        &self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Result<Ty, SemaError> {
        let lt = self.infer(lhs)?;
        let rt = self.infer(rhs)?;
        if op.is_relational() {
            let compatible = lt == rt
                || (lt.is_numeric() && rt.is_numeric())
                || matches!((lt, rt), (Ty::Bit, Ty::Bit) | (Ty::Boolean, Ty::Boolean));
            if !compatible {
                return Err(self.err(
                    SemaErrorKind::TypeMismatch,
                    format!("cannot compare {lt} with {rt}"),
                    span,
                ));
            }
            return Ok(Ty::Boolean);
        }
        if op.is_logical() {
            let both_bool = lt == Ty::Boolean && rt == Ty::Boolean;
            let both_bit = lt == Ty::Bit && rt == Ty::Bit;
            if !(both_bool || both_bit) {
                return Err(self.err(
                    SemaErrorKind::TypeMismatch,
                    format!("logical `{op}` requires matching boolean or bit operands, got {lt} and {rt}"),
                    span,
                ));
            }
            return Ok(lt);
        }
        if op == BinaryOp::Concat {
            let ok = matches!(lt, Ty::Bit | Ty::BitVector) && matches!(rt, Ty::Bit | Ty::BitVector);
            if !ok {
                return Err(self.err(
                    SemaErrorKind::TypeMismatch,
                    format!("`&` requires bit or bit_vector operands, got {lt} and {rt}"),
                    span,
                ));
            }
            return Ok(Ty::BitVector);
        }
        // Arithmetic.
        if !(lt.is_numeric() && rt.is_numeric()) {
            return Err(self.err(
                SemaErrorKind::TypeMismatch,
                format!("arithmetic `{op}` requires numeric operands, got {lt} and {rt}"),
                span,
            ));
        }
        if lt == Ty::Integer && rt == Ty::Integer {
            Ok(Ty::Integer)
        } else {
            Ok(Ty::Real)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use crate::sema::symbols::{Symbol, SymbolTable};

    fn table() -> SymbolTable {
        let mut t = SymbolTable::new();
        let mk = |name: &str, class: ObjectClass, ty: TypeName| Symbol {
            name: name.into(),
            class,
            ty,
            mode: None,
            annotations: vec![],
            is_port: false,
            const_value: None,
            span: Span::synthetic(),
        };
        t.insert(mk("x", ObjectClass::Quantity, TypeName::Real)).expect("x");
        t.insert(mk("y", ObjectClass::Quantity, TypeName::Real)).expect("y");
        t.insert(mk("c1", ObjectClass::Signal, TypeName::Bit)).expect("c1");
        t.insert(mk("n", ObjectClass::Constant, TypeName::Integer)).expect("n");
        t.insert(mk("vec", ObjectClass::Quantity, TypeName::RealVector { lo: 0, hi: 3 }))
            .expect("vec");
        t.insert(mk("t1", ObjectClass::Terminal, TypeName::Electrical)).expect("t1");
        t
    }

    fn infer(src: &str) -> Result<Ty, SemaError> {
        let table = table();
        let functions = HashMap::new();
        let env = TypeEnv::new(&table, &functions);
        env.infer(&parse_expression(src).expect("parses"))
    }

    #[test]
    fn arithmetic_promotes_to_real() {
        assert_eq!(infer("x + 1").unwrap(), Ty::Real);
        assert_eq!(infer("n + 1").unwrap(), Ty::Integer);
        assert_eq!(infer("x * y / 2.0").unwrap(), Ty::Real);
    }

    #[test]
    fn relational_yields_boolean() {
        assert_eq!(infer("x >= y").unwrap(), Ty::Boolean);
        assert_eq!(infer("c1 = '1'").unwrap(), Ty::Boolean);
    }

    #[test]
    fn logical_requires_matching() {
        assert_eq!(infer("x > 0.0 and y < 1.0").unwrap(), Ty::Boolean);
        assert!(infer("x and y").is_err());
        assert!(infer("c1 and (x > 0.0)").is_err());
    }

    #[test]
    fn above_attribute_types() {
        assert_eq!(infer("x'above(0.5)").unwrap(), Ty::Boolean);
        assert!(infer("c1'above(0.5)").is_err()); // not a quantity
        assert!(infer("x'above(c1)").is_err()); // non-numeric threshold
        assert!(infer("x'above(0.1, 0.2)").is_err()); // arity
    }

    #[test]
    fn dot_and_integ_are_real() {
        assert_eq!(infer("x'dot").unwrap(), Ty::Real);
        assert_eq!(infer("x'integ").unwrap(), Ty::Real);
        assert!(infer("c1'dot").is_err());
    }

    #[test]
    fn terminal_facets() {
        assert_eq!(infer("t1'across").unwrap(), Ty::Real);
        assert_eq!(infer("t1'through").unwrap(), Ty::Real);
        assert!(infer("x'across").is_err());
    }

    #[test]
    fn indexing_real_vector() {
        assert_eq!(infer("vec(2)").unwrap(), Ty::Real);
        assert!(infer("vec(x)").is_err()); // real index
        assert!(infer("x(1)").is_err()); // scalar indexed
    }

    #[test]
    fn undeclared_name_reported() {
        let err = infer("zz + 1.0").unwrap_err();
        assert_eq!(err.kind, SemaErrorKind::UndeclaredName);
    }

    #[test]
    fn unknown_function_reported() {
        let err = infer("f(x)").unwrap_err();
        assert_eq!(err.kind, SemaErrorKind::UndeclaredName);
    }

    #[test]
    fn not_requires_boolean() {
        assert_eq!(infer("not (x > 0.0)").unwrap(), Ty::Boolean);
        assert!(infer("not x").is_err());
    }

    #[test]
    fn intrinsics_are_typed() {
        assert_eq!(infer("log(x)").unwrap(), Ty::Real);
        assert_eq!(infer("exp(x + 1.0)").unwrap(), Ty::Real);
        assert_eq!(infer("adc(x)").unwrap(), Ty::Integer);
        assert!(infer("adc(x, y)").is_err());
        assert!(infer("log(c1)").is_err());
    }

    #[test]
    fn accepts_coercion() {
        assert!(Ty::Real.accepts(Ty::Integer));
        assert!(!Ty::Integer.accepts(Ty::Real));
        assert!(Ty::Bit.accepts(Ty::Bit));
        assert!(!Ty::Bit.accepts(Ty::Boolean));
    }
}
