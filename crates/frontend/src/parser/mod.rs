//! Recursive-descent parser for the VASS subset.
//!
//! Entry points: [`parse_design_file`] for a full source file, plus
//! narrower helpers used by tests ([`parse_expression`]).
//!
//! The grammar follows Section 3 of the paper. Annotations are written
//! inline with the declarative `is` syntax:
//!
//! ```text
//! quantity earph : out real is voltage limited at 1.5 v drives 270 ohm at 285 mv peak;
//! ```

mod decl;
mod expr;
mod stmt;

use crate::ast::{DesignFile, DesignUnit, Expr, Ident};
use crate::error::ParseError;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a complete VASS design file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let source = "
///   entity amp is
///     port (quantity vin : in real is voltage;
///           quantity vout : out real is voltage);
///   end entity;
///   architecture behav of amp is
///   begin
///     vout == 10.0 * vin;
///   end architecture;
/// ";
/// let design = vase_frontend::parser::parse_design_file(source)?;
/// assert!(design.entity("amp").is_some());
/// # Ok(())
/// # }
/// ```
pub fn parse_design_file(source: &str) -> Result<DesignFile, ParseError> {
    let tokens = lex(source)
        .map_err(|e| ParseError { message: e.message, span: e.span })?;
    let mut parser = Parser::new(tokens);
    let mut file = DesignFile::new();
    while !parser.at_eof() {
        file.units.push(parser.parse_design_unit()?);
    }
    Ok(file)
}

/// Parse a standalone expression (primarily for tests and tooling).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered, or an
/// error if input remains after the expression.
pub fn parse_expression(source: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source)
        .map_err(|e| ParseError { message: e.message, span: e.span })?;
    let mut parser = Parser::new(tokens);
    let expr = parser.parse_expr()?;
    if !parser.at_eof() {
        return Err(parser.error_here("unexpected input after expression"));
    }
    Ok(expr)
}

/// The parser state: a token buffer and a cursor.
pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    pub(crate) fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    pub(crate) fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    /// Look ahead `n` tokens (0 = current).
    pub(crate) fn peek_nth(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    pub(crate) fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    pub(crate) fn advance(&mut self) -> Token {
        let tok = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    pub(crate) fn here(&self) -> Span {
        self.peek().span
    }

    pub(crate) fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), span: self.here() }
    }

    /// Consume the current token if it matches `kind` exactly.
    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consume the current token if it is keyword `kw`.
    pub(crate) fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn check_keyword(&self, kw: Keyword) -> bool {
        self.peek().is_keyword(kw)
    }

    /// Require the current token to match `kind`.
    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek_kind() == kind {
            Ok(self.advance())
        } else {
            Err(self.error_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    /// Require the current token to be keyword `kw`.
    pub(crate) fn expect_keyword(&mut self, kw: Keyword) -> Result<Token, ParseError> {
        if self.peek().is_keyword(kw) {
            Ok(self.advance())
        } else {
            Err(self.error_here(format!(
                "expected keyword `{kw}`, found {}",
                self.peek_kind().describe()
            )))
        }
    }

    /// Require an identifier and return it.
    pub(crate) fn expect_ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.here();
                self.advance();
                Ok(Ident::new(name, span))
            }
            other => Err(self.error_here(format!(
                "expected identifier, found {}",
                other.describe()
            ))),
        }
    }

    /// If an identifier matching `name` follows (e.g. a trailing entity
    /// name after `end entity`), consume it.
    pub(crate) fn eat_trailing_name(&mut self) {
        if matches!(self.peek_kind(), TokenKind::Ident(_)) {
            self.advance();
        }
    }

    fn parse_design_unit(&mut self) -> Result<DesignUnit, ParseError> {
        if self.check_keyword(Keyword::Entity) {
            Ok(DesignUnit::Entity(self.parse_entity()?))
        } else if self.check_keyword(Keyword::Architecture) {
            Ok(DesignUnit::Architecture(self.parse_architecture()?))
        } else if self.check_keyword(Keyword::Package) {
            Ok(DesignUnit::Package(self.parse_package()?))
        } else {
            Err(self.error_here(format!(
                "expected `entity`, `architecture`, or `package`, found {}",
                self.peek_kind().describe()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_entity_architecture() {
        let design = parse_design_file(
            "entity e is end entity;
             architecture a of e is begin end architecture;",
        )
        .expect("parses");
        assert_eq!(design.units.len(), 2);
        assert!(design.entity("e").is_some());
        assert!(design.architecture_of("e").is_some());
    }

    #[test]
    fn reports_error_on_garbage() {
        let err = parse_design_file("banana").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn expression_entry_point_rejects_trailing_tokens() {
        assert!(parse_expression("1 + 2").is_ok());
        assert!(parse_expression("1 + 2 extra").is_err());
    }
}
