//! Recursive-descent parser for the VASS subset.
//!
//! Entry points: [`parse_design_file`] for a full source file, plus
//! narrower helpers used by tests ([`parse_expression`]).
//!
//! The grammar follows Section 3 of the paper. Annotations are written
//! inline with the declarative `is` syntax:
//!
//! ```text
//! quantity earph : out real is voltage limited at 1.5 v drives 270 ohm at 285 mv peak;
//! ```

mod decl;
mod expr;
mod stmt;

use crate::ast::{DesignFile, DesignUnit, Expr, Ident};
use crate::error::ParseError;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a complete VASS design file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let source = "
///   entity amp is
///     port (quantity vin : in real is voltage;
///           quantity vout : out real is voltage);
///   end entity;
///   architecture behav of amp is
///   begin
///     vout == 10.0 * vin;
///   end architecture;
/// ";
/// let design = vase_frontend::parser::parse_design_file(source)?;
/// assert!(design.entity("amp").is_some());
/// # Ok(())
/// # }
/// ```
pub fn parse_design_file(source: &str) -> Result<DesignFile, ParseError> {
    let tokens = lex(source)
        .map_err(|e| ParseError { message: e.message, span: e.span })?;
    let mut parser = Parser::new(tokens);
    let mut file = DesignFile::new();
    while !parser.at_eof() {
        file.units.push(parser.parse_design_unit()?);
    }
    Ok(file)
}

/// Parse with error recovery: collect as many design units *and* as
/// many parse errors as the source allows, instead of stopping at the
/// first problem.
///
/// Recovery is syntactic resynchronization: a failed statement or
/// declaration skips to the next `;`, a failed port to the next `;`
/// or `)`, and a failed design unit to the next top-level
/// `entity`/`architecture`/`package` keyword. Units (or statements)
/// that failed are omitted from the returned file, so downstream
/// analysis only ever sees well-formed AST — but it may see *partial*
/// designs, and its diagnostics read accordingly.
///
/// An empty error vector means the file parsed cleanly and the result
/// is identical to [`parse_design_file`]'s.
pub fn parse_design_file_recovering(source: &str) -> (DesignFile, Vec<ParseError>) {
    let tokens = match lex(source) {
        Ok(t) => t,
        Err(e) => {
            return (DesignFile::new(), vec![ParseError { message: e.message, span: e.span }])
        }
    };
    let mut parser = Parser::recovering(tokens);
    let mut file = DesignFile::new();
    while !parser.at_eof() {
        match parser.parse_design_unit() {
            Ok(unit) => file.units.push(unit),
            Err(e) => {
                parser.errors.push(e);
                parser.sync_to_unit_start();
            }
        }
    }
    (file, parser.errors)
}

/// Parse a standalone expression (primarily for tests and tooling).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered, or an
/// error if input remains after the expression.
pub fn parse_expression(source: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source)
        .map_err(|e| ParseError { message: e.message, span: e.span })?;
    let mut parser = Parser::new(tokens);
    let expr = parser.parse_expr()?;
    if !parser.at_eof() {
        return Err(parser.error_here("unexpected input after expression"));
    }
    Ok(expr)
}

/// The parser state: a token buffer, a cursor, and (in recovery mode)
/// the errors survived so far.
pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// When set, statement/declaration/port loops resynchronize after
    /// an error instead of propagating it.
    recover: bool,
    /// Errors recorded while recovering, in source order.
    pub(crate) errors: Vec<ParseError>,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, recover: false, errors: Vec::new() }
    }

    /// A parser that recovers from errors rather than failing fast.
    pub(crate) fn recovering(tokens: Vec<Token>) -> Self {
        Parser { recover: true, ..Parser::new(tokens) }
    }

    /// Record `e` in recovery mode (the caller then resynchronizes);
    /// propagate it in strict mode.
    pub(crate) fn note_error(&mut self, e: ParseError) -> Result<(), ParseError> {
        if self.recover {
            self.errors.push(e);
            Ok(())
        } else {
            Err(e)
        }
    }

    /// Handle a parse error inside a statement/declaration loop: in
    /// strict mode propagate it; in recovery mode record it and skip
    /// to just past the next `;` (or stop, unconsumed, at one of the
    /// `stops` keywords that terminates the caller's loop).
    pub(crate) fn recover_from(
        &mut self,
        e: ParseError,
        stops: &[Keyword],
    ) -> Result<(), ParseError> {
        self.note_error(e)?;
        while !self.at_eof() {
            if self.eat(&TokenKind::Semicolon) {
                return Ok(());
            }
            if stops.iter().any(|kw| self.check_keyword(*kw)) {
                return Ok(());
            }
            self.advance();
        }
        Ok(())
    }

    /// Skip to the start of the next top-level design unit. `end …;`
    /// closings are consumed whole so their `entity`/`architecture`
    /// keywords are not mistaken for a new unit, and a unit keyword
    /// only counts as a start when a name (or `body`) follows it —
    /// `end entity;` fragments do not.
    fn sync_to_unit_start(&mut self) {
        if !self.at_eof() {
            self.advance();
        }
        while !self.at_eof() {
            if self.check_keyword(Keyword::End) {
                while !self.at_eof() && !self.eat(&TokenKind::Semicolon) {
                    self.advance();
                }
                continue;
            }
            let unit_start = self.check_keyword(Keyword::Entity)
                || self.check_keyword(Keyword::Architecture)
                || self.check_keyword(Keyword::Package);
            let named = matches!(self.peek_nth(1).kind, TokenKind::Ident(_))
                || self.peek_nth(1).is_keyword(Keyword::Body);
            if unit_start && named {
                return;
            }
            self.advance();
        }
    }

    pub(crate) fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    pub(crate) fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    /// Look ahead `n` tokens (0 = current).
    pub(crate) fn peek_nth(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    pub(crate) fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    pub(crate) fn advance(&mut self) -> Token {
        let tok = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    pub(crate) fn here(&self) -> Span {
        self.peek().span
    }

    pub(crate) fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), span: self.here() }
    }

    /// Consume the current token if it matches `kind` exactly.
    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consume the current token if it is keyword `kw`.
    pub(crate) fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn check_keyword(&self, kw: Keyword) -> bool {
        self.peek().is_keyword(kw)
    }

    /// Require the current token to match `kind`.
    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek_kind() == kind {
            Ok(self.advance())
        } else {
            Err(self.error_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    /// Require the current token to be keyword `kw`.
    pub(crate) fn expect_keyword(&mut self, kw: Keyword) -> Result<Token, ParseError> {
        if self.peek().is_keyword(kw) {
            Ok(self.advance())
        } else {
            Err(self.error_here(format!(
                "expected keyword `{kw}`, found {}",
                self.peek_kind().describe()
            )))
        }
    }

    /// Require an identifier and return it.
    pub(crate) fn expect_ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.here();
                self.advance();
                Ok(Ident::new(name, span))
            }
            other => Err(self.error_here(format!(
                "expected identifier, found {}",
                other.describe()
            ))),
        }
    }

    /// If an identifier matching `name` follows (e.g. a trailing entity
    /// name after `end entity`), consume it.
    pub(crate) fn eat_trailing_name(&mut self) {
        if matches!(self.peek_kind(), TokenKind::Ident(_)) {
            self.advance();
        }
    }

    fn parse_design_unit(&mut self) -> Result<DesignUnit, ParseError> {
        if self.check_keyword(Keyword::Entity) {
            Ok(DesignUnit::Entity(self.parse_entity()?))
        } else if self.check_keyword(Keyword::Architecture) {
            Ok(DesignUnit::Architecture(self.parse_architecture()?))
        } else if self.check_keyword(Keyword::Package) {
            Ok(DesignUnit::Package(self.parse_package()?))
        } else {
            Err(self.error_here(format!(
                "expected `entity`, `architecture`, or `package`, found {}",
                self.peek_kind().describe()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_entity_architecture() {
        let design = parse_design_file(
            "entity e is end entity;
             architecture a of e is begin end architecture;",
        )
        .expect("parses");
        assert_eq!(design.units.len(), 2);
        assert!(design.entity("e").is_some());
        assert!(design.architecture_of("e").is_some());
    }

    #[test]
    fn reports_error_on_garbage() {
        let err = parse_design_file("banana").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn expression_entry_point_rejects_trailing_tokens() {
        assert!(parse_expression("1 + 2").is_ok());
        assert!(parse_expression("1 + 2 extra").is_err());
    }

    #[test]
    fn recovery_reports_multiple_statement_errors() {
        let (file, errors) = parse_design_file_recovering(
            "entity e is port (quantity x : in real is voltage;
                               quantity y : out real is voltage); end entity;
             architecture a of e is begin
               y == x + ;
               y == * x;
               y == 2.0 * x;
             end architecture;",
        );
        assert_eq!(errors.len(), 2, "{errors:#?}");
        let arch = file.architecture_of("e").expect("architecture survives");
        assert_eq!(arch.stmts.len(), 1, "the good statement is kept");
        // Errors arrive in source order with distinct positions.
        assert!(errors[0].span.start.line < errors[1].span.start.line);
    }

    #[test]
    fn recovery_skips_broken_unit_and_keeps_the_next() {
        let (file, errors) = parse_design_file_recovering(
            "entity broken is port ( end entity;
             entity ok is end entity;
             architecture a of ok is begin end architecture;",
        );
        assert!(!errors.is_empty());
        assert!(file.entity("ok").is_some());
        assert!(file.architecture_of("ok").is_some());
    }

    #[test]
    fn recovery_collects_port_and_declaration_errors() {
        let (file, errors) = parse_design_file_recovering(
            "entity e is port (quantity a : in real is voltage;
                               quantity b : mystery;
                               quantity y : out real is voltage); end entity;
             architecture a of e is
               quantity q1 : real
             begin
               y == a;
             end architecture;",
        );
        assert_eq!(errors.len(), 2, "{errors:#?}");
        let entity = file.entity("e").expect("entity survives");
        assert_eq!(entity.ports.len(), 2, "good ports are kept");
        assert_eq!(file.architecture_of("e").expect("arch").stmts.len(), 1);
    }

    #[test]
    fn recovery_on_clean_source_matches_strict_parse() {
        let src = "entity e is port (quantity x : in real is voltage;
                                     quantity y : out real is voltage); end entity;
                   architecture a of e is begin y == 2.0 * x; end architecture;";
        let (file, errors) = parse_design_file_recovering(src);
        assert!(errors.is_empty());
        assert_eq!(file.units.len(), parse_design_file(src).expect("parses").units.len());
    }

    #[test]
    fn recovery_never_loops_on_truncated_input() {
        // Truncations that leave every bracket and region open must
        // still terminate (with errors), not spin.
        let src = "entity e is port (quantity x : in real is voltage;
                    quantity y : out real is voltage); end entity;
                   architecture a of e is begin y == x;";
        for len in 0..src.len() {
            if !src.is_char_boundary(len) {
                continue;
            }
            let (_, _) = parse_design_file_recovering(&src[..len]);
        }
    }
}
