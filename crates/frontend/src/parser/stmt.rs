//! Parsing of concurrent and sequential statements.

use crate::ast::{
    CaseArm, Choice, ConcurrentStmt, Direction, SeqStmt, SeqStmtKind,
};
use crate::error::ParseError;
use crate::parser::Parser;
use crate::token::{Keyword, TokenKind};

impl Parser {
    /// concurrent := [label `:`] (simultaneous_if | simultaneous_case |
    ///               process | procedural | annotation_stmt | simple_simultaneous)
    pub(crate) fn parse_concurrent_stmt(&mut self) -> Result<ConcurrentStmt, ParseError> {
        // Optional label: `ident :` not followed by `=` (which would be `:=`).
        let label = if matches!(self.peek_kind(), TokenKind::Ident(_))
            && self.peek_nth(1).kind == TokenKind::Colon
        {
            let id = self.expect_ident()?;
            self.expect(&TokenKind::Colon)?;
            Some(id)
        } else {
            None
        };

        if self.check_keyword(Keyword::If) {
            self.parse_simultaneous_if(label)
        } else if self.check_keyword(Keyword::Case) {
            self.parse_simultaneous_case(label)
        } else if self.check_keyword(Keyword::Process) {
            self.parse_process(label)
        } else if self.check_keyword(Keyword::Procedural) {
            self.parse_procedural(label)
        } else if self.check_keyword(Keyword::Quantity) {
            // `quantity id is <annots>;` in the statement part attaches
            // annotations to an already-declared quantity.
            let start = self.here();
            self.advance();
            let target = self.expect_ident()?;
            self.expect_keyword(Keyword::Is)?;
            let annotations = self.parse_annotation_list()?;
            let end = self.expect(&TokenKind::Semicolon)?;
            Ok(ConcurrentStmt::AnnotationStmt { target, annotations, span: start.merge(end.span) })
        } else {
            // simple simultaneous: expr == expr ;
            let start = self.here();
            let lhs = self.parse_expr()?;
            self.expect(&TokenKind::EqEq).map_err(|_| {
                self.error_here(
                    "expected `==` (simple simultaneous statement) — processes, \
                     procedurals, and simultaneous if/case are the only other \
                     concurrent statements in VASS",
                )
            })?;
            let rhs = self.parse_expr()?;
            let end = self.expect(&TokenKind::Semicolon)?;
            Ok(ConcurrentStmt::SimpleSimultaneous { label, lhs, rhs, span: start.merge(end.span) })
        }
    }

    /// simultaneous_if := `if` expr `use` {concurrent}
    ///                    {`elsif` expr `use` {concurrent}}
    ///                    [`else` {concurrent}] `end` `use` `;`
    fn parse_simultaneous_if(
        &mut self,
        label: Option<crate::ast::Ident>,
    ) -> Result<ConcurrentStmt, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::If)?;
        let mut branches = Vec::new();
        let cond = self.parse_expr()?;
        self.expect_keyword(Keyword::Use)?;
        let body = self.parse_concurrent_body()?;
        branches.push((cond, body));
        let mut else_body = Vec::new();
        loop {
            if self.eat_keyword(Keyword::Elsif) {
                let cond = self.parse_expr()?;
                self.expect_keyword(Keyword::Use)?;
                let body = self.parse_concurrent_body()?;
                branches.push((cond, body));
            } else if self.eat_keyword(Keyword::Else) {
                else_body = self.parse_concurrent_body()?;
                break;
            } else {
                break;
            }
        }
        self.expect_keyword(Keyword::End)?;
        self.expect_keyword(Keyword::Use)?;
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(ConcurrentStmt::SimultaneousIf {
            label,
            branches,
            else_body,
            span: start.merge(end.span),
        })
    }

    /// Concurrent statements until `elsif`/`else`/`end`/`when`.
    fn parse_concurrent_body(&mut self) -> Result<Vec<ConcurrentStmt>, ParseError> {
        const STOPS: [Keyword; 4] = [Keyword::Elsif, Keyword::Else, Keyword::End, Keyword::When];
        let mut body = Vec::new();
        while !STOPS.iter().any(|kw| self.check_keyword(*kw)) && !self.at_eof() {
            match self.parse_concurrent_stmt() {
                Ok(s) => body.push(s),
                Err(e) => self.recover_from(e, &STOPS)?,
            }
        }
        Ok(body)
    }

    /// simultaneous_case := `case` expr `use` {`when` choices `=>`
    ///                      {concurrent}} `end` `case` `;`
    fn parse_simultaneous_case(
        &mut self,
        label: Option<crate::ast::Ident>,
    ) -> Result<ConcurrentStmt, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::Case)?;
        let selector = self.parse_expr()?;
        self.expect_keyword(Keyword::Use)?;
        let mut arms = Vec::new();
        while self.eat_keyword(Keyword::When) {
            let choices = self.parse_choices()?;
            self.expect(&TokenKind::Arrow)?;
            let body = self.parse_concurrent_body()?;
            arms.push(CaseArm { choices, body });
        }
        self.expect_keyword(Keyword::End)?;
        self.expect_keyword(Keyword::Case)?;
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(ConcurrentStmt::SimultaneousCase {
            label,
            selector,
            arms,
            span: start.merge(end.span),
        })
    }

    fn parse_choices(&mut self) -> Result<Vec<Choice>, ParseError> {
        let mut choices = Vec::new();
        loop {
            if self.eat_keyword(Keyword::Others) {
                choices.push(Choice::Others);
            } else {
                choices.push(Choice::Expr(self.parse_expr()?));
            }
            if !self.eat(&TokenKind::Bar) {
                break;
            }
        }
        Ok(choices)
    }

    /// process := `process` [`(` sens {`,` sens} `)`] [`is`] {decl}
    ///            `begin` {seq} `end` [`process`] [id] `;`
    fn parse_process(
        &mut self,
        label: Option<crate::ast::Ident>,
    ) -> Result<ConcurrentStmt, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::Process)?;
        let mut sensitivity = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                sensitivity.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.eat_keyword(Keyword::Is);
        let mut decls = Vec::new();
        while !self.check_keyword(Keyword::Begin)
            && !self.check_keyword(Keyword::End)
            && !self.at_eof()
        {
            match self.parse_object_decl() {
                Ok(d) => decls.push(d),
                Err(e) => self.recover_from(e, &[Keyword::Begin, Keyword::End])?,
            }
        }
        self.expect_keyword(Keyword::Begin)?;
        let body = self.parse_seq_body_until(&[Keyword::End])?;
        self.expect_keyword(Keyword::End)?;
        self.eat_keyword(Keyword::Process);
        self.eat_trailing_name();
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(ConcurrentStmt::Process {
            label,
            sensitivity,
            decls,
            body,
            span: start.merge(end.span),
        })
    }

    /// procedural := `procedural` [`is`] {decl} `begin` {seq}
    ///               `end` [`procedural`] [id] `;`
    fn parse_procedural(
        &mut self,
        label: Option<crate::ast::Ident>,
    ) -> Result<ConcurrentStmt, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::Procedural)?;
        self.eat_keyword(Keyword::Is);
        let mut decls = Vec::new();
        while !self.check_keyword(Keyword::Begin)
            && !self.check_keyword(Keyword::End)
            && !self.at_eof()
        {
            match self.parse_object_decl() {
                Ok(d) => decls.push(d),
                Err(e) => self.recover_from(e, &[Keyword::Begin, Keyword::End])?,
            }
        }
        self.expect_keyword(Keyword::Begin)?;
        let body = self.parse_seq_body_until(&[Keyword::End])?;
        self.expect_keyword(Keyword::End)?;
        self.eat_keyword(Keyword::Procedural);
        self.eat_trailing_name();
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(ConcurrentStmt::Procedural { label, decls, body, span: start.merge(end.span) })
    }

    /// One sequential statement.
    pub(crate) fn parse_seq_stmt(&mut self) -> Result<SeqStmt, ParseError> {
        let start = self.here();
        if self.check_keyword(Keyword::If) {
            return self.parse_seq_if();
        }
        if self.check_keyword(Keyword::Case) {
            return self.parse_seq_case();
        }
        if self.check_keyword(Keyword::For) {
            return self.parse_seq_for();
        }
        if self.check_keyword(Keyword::While) {
            return self.parse_seq_while();
        }
        if self.eat_keyword(Keyword::Return) {
            let value = if self.peek_kind() == &TokenKind::Semicolon {
                None
            } else {
                Some(self.parse_expr()?)
            };
            let end = self.expect(&TokenKind::Semicolon)?;
            return Ok(SeqStmt::new(SeqStmtKind::Return(value), start.merge(end.span)));
        }
        if self.eat_keyword(Keyword::Null) {
            let end = self.expect(&TokenKind::Semicolon)?;
            return Ok(SeqStmt::new(SeqStmtKind::Null, start.merge(end.span)));
        }
        if self.eat_keyword(Keyword::Wait) {
            // Parse permissively up to the semicolon so semantic
            // analysis can reject with a precise diagnostic.
            while self.peek_kind() != &TokenKind::Semicolon && !self.at_eof() {
                self.advance();
            }
            let end = self.expect(&TokenKind::Semicolon)?;
            return Ok(SeqStmt::new(SeqStmtKind::Wait, start.merge(end.span)));
        }

        // Assignment: `name := expr;`, `name(idx) := expr;`, or `name <= expr;`
        let target = self.expect_ident()?;
        let index = if self.eat(&TokenKind::LParen) {
            let idx = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            Some(idx)
        } else {
            None
        };
        if self.eat(&TokenKind::ColonEq) {
            let value = self.parse_expr()?;
            let end = self.expect(&TokenKind::Semicolon)?;
            Ok(SeqStmt::new(
                SeqStmtKind::VarAssign { target, index, value },
                start.merge(end.span),
            ))
        } else if self.eat(&TokenKind::LtEq) {
            if index.is_some() {
                return Err(self.error_here("indexed signal assignment is not supported in VASS"));
            }
            let value = self.parse_expr()?;
            let end = self.expect(&TokenKind::Semicolon)?;
            Ok(SeqStmt::new(SeqStmtKind::SignalAssign { target, value }, start.merge(end.span)))
        } else {
            Err(self.error_here(format!(
                "expected `:=` or `<=` after `{}`, found {}",
                target.name,
                self.peek_kind().describe()
            )))
        }
    }

    fn parse_seq_body_until(&mut self, stops: &[Keyword]) -> Result<Vec<SeqStmt>, ParseError> {
        let mut body = Vec::new();
        while !stops.iter().any(|kw| self.check_keyword(*kw)) && !self.at_eof() {
            match self.parse_seq_stmt() {
                Ok(s) => body.push(s),
                Err(e) => self.recover_from(e, stops)?,
            }
        }
        Ok(body)
    }

    fn parse_seq_if(&mut self) -> Result<SeqStmt, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::If)?;
        let mut branches = Vec::new();
        let cond = self.parse_expr()?;
        self.expect_keyword(Keyword::Then)?;
        let body = self.parse_seq_body_until(&[Keyword::Elsif, Keyword::Else, Keyword::End])?;
        branches.push((cond, body));
        let mut else_body = Vec::new();
        loop {
            if self.eat_keyword(Keyword::Elsif) {
                let cond = self.parse_expr()?;
                self.expect_keyword(Keyword::Then)?;
                let body =
                    self.parse_seq_body_until(&[Keyword::Elsif, Keyword::Else, Keyword::End])?;
                branches.push((cond, body));
            } else if self.eat_keyword(Keyword::Else) {
                else_body = self.parse_seq_body_until(&[Keyword::End])?;
                break;
            } else {
                break;
            }
        }
        self.expect_keyword(Keyword::End)?;
        self.expect_keyword(Keyword::If)?;
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(SeqStmt::new(SeqStmtKind::If { branches, else_body }, start.merge(end.span)))
    }

    fn parse_seq_case(&mut self) -> Result<SeqStmt, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::Case)?;
        let selector = self.parse_expr()?;
        self.expect_keyword(Keyword::Is)?;
        let mut arms = Vec::new();
        while self.eat_keyword(Keyword::When) {
            let choices = self.parse_choices()?;
            self.expect(&TokenKind::Arrow)?;
            let body = self.parse_seq_body_until(&[Keyword::When, Keyword::End])?;
            arms.push(CaseArm { choices, body });
        }
        self.expect_keyword(Keyword::End)?;
        self.expect_keyword(Keyword::Case)?;
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(SeqStmt::new(SeqStmtKind::Case { selector, arms }, start.merge(end.span)))
    }

    fn parse_seq_for(&mut self) -> Result<SeqStmt, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::For)?;
        let var = self.expect_ident()?;
        self.expect_keyword(Keyword::In)?;
        let lo = self.parse_expr()?;
        let dir = if self.eat_keyword(Keyword::To) {
            Direction::To
        } else if self.eat_keyword(Keyword::Downto) {
            Direction::Downto
        } else {
            return Err(self.error_here("expected `to` or `downto` in for-loop range"));
        };
        let hi = self.parse_expr()?;
        self.expect_keyword(Keyword::Loop)?;
        let body = self.parse_seq_body_until(&[Keyword::End])?;
        self.expect_keyword(Keyword::End)?;
        self.expect_keyword(Keyword::Loop)?;
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(SeqStmt::new(SeqStmtKind::For { var, lo, dir, hi, body }, start.merge(end.span)))
    }

    fn parse_seq_while(&mut self) -> Result<SeqStmt, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::While)?;
        let cond = self.parse_expr()?;
        self.expect_keyword(Keyword::Loop)?;
        let body = self.parse_seq_body_until(&[Keyword::End])?;
        self.expect_keyword(Keyword::End)?;
        self.expect_keyword(Keyword::Loop)?;
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(SeqStmt::new(SeqStmtKind::While { cond, body }, start.merge(end.span)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ConcurrentStmt;
    use crate::parser::parse_design_file;

    fn arch_stmts(src: &str) -> Vec<ConcurrentStmt> {
        let full = format!(
            "entity e is end entity; architecture a of e is
             quantity rvar, x, y : real;
             signal c1 : bit;
             constant r1c : real := 220.0;
             constant r2c : real := 330.0;
             begin {src} end architecture;"
        );
        parse_design_file(&full).expect("parses").architecture_of("e").unwrap().stmts.clone()
    }

    #[test]
    fn parses_simple_simultaneous() {
        let stmts = arch_stmts("y == 2.0 * x + 1.0;");
        assert!(matches!(stmts[0], ConcurrentStmt::SimpleSimultaneous { .. }));
    }

    #[test]
    fn parses_labelled_simultaneous() {
        let stmts = arch_stmts("eq1: y == x;");
        match &stmts[0] {
            ConcurrentStmt::SimpleSimultaneous { label, .. } => {
                assert_eq!(label.as_ref().unwrap().name, "eq1");
            }
            other => panic!("expected simultaneous, got {other:?}"),
        }
    }

    #[test]
    fn parses_simultaneous_if_from_paper() {
        // Paper Fig. 2: rvar selection on signal c1.
        let stmts = arch_stmts(
            "if (c1 = '1') use
               rvar == r1c;
             else
               rvar == r1c + r2c;
             end use;",
        );
        match &stmts[0] {
            ConcurrentStmt::SimultaneousIf { branches, else_body, .. } => {
                assert_eq!(branches.len(), 1);
                assert_eq!(branches[0].1.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected simultaneous if, got {other:?}"),
        }
    }

    #[test]
    fn parses_simultaneous_if_with_elsif() {
        let stmts = arch_stmts(
            "if (c1 = '1') use y == x;
             elsif (c1 = '0') use y == 2.0 * x;
             else y == 0.0;
             end use;",
        );
        match &stmts[0] {
            ConcurrentStmt::SimultaneousIf { branches, else_body, .. } => {
                assert_eq!(branches.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected simultaneous if, got {other:?}"),
        }
    }

    #[test]
    fn parses_simultaneous_case() {
        let stmts = arch_stmts(
            "case c1 use
               when '0' => y == x;
               when others => y == 0.0 - x;
             end case;",
        );
        match &stmts[0] {
            ConcurrentStmt::SimultaneousCase { arms, .. } => {
                assert_eq!(arms.len(), 2);
                assert!(matches!(arms[1].choices[0], crate::ast::Choice::Others));
            }
            other => panic!("expected simultaneous case, got {other:?}"),
        }
    }

    #[test]
    fn parses_process_from_paper() {
        // Paper Fig. 2: compensation process.
        let stmts = arch_stmts(
            "process (line'above(vth)) is
             begin
               if (line'above(vth) = true) then
                 c1 <= '1';
               else
                 c1 <= '0';
               end if;
             end process;",
        );
        match &stmts[0] {
            ConcurrentStmt::Process { sensitivity, body, .. } => {
                assert_eq!(sensitivity.len(), 1);
                assert_eq!(body.len(), 1);
                match &body[0].kind {
                    SeqStmtKind::If { branches, else_body } => {
                        assert_eq!(branches.len(), 1);
                        assert_eq!(else_body.len(), 1);
                        assert!(matches!(
                            branches[0].1[0].kind,
                            SeqStmtKind::SignalAssign { .. }
                        ));
                    }
                    other => panic!("expected if, got {other:?}"),
                }
            }
            other => panic!("expected process, got {other:?}"),
        }
    }

    #[test]
    fn parses_procedural_with_loops() {
        let stmts = arch_stmts(
            "procedural is
               variable acc : real;
               variable i : integer;
             begin
               acc := 0.0;
               for i in 1 to 4 loop
                 acc := acc + x;
               end loop;
               while acc > 0.5 loop
                 acc := acc / 2.0;
               end loop;
               y := acc;
             end procedural;",
        );
        match &stmts[0] {
            ConcurrentStmt::Procedural { decls, body, .. } => {
                assert_eq!(decls.len(), 2);
                assert_eq!(body.len(), 4);
                assert!(matches!(body[1].kind, SeqStmtKind::For { .. }));
                assert!(matches!(body[2].kind, SeqStmtKind::While { .. }));
            }
            other => panic!("expected procedural, got {other:?}"),
        }
    }

    #[test]
    fn parses_wait_for_later_rejection() {
        let stmts = arch_stmts("process is begin wait for 10 ns; end process;");
        match &stmts[0] {
            ConcurrentStmt::Process { body, .. } => {
                assert!(matches!(body[0].kind, SeqStmtKind::Wait));
            }
            other => panic!("expected process, got {other:?}"),
        }
    }

    #[test]
    fn parses_annotation_statement() {
        let stmts = arch_stmts("quantity rvar is range 220.0 to 550.0;");
        match &stmts[0] {
            ConcurrentStmt::AnnotationStmt { target, annotations, .. } => {
                assert_eq!(target.name, "rvar");
                assert_eq!(annotations.len(), 1);
            }
            other => panic!("expected annotation stmt, got {other:?}"),
        }
    }

    #[test]
    fn parses_case_stmt_sequential() {
        let stmts = arch_stmts(
            "process is begin
               case c1 is
                 when '0' | '1' => null;
                 when others => null;
               end case;
             end process;",
        );
        match &stmts[0] {
            ConcurrentStmt::Process { body, .. } => match &body[0].kind {
                SeqStmtKind::Case { arms, .. } => {
                    assert_eq!(arms.len(), 2);
                    assert_eq!(arms[0].choices.len(), 2);
                }
                other => panic!("expected case, got {other:?}"),
            },
            other => panic!("expected process, got {other:?}"),
        }
    }

    #[test]
    fn missing_eqeq_gives_helpful_error() {
        let full = "entity e is end entity; architecture a of e is begin y = x; end architecture;";
        let err = parse_design_file(full).unwrap_err();
        assert!(err.to_string().contains("=="), "got: {err}");
    }

    #[test]
    fn indexed_assignment_parses() {
        let stmts = arch_stmts(
            "procedural is
               variable v : real_vector(0 to 3);
             begin
               v(2) := x;
             end procedural;",
        );
        match &stmts[0] {
            ConcurrentStmt::Procedural { body, .. } => match &body[0].kind {
                SeqStmtKind::VarAssign { index, .. } => assert!(index.is_some()),
                other => panic!("expected assign, got {other:?}"),
            },
            other => panic!("expected procedural, got {other:?}"),
        }
    }
}
