//! Parsing of design units, declarations, ports, types, and
//! annotations.

use crate::annot::{Annotation, SignalKind};
use crate::ast::{
    Architecture, Entity, FunctionDecl, Ident, Mode, ObjectClass, ObjectDecl, PortClass,
    PortDecl, TypeName,
};
use crate::ast::design::Package;
use crate::error::ParseError;
use crate::parser::Parser;
use crate::token::{Keyword, TokenKind};

impl Parser {
    /// entity := `entity` id `is` [`port` `(` ports `)` `;`] `end` [`entity`] [id] `;`
    pub(crate) fn parse_entity(&mut self) -> Result<Entity, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::Entity)?;
        let name = self.expect_ident()?;
        self.expect_keyword(Keyword::Is)?;
        let mut ports = Vec::new();
        if self.eat_keyword(Keyword::Port) {
            self.expect(&TokenKind::LParen)?;
            loop {
                match self.parse_port_decl() {
                    Ok(port) => ports.push(port),
                    Err(e) => {
                        // Recovery: skip the broken port, resume at the
                        // next `;` (next port) or `)` (end of list).
                        self.note_error(e)?;
                        while !self.at_eof()
                            && !matches!(
                                self.peek_kind(),
                                TokenKind::Semicolon | TokenKind::RParen
                            )
                            && !self.check_keyword(Keyword::End)
                        {
                            self.advance();
                        }
                        if self.check_keyword(Keyword::End) || self.at_eof() {
                            break;
                        }
                    }
                }
                if !self.eat(&TokenKind::Semicolon) {
                    break;
                }
                // allow a trailing semicolon before `)`
                if self.peek_kind() == &TokenKind::RParen {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semicolon)?;
        }
        self.expect_keyword(Keyword::End)?;
        self.eat_keyword(Keyword::Entity);
        self.eat_trailing_name();
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(Entity { name, ports, span: start.merge(end.span) })
    }

    /// port := (`quantity`|`signal`|`terminal`) ids `:` [mode] type [`is` annots]
    fn parse_port_decl(&mut self) -> Result<PortDecl, ParseError> {
        let start = self.here();
        let class = if self.eat_keyword(Keyword::Quantity) {
            PortClass::Quantity
        } else if self.eat_keyword(Keyword::Signal) {
            PortClass::Signal
        } else if self.eat_keyword(Keyword::Terminal) {
            PortClass::Terminal
        } else {
            return Err(self.error_here(
                "expected `quantity`, `signal`, or `terminal` port class",
            ));
        };
        let names = self.parse_ident_list()?;
        self.expect(&TokenKind::Colon)?;
        let mode = if self.eat_keyword(Keyword::In) {
            Mode::In
        } else if self.eat_keyword(Keyword::Out) {
            Mode::Out
        } else if self.eat_keyword(Keyword::Inout) || class == PortClass::Terminal {
            // Terminals have no mode in VHDL-AMS; treat them as inout.
            Mode::Inout
        } else {
            return Err(self.error_here("expected port mode `in`, `out`, or `inout`"));
        };
        let ty = self.parse_type_name()?;
        let annotations = self.parse_optional_annotations()?;
        let span = start.merge(self.here());
        Ok(PortDecl { class, names, mode, ty, annotations, span })
    }

    /// architecture := `architecture` id `of` id `is` {decl} `begin`
    ///                 {concurrent} `end` [`architecture`] [id] `;`
    pub(crate) fn parse_architecture(&mut self) -> Result<Architecture, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::Architecture)?;
        let name = self.expect_ident()?;
        self.expect_keyword(Keyword::Of)?;
        let entity = self.expect_ident()?;
        self.expect_keyword(Keyword::Is)?;
        let mut decls = Vec::new();
        let mut functions = Vec::new();
        while !self.check_keyword(Keyword::Begin)
            && !self.check_keyword(Keyword::End)
            && !self.at_eof()
        {
            let item = if self.check_keyword(Keyword::Function) {
                self.parse_function_decl().map(|f| functions.push(f))
            } else {
                self.parse_object_decl().map(|d| decls.push(d))
            };
            if let Err(e) = item {
                self.recover_from(e, &[Keyword::Begin, Keyword::End])?;
            }
        }
        self.expect_keyword(Keyword::Begin)?;
        let mut stmts = Vec::new();
        while !self.check_keyword(Keyword::End) && !self.at_eof() {
            match self.parse_concurrent_stmt() {
                Ok(s) => stmts.push(s),
                Err(e) => self.recover_from(e, &[Keyword::End])?,
            }
        }
        self.expect_keyword(Keyword::End)?;
        self.eat_keyword(Keyword::Architecture);
        self.eat_trailing_name();
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(Architecture {
            name,
            entity,
            decls,
            functions,
            stmts,
            span: start.merge(end.span),
        })
    }

    /// package := `package` id `is` {decl|function} `end` [`package`] [id] `;`
    pub(crate) fn parse_package(&mut self) -> Result<Package, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::Package)?;
        // Accept (and ignore) `body` — VASS merges package and body.
        self.eat_keyword(Keyword::Body);
        let name = self.expect_ident()?;
        self.expect_keyword(Keyword::Is)?;
        let mut decls = Vec::new();
        let mut functions = Vec::new();
        while !self.check_keyword(Keyword::End) && !self.at_eof() {
            let item = if self.check_keyword(Keyword::Function) {
                self.parse_function_decl().map(|f| functions.push(f))
            } else {
                self.parse_object_decl().map(|d| decls.push(d))
            };
            if let Err(e) = item {
                self.recover_from(e, &[Keyword::End])?;
            }
        }
        self.expect_keyword(Keyword::End)?;
        self.eat_keyword(Keyword::Package);
        self.eat_trailing_name();
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(Package { name, decls, functions, span: start.merge(end.span) })
    }

    /// object_decl := class ids `:` type [`:=` expr] [`is` annots] `;`
    pub(crate) fn parse_object_decl(&mut self) -> Result<ObjectDecl, ParseError> {
        let start = self.here();
        let class = if self.eat_keyword(Keyword::Quantity) {
            ObjectClass::Quantity
        } else if self.eat_keyword(Keyword::Signal) {
            ObjectClass::Signal
        } else if self.eat_keyword(Keyword::Terminal) {
            ObjectClass::Terminal
        } else if self.eat_keyword(Keyword::Constant) {
            ObjectClass::Constant
        } else if self.eat_keyword(Keyword::Variable) {
            ObjectClass::Variable
        } else {
            return Err(self.error_here(format!(
                "expected declaration, found {}",
                self.peek_kind().describe()
            )));
        };
        let names = self.parse_ident_list()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.parse_type_name()?;
        let init = if self.eat(&TokenKind::ColonEq) { Some(self.parse_expr()?) } else { None };
        let annotations = self.parse_optional_annotations()?;
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(ObjectDecl { class, names, ty, init, annotations, span: start.merge(end.span) })
    }

    /// function := `function` id `(` [params] `)` `return` type `is`
    ///             {var decls} `begin` {seq} `end` [`function`] [id] `;`
    pub(crate) fn parse_function_decl(&mut self) -> Result<FunctionDecl, ParseError> {
        let start = self.here();
        self.expect_keyword(Keyword::Function)?;
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if self.peek_kind() != &TokenKind::RParen {
                loop {
                    let pnames = self.parse_ident_list()?;
                    self.expect(&TokenKind::Colon)?;
                    let pty = self.parse_type_name()?;
                    for pn in pnames {
                        params.push((pn, pty.clone()));
                    }
                    if !self.eat(&TokenKind::Semicolon) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect_keyword(Keyword::Return)?;
        let ret = self.parse_type_name()?;
        self.expect_keyword(Keyword::Is)?;
        let mut decls = Vec::new();
        while !self.check_keyword(Keyword::Begin)
            && !self.check_keyword(Keyword::End)
            && !self.at_eof()
        {
            match self.parse_object_decl() {
                Ok(d) => decls.push(d),
                Err(e) => self.recover_from(e, &[Keyword::Begin, Keyword::End])?,
            }
        }
        self.expect_keyword(Keyword::Begin)?;
        let mut body = Vec::new();
        while !self.check_keyword(Keyword::End) && !self.at_eof() {
            match self.parse_seq_stmt() {
                Ok(s) => body.push(s),
                Err(e) => self.recover_from(e, &[Keyword::End])?,
            }
        }
        self.expect_keyword(Keyword::End)?;
        self.eat_keyword(Keyword::Function);
        self.eat_trailing_name();
        let end = self.expect(&TokenKind::Semicolon)?;
        Ok(FunctionDecl { name, params, ret, decls, body, span: start.merge(end.span) })
    }

    pub(crate) fn parse_ident_list(&mut self) -> Result<Vec<Ident>, ParseError> {
        let mut names = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.expect_ident()?);
        }
        Ok(names)
    }

    /// type := real | integer | boolean | bit
    ///       | bit_vector `(` int (to|downto) int `)`
    ///       | real_vector `(` int (to|downto) int `)`
    ///       | electrical
    pub(crate) fn parse_type_name(&mut self) -> Result<TypeName, ParseError> {
        let id = self.expect_ident()?;
        match id.name.as_str() {
            "real" => Ok(TypeName::Real),
            "integer" => Ok(TypeName::Integer),
            "boolean" => Ok(TypeName::Boolean),
            "bit" => Ok(TypeName::Bit),
            "electrical" => Ok(TypeName::Electrical),
            "bit_vector" | "real_vector" => {
                self.expect(&TokenKind::LParen)?;
                let lo = self.parse_int_bound()?;
                let descending = if self.eat_keyword(Keyword::To) {
                    false
                } else if self.eat_keyword(Keyword::Downto) {
                    true
                } else {
                    return Err(self.error_here("expected `to` or `downto` in range"));
                };
                let hi = self.parse_int_bound()?;
                self.expect(&TokenKind::RParen)?;
                let (lo, hi) = if descending { (hi, lo) } else { (lo, hi) };
                if id.name == "bit_vector" {
                    Ok(TypeName::BitVector { lo, hi })
                } else {
                    Ok(TypeName::RealVector { lo, hi })
                }
            }
            other => Err(self.error_here(format!(
                "unknown type `{other}` (VASS types: real, integer, boolean, bit, \
                 bit_vector, real_vector, electrical)"
            ))),
        }
    }

    fn parse_int_bound(&mut self) -> Result<i64, ParseError> {
        match *self.peek_kind() {
            TokenKind::IntLiteral(v) => {
                self.advance();
                Ok(v)
            }
            _ => Err(self.error_here("expected integer bound")),
        }
    }

    /// annots := `is` annot { annot }
    pub(crate) fn parse_optional_annotations(&mut self) -> Result<Vec<Annotation>, ParseError> {
        if !self.eat_keyword(Keyword::Is) {
            return Ok(Vec::new());
        }
        self.parse_annotation_list()
    }

    pub(crate) fn parse_annotation_list(&mut self) -> Result<Vec<Annotation>, ParseError> {
        let mut annotations = Vec::new();
        loop {
            let ann = if self.eat_keyword(Keyword::Voltage) {
                Annotation::Kind(SignalKind::Voltage)
            } else if self.eat_keyword(Keyword::Current) {
                Annotation::Kind(SignalKind::Current)
            } else if self.eat_keyword(Keyword::Limited) {
                let level = if self.eat_keyword(Keyword::At) {
                    Some(self.parse_physical_value()?)
                } else {
                    None
                };
                Annotation::Limited { level }
            } else if self.eat_keyword(Keyword::Drives) {
                let load_ohms = self.parse_physical_value()?;
                self.expect_keyword(Keyword::At)?;
                let peak_volts = self.parse_physical_value()?;
                self.expect_keyword(Keyword::Peak)?;
                Annotation::Drives { load_ohms, peak_volts }
            } else if self.eat_keyword(Keyword::Range) {
                let lo = self.parse_physical_value()?;
                self.expect_keyword(Keyword::To)?;
                let hi = self.parse_physical_value()?;
                Annotation::ValueRange { lo, hi }
            } else if self.eat_keyword(Keyword::Frequency) {
                let lo = self.parse_physical_value()?;
                self.expect_keyword(Keyword::To)?;
                let hi = self.parse_physical_value()?;
                Annotation::FrequencyRange { lo, hi }
            } else if self.eat_keyword(Keyword::Impedance) {
                let ohms = self.parse_physical_value()?;
                Annotation::Impedance { ohms }
            } else {
                break;
            };
            annotations.push(ann);
        }
        if annotations.is_empty() {
            return Err(self.error_here(
                "expected at least one annotation after `is` (voltage, current, limited, \
                 drives, range, frequency, impedance)",
            ));
        }
        Ok(annotations)
    }

    /// physical := [+|-] number [unit]
    ///
    /// Units scale the literal to SI base units: `270 ohm` → 270.0,
    /// `285 mv` → 0.285, `3.4 khz` → 3400.0.
    pub(crate) fn parse_physical_value(&mut self) -> Result<f64, ParseError> {
        let negative = if self.eat(&TokenKind::Minus) {
            true
        } else {
            self.eat(&TokenKind::Plus);
            false
        };
        let magnitude = match *self.peek_kind() {
            TokenKind::IntLiteral(v) => {
                self.advance();
                v as f64
            }
            TokenKind::RealLiteral(v) => {
                self.advance();
                v
            }
            _ => return Err(self.error_here("expected numeric value")),
        };
        let scale = if let TokenKind::Ident(unit) = self.peek_kind() {
            match unit_scale(unit) {
                Some(s) => {
                    self.advance();
                    s
                }
                None => 1.0,
            }
        } else {
            1.0
        };
        // Scaling by a decimal unit factor (e.g. 285 × 1e-3) introduces
        // binary round-off the source never asked for; snap to 12
        // significant digits so `285 mv` means exactly 0.285.
        let value = tidy(magnitude * scale);
        Ok(if negative { -value } else { value })
    }
}

/// Round to 12 significant digits (removes unit-scaling round-off).
fn tidy(value: f64) -> f64 {
    if value == 0.0 || !value.is_finite() {
        return value;
    }
    format!("{value:.12e}").parse().unwrap_or(value)
}

/// SI scale factor for a (lower-cased) unit suffix, or `None` if the
/// identifier is not a recognized unit.
fn unit_scale(unit: &str) -> Option<f64> {
    Some(match unit {
        "v" | "volt" | "volts" => 1.0,
        "mv" => 1e-3,
        "uv" => 1e-6,
        "kv" => 1e3,
        "a" | "amp" | "amps" => 1.0,
        "ma" => 1e-3,
        "ua" => 1e-6,
        "na" => 1e-9,
        "ohm" | "ohms" | "o" => 1.0,
        "kohm" | "kohms" => 1e3,
        "megohm" | "megohms" => 1e6,
        "hz" => 1.0,
        "khz" => 1e3,
        "mhz" => 1e6,
        "ghz" => 1e9,
        "s" | "sec" => 1.0,
        "ms" => 1e-3,
        "us" => 1e-6,
        "ns" => 1e-9,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_design_file;

    #[test]
    fn parses_telephone_entity_from_paper() {
        // Paper Fig. 2 entity, written with VASS inline annotations.
        let src = "
            entity telephone is
              port (
                quantity line  : in  real is voltage;
                quantity local : in  real is voltage;
                quantity earph : out real is voltage limited at 1.5 v
                                            drives 270 ohm at 285 mv peak
              );
            end entity;
        ";
        let df = parse_design_file(src).expect("parses");
        let e = df.entity("telephone").expect("entity");
        assert_eq!(e.ports.len(), 3);
        let earph = e.port("earph").expect("port");
        assert_eq!(earph.mode, Mode::Out);
        let set = crate::annot::AnnotationSet::new(&earph.annotations);
        assert_eq!(set.kind(), Some(SignalKind::Voltage));
        assert_eq!(set.limit_level(), Some(1.5));
        let (load, peak) = set.drive().expect("drive annotation");
        assert_eq!(load, 270.0);
        assert!((peak - 0.285).abs() < 1e-12);
    }

    #[test]
    fn parses_multi_name_ports() {
        let src = "
            entity e is
              port (quantity a, b, c : in real is voltage);
            end entity;
        ";
        let df = parse_design_file(src).expect("parses");
        assert_eq!(df.entity("e").unwrap().ports[0].names.len(), 3);
    }

    #[test]
    fn parses_terminal_port_without_mode() {
        let src = "
            entity e is
              port (terminal t1 : electrical is impedance 10 kohm);
            end entity;
        ";
        let df = parse_design_file(src).expect("parses");
        let p = &df.entity("e").unwrap().ports[0];
        assert_eq!(p.class, PortClass::Terminal);
        assert_eq!(p.ty, TypeName::Electrical);
        let set = crate::annot::AnnotationSet::new(&p.annotations);
        assert_eq!(set.impedance(), Some(1e4));
    }

    #[test]
    fn parses_architecture_decls() {
        let src = "
            entity e is end entity;
            architecture a of e is
              quantity rvar : real;
              signal c1 : bit;
              constant r1c : real := 220.0;
              constant gains : real_vector(0 to 2);
              signal word : bit_vector(3 downto 0);
            begin
            end architecture;
        ";
        let df = parse_design_file(src).expect("parses");
        let arch = df.architecture_of("e").expect("arch");
        assert_eq!(arch.decls.len(), 5);
        assert_eq!(arch.decls[0].class, ObjectClass::Quantity);
        assert_eq!(arch.decls[2].init.as_ref().and_then(|e| e.const_fold()), Some(220.0));
        assert_eq!(arch.decls[4].ty, TypeName::BitVector { lo: 0, hi: 3 });
    }

    #[test]
    fn parses_function_decl() {
        let src = "
            entity e is end entity;
            architecture a of e is
              function sq(x : real) return real is
              begin
                return x * x;
              end function;
            begin
            end architecture;
        ";
        let df = parse_design_file(src).expect("parses");
        let arch = df.architecture_of("e").expect("arch");
        assert_eq!(arch.functions.len(), 1);
        assert_eq!(arch.functions[0].params.len(), 1);
        assert_eq!(arch.functions[0].ret, TypeName::Real);
    }

    #[test]
    fn parses_package() {
        let src = "
            package consts is
              constant vth : real := 0.7;
            end package;
        ";
        let df = parse_design_file(src).expect("parses");
        assert_eq!(df.packages().count(), 1);
    }

    #[test]
    fn unknown_type_rejected() {
        let src = "entity e is port (quantity q : in voltageish); end entity;";
        assert!(parse_design_file(src).is_err());
    }

    #[test]
    fn physical_values_are_tidy() {
        let src = "entity e is
                     port (quantity q : in real is voltage range -285 mv to 285 mv);
                   end entity;";
        let df = parse_design_file(src).expect("parses");
        let set = crate::annot::AnnotationSet::new(&df.entity("e").unwrap().ports[0].annotations);
        assert_eq!(set.value_range(), Some((-0.285, 0.285)));
    }

    #[test]
    fn unit_scales() {
        assert_eq!(unit_scale("mv"), Some(1e-3));
        assert_eq!(unit_scale("kohm"), Some(1e3));
        assert_eq!(unit_scale("ghz"), Some(1e9));
        assert_eq!(unit_scale("parsec"), None);
    }

    #[test]
    fn annotation_value_range_with_negatives() {
        let src = "
            entity e is
              port (quantity q : in real is voltage range -2.5 to 2.5);
            end entity;
        ";
        let df = parse_design_file(src).expect("parses");
        let p = &df.entity("e").unwrap().ports[0];
        let set = crate::annot::AnnotationSet::new(&p.annotations);
        assert_eq!(set.value_range(), Some((-2.5, 2.5)));
    }

    #[test]
    fn empty_annotation_list_is_error() {
        let src = "entity e is port (quantity q : in real is); end entity;";
        assert!(parse_design_file(src).is_err());
    }
}
