//! Expression parsing (VHDL precedence).

use crate::ast::{AttributeKind, BinaryOp, Expr, ExprKind, UnaryOp};
use crate::error::ParseError;
use crate::parser::Parser;
use crate::token::{Keyword, TokenKind};

impl Parser {
    /// expr := relation { (and|or|xor|nand|nor) relation }
    pub(crate) fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_relation()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Keyword(Keyword::And) => BinaryOp::And,
                TokenKind::Keyword(Keyword::Or) => BinaryOp::Or,
                TokenKind::Keyword(Keyword::Xor) => BinaryOp::Xor,
                TokenKind::Keyword(Keyword::Nand) => BinaryOp::Nand,
                TokenKind::Keyword(Keyword::Nor) => BinaryOp::Nor,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_relation()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    /// relation := simple_expr [relop simple_expr]
    fn parse_relation(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_simple_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.parse_simple_expr()?;
        let span = lhs.span.merge(rhs.span);
        Ok(Expr::new(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span))
    }

    /// simple_expr := [+|-] term { (+|-|&) term }
    fn parse_simple_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.here();
        let unary = match self.peek_kind() {
            TokenKind::Plus => {
                self.advance();
                Some(UnaryOp::Plus)
            }
            TokenKind::Minus => {
                self.advance();
                Some(UnaryOp::Neg)
            }
            _ => None,
        };
        let mut lhs = self.parse_term()?;
        if let Some(op) = unary {
            let span = start.merge(lhs.span);
            lhs = Expr::new(ExprKind::Unary { op, operand: Box::new(lhs) }, span);
        }
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                TokenKind::Ampersand => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_term()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    /// term := factor { (*|/|mod|rem) factor }
    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Keyword(Keyword::Mod) => BinaryOp::Mod,
                TokenKind::Keyword(Keyword::Rem) => BinaryOp::Rem,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_factor()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    /// factor := primary [** primary] | abs primary | not primary
    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        let start = self.here();
        if self.eat_keyword(Keyword::Abs) {
            let operand = self.parse_primary()?;
            let span = start.merge(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary { op: UnaryOp::Abs, operand: Box::new(operand) },
                span,
            ));
        }
        if self.eat_keyword(Keyword::Not) {
            let operand = self.parse_primary()?;
            let span = start.merge(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary { op: UnaryOp::Not, operand: Box::new(operand) },
                span,
            ));
        }
        let base = self.parse_primary()?;
        if self.eat(&TokenKind::StarStar) {
            let exp = self.parse_primary()?;
            let span = base.span.merge(exp.span);
            return Ok(Expr::new(
                ExprKind::Binary { op: BinaryOp::Pow, lhs: Box::new(base), rhs: Box::new(exp) },
                span,
            ));
        }
        Ok(base)
    }

    /// primary := literal | true | false | name | ( expr )
    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.here();
        match self.peek_kind().clone() {
            TokenKind::IntLiteral(v) => {
                self.advance();
                Ok(Expr::new(ExprKind::Int(v), span))
            }
            TokenKind::RealLiteral(v) => {
                self.advance();
                Ok(Expr::new(ExprKind::Real(v), span))
            }
            TokenKind::CharLiteral(c) => {
                self.advance();
                Ok(Expr::new(ExprKind::Char(c), span))
            }
            TokenKind::StringLiteral(s) => {
                self.advance();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::new(ExprKind::Bool(true), span))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::new(ExprKind::Bool(false), span))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(_) => self.parse_name(),
            other => Err(self.error_here(format!(
                "expected expression, found {}",
                other.describe()
            ))),
        }
    }

    /// name := ident [ ( args ) ] [ ' attr_ident [ ( args ) ] ]
    pub(crate) fn parse_name(&mut self) -> Result<Expr, ParseError> {
        let id = self.expect_ident()?;
        let mut span = id.span;
        let mut expr = if self.peek_kind() == &TokenKind::LParen {
            self.advance();
            let mut args = Vec::new();
            if self.peek_kind() != &TokenKind::RParen {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            let close = self.expect(&TokenKind::RParen)?;
            span = span.merge(close.span);
            Expr::new(ExprKind::Call { name: id, args }, span)
        } else {
            Expr::new(ExprKind::Name(id), span)
        };

        while self.peek_kind() == &TokenKind::Tick {
            // Attribute: prefix must currently be a simple name.
            let prefix = match &expr.kind {
                ExprKind::Name(id) => id.clone(),
                _ => {
                    return Err(self.error_here(
                        "attributes may only be applied to simple names in VASS",
                    ))
                }
            };
            self.advance(); // tick
            // `across`/`through` double as annotation keywords, so the
            // attribute name may arrive as an identifier or a keyword.
            let attr_name = match self.peek_kind().clone() {
                TokenKind::Ident(name) => {
                    self.advance();
                    name
                }
                TokenKind::Keyword(Keyword::Across) => {
                    self.advance();
                    "across".to_owned()
                }
                TokenKind::Keyword(Keyword::Through) => {
                    self.advance();
                    "through".to_owned()
                }
                other => {
                    return Err(self.error_here(format!(
                        "expected attribute name after `'`, found {}",
                        other.describe()
                    )))
                }
            };
            let attr = AttributeKind::from_name(&attr_name).ok_or_else(|| {
                self.error_here(format!(
                    "unknown attribute `'{attr_name}` (VASS supports 'above, 'dot, 'integ, \
                     'delayed, 'across, 'through)"
                ))
            })?;
            let mut args = Vec::new();
            if self.eat(&TokenKind::LParen) {
                if self.peek_kind() != &TokenKind::RParen {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let close = self.expect(&TokenKind::RParen)?;
                span = span.merge(close.span);
            }
            expr = Expr::new(ExprKind::Attribute { prefix, attr, args }, span);
        }
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::{AttributeKind, BinaryOp, ExprKind, UnaryOp};
    use crate::parser::parse_expression;

    fn parse(src: &str) -> crate::ast::Expr {
        parse_expression(src).expect("expression parses")
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse("a + b * c");
        assert_eq!(e.to_string(), "(a + (b * c))");
    }

    #[test]
    fn parenthesization_overrides() {
        let e = parse("(a + b) * c");
        assert_eq!(e.to_string(), "((a + b) * c)");
    }

    #[test]
    fn relational_binds_looser_than_arith() {
        let e = parse("a + b >= c * d");
        match e.kind {
            ExprKind::Binary { op, .. } => assert_eq!(op, BinaryOp::GtEq),
            _ => panic!("expected binary"),
        }
    }

    #[test]
    fn logical_binds_loosest() {
        let e = parse("a = b and c = d");
        match e.kind {
            ExprKind::Binary { op, .. } => assert_eq!(op, BinaryOp::And),
            _ => panic!("expected binary"),
        }
    }

    #[test]
    fn unary_minus() {
        let e = parse("-a + b");
        assert_eq!(e.to_string(), "((-(a)) + b)");
    }

    #[test]
    fn power_operator() {
        let e = parse("a ** 2");
        match e.kind {
            ExprKind::Binary { op, .. } => assert_eq!(op, BinaryOp::Pow),
            _ => panic!("expected pow"),
        }
    }

    #[test]
    fn abs_and_not() {
        let e = parse("abs x");
        assert!(matches!(e.kind, ExprKind::Unary { op: UnaryOp::Abs, .. }));
        let e = parse("not done");
        assert!(matches!(e.kind, ExprKind::Unary { op: UnaryOp::Not, .. }));
    }

    #[test]
    fn function_call_and_indexing_shape() {
        let e = parse("f(a, b + 1.0)");
        match e.kind {
            ExprKind::Call { name, args } => {
                assert_eq!(name.name, "f");
                assert_eq!(args.len(), 2);
            }
            _ => panic!("expected call"),
        }
    }

    #[test]
    fn above_attribute_from_paper() {
        // Paper Fig. 2: line'ABOVE(Vth)
        let e = parse("line'above(vth)");
        match e.kind {
            ExprKind::Attribute { prefix, attr, args } => {
                assert_eq!(prefix.name, "line");
                assert_eq!(attr, AttributeKind::Above);
                assert_eq!(args.len(), 1);
            }
            _ => panic!("expected attribute"),
        }
    }

    #[test]
    fn dot_attribute_no_args() {
        let e = parse("x'dot");
        match e.kind {
            ExprKind::Attribute { attr, args, .. } => {
                assert_eq!(attr, AttributeKind::Dot);
                assert!(args.is_empty());
            }
            _ => panic!("expected attribute"),
        }
    }

    #[test]
    fn unknown_attribute_rejected() {
        assert!(parse_expression("x'zen").is_err());
    }

    #[test]
    fn char_literal_comparison() {
        let e = parse("c1 = '1'");
        match e.kind {
            ExprKind::Binary { op, rhs, .. } => {
                assert_eq!(op, BinaryOp::Eq);
                assert!(matches!(rhs.kind, ExprKind::Char('1')));
            }
            _ => panic!("expected binary"),
        }
    }

    #[test]
    fn boolean_literals() {
        assert!(matches!(parse("true").kind, ExprKind::Bool(true)));
        assert!(matches!(parse("false").kind, ExprKind::Bool(false)));
    }

    #[test]
    fn deep_nesting_parses() {
        let mut src = String::new();
        for _ in 0..60 {
            src.push('(');
        }
        src.push('x');
        for _ in 0..60 {
            src.push(')');
        }
        assert!(parse_expression(&src).is_ok());
    }
}
