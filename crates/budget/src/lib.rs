//! Cooperative compute budgets for long-running synthesis stages.
//!
//! Branch-and-bound mapping is worst-case exponential in the number of
//! solver candidates, so production use (ROADMAP north star: bounded
//! synthesis latency) needs a way to say "give me the best architecture
//! you can find in 200 ms / 50k nodes" rather than waiting for an
//! exhaustive proof of optimality. This crate provides the three
//! primitives the flow threads through its search loops:
//!
//! * [`Budget`] — a declarative limit (wall-clock deadline and/or
//!   explored-node cap) carried inside mapper configuration;
//! * [`CancelToken`] — an out-of-band cooperative cancellation handle a
//!   caller can trip from another thread;
//! * [`BudgetMeter`] — the shared runtime counterpart: search loops
//!   call [`BudgetMeter::note_node`] once per explored node and unwind
//!   (keeping their incumbent) as soon as it reports exhaustion.
//!
//! The contract is *anytime*, not abortive: exhaustion never discards
//! work already done. Callers that observe [`BudgetMeter::exhausted`]
//! return their best-so-far result flagged `budget_exhausted` (see
//! `vase_archgen::MapStats`), and the diagnostic layer reports the
//! condition as `A210` instead of an error.

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Declarative compute limits for a search or synthesis stage.
///
/// The default budget is unlimited; either or both limits may be set.
/// `Budget` is plain data (`Copy`) so it can live inside configuration
/// structs; the runtime state lives in the [`BudgetMeter`] built from
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Budget {
    /// Wall-clock deadline in milliseconds, measured from the moment
    /// the meter is created. `None` means no deadline.
    pub deadline_ms: Option<u64>,
    /// Maximum number of explored search nodes across all workers.
    /// `None` means no node cap.
    pub max_nodes: Option<u64>,
}

impl Budget {
    /// A budget with no limits: searches run to completion.
    pub const fn unlimited() -> Self {
        Budget { deadline_ms: None, max_nodes: None }
    }

    /// A node-count budget with no deadline.
    pub const fn nodes(max_nodes: u64) -> Self {
        Budget { deadline_ms: None, max_nodes: Some(max_nodes) }
    }

    /// A wall-clock budget with no node cap.
    pub const fn deadline_ms(ms: u64) -> Self {
        Budget { deadline_ms: Some(ms), max_nodes: None }
    }

    /// Whether any limit is set.
    pub fn is_limited(&self) -> bool {
        self.deadline_ms.is_some() || self.max_nodes.is_some()
    }

    /// The deadline as a [`Duration`], if one is set.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.deadline_ms, self.max_nodes) {
            (None, None) => write!(f, "unlimited"),
            (Some(ms), None) => write!(f, "{ms} ms"),
            (None, Some(n)) => write!(f, "{n} nodes"),
            (Some(ms), Some(n)) => write!(f, "{ms} ms / {n} nodes"),
        }
    }
}

/// Why a meter stopped a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The explored-node cap was reached.
    NodeCap,
    /// The caller tripped the [`CancelToken`].
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "deadline exceeded"),
            StopReason::NodeCap => write!(f, "node budget exhausted"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Cooperative cancellation handle.
///
/// Cloning shares the underlying flag: a caller keeps one clone and
/// hands another to the budgeted computation (via a [`BudgetMeter`]).
/// Cancellation is a one-way latch — there is no reset.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on any
    /// clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// How many `note_node` calls between wall-clock / token checks.
/// `Instant::now` costs tens of nanoseconds; amortizing it over a
/// power-of-two stride keeps metering invisible next to the real
/// per-node work (matching, bounding, memo probes).
pub const CHECK_STRIDE: u64 = 256;

/// Sentinel meaning "stop reason not yet recorded".
const STOP_NONE: u8 = 0;
const STOP_DEADLINE: u8 = 1;
const STOP_NODE_CAP: u8 = 2;
const STOP_CANCELLED: u8 = 3;

/// Shared runtime accounting for one budgeted computation.
///
/// Create one meter per top-level call and share it by reference with
/// every worker thread. Workers call [`note_node`](Self::note_node)
/// once per explored node; a `false` return (or a later
/// [`exhausted`](Self::exhausted) check) means "stop expanding and
/// return your incumbent". The first limit to trip is recorded and
/// sticky — once exhausted, a meter stays exhausted.
#[derive(Debug)]
pub struct BudgetMeter {
    start: Instant,
    deadline: Option<Duration>,
    /// Node cap; `u64::MAX` when unlimited.
    max_nodes: u64,
    token: Option<CancelToken>,
    nodes: AtomicU64,
    stopped: AtomicU8,
}

impl BudgetMeter {
    /// Start metering `budget`, optionally honouring `token`.
    pub fn new(budget: Budget, token: Option<CancelToken>) -> Self {
        BudgetMeter {
            start: Instant::now(),
            deadline: budget.deadline(),
            max_nodes: budget.max_nodes.unwrap_or(u64::MAX),
            token,
            nodes: AtomicU64::new(0),
            stopped: AtomicU8::new(STOP_NONE),
        }
    }

    /// An unlimited meter (never reports exhaustion on its own; a
    /// token, if supplied, can still stop it).
    pub fn unlimited() -> Self {
        Self::new(Budget::unlimited(), None)
    }

    /// Record one explored node. Returns `true` while the search may
    /// continue, `false` once any limit has tripped. The node cap is
    /// checked on every call; the deadline and cancel token every
    /// [`CHECK_STRIDE`] nodes (and on the first).
    pub fn note_node(&self) -> bool {
        if self.stopped.load(Ordering::Relaxed) != STOP_NONE {
            return false;
        }
        let n = self.nodes.fetch_add(1, Ordering::Relaxed);
        if n >= self.max_nodes {
            self.stop(STOP_NODE_CAP);
            return false;
        }
        if n.is_multiple_of(CHECK_STRIDE) {
            if self.token.as_ref().is_some_and(CancelToken::is_cancelled) {
                self.stop(STOP_CANCELLED);
                return false;
            }
            if self.deadline.is_some_and(|d| self.start.elapsed() >= d) {
                self.stop(STOP_DEADLINE);
                return false;
            }
        }
        true
    }

    /// Total nodes recorded so far across all workers.
    pub fn nodes_explored(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Whether any limit has tripped.
    pub fn exhausted(&self) -> bool {
        self.stopped.load(Ordering::Relaxed) != STOP_NONE
    }

    /// The first limit that tripped, if any.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self.stopped.load(Ordering::Relaxed) {
            STOP_DEADLINE => Some(StopReason::Deadline),
            STOP_NODE_CAP => Some(StopReason::NodeCap),
            STOP_CANCELLED => Some(StopReason::Cancelled),
            _ => None,
        }
    }

    fn stop(&self, reason: u8) {
        // First writer wins; later trips keep the original reason.
        let _ = self.stopped.compare_exchange(
            STOP_NONE,
            reason,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let meter = BudgetMeter::unlimited();
        for _ in 0..10_000 {
            assert!(meter.note_node());
        }
        assert!(!meter.exhausted());
        assert_eq!(meter.stop_reason(), None);
        assert_eq!(meter.nodes_explored(), 10_000);
    }

    #[test]
    fn node_cap_trips_exactly_at_limit() {
        let meter = BudgetMeter::new(Budget::nodes(100), None);
        let mut allowed = 0u64;
        for _ in 0..200 {
            if meter.note_node() {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 100);
        assert!(meter.exhausted());
        assert_eq!(meter.stop_reason(), Some(StopReason::NodeCap));
    }

    #[test]
    fn exhaustion_is_sticky() {
        let meter = BudgetMeter::new(Budget::nodes(1), None);
        assert!(meter.note_node());
        assert!(!meter.note_node());
        assert!(!meter.note_node());
        assert_eq!(meter.stop_reason(), Some(StopReason::NodeCap));
    }

    #[test]
    fn zero_deadline_trips_on_first_check() {
        let meter = BudgetMeter::new(Budget::deadline_ms(0), None);
        // The first note_node lands on the stride boundary and sees the
        // already-expired deadline.
        assert!(!meter.note_node());
        assert_eq!(meter.stop_reason(), Some(StopReason::Deadline));
    }

    #[test]
    fn cancel_token_stops_all_clones() {
        let token = CancelToken::new();
        let meter = BudgetMeter::new(Budget::unlimited(), Some(token.clone()));
        assert!(meter.note_node());
        token.cancel();
        // Cancellation is observed on the next stride boundary; drive
        // the meter across one.
        let mut stopped = false;
        for _ in 0..(CHECK_STRIDE + 1) {
            if !meter.note_node() {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
        assert_eq!(meter.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn budget_display_and_limit_queries() {
        assert_eq!(Budget::unlimited().to_string(), "unlimited");
        assert_eq!(Budget::nodes(50).to_string(), "50 nodes");
        assert_eq!(Budget::deadline_ms(200).to_string(), "200 ms");
        let both = Budget { deadline_ms: Some(10), max_nodes: Some(99) };
        assert_eq!(both.to_string(), "10 ms / 99 nodes");
        assert!(!Budget::unlimited().is_limited());
        assert!(Budget::nodes(1).is_limited());
        assert!(Budget::deadline_ms(1).is_limited());
        assert_eq!(Budget::deadline_ms(250).deadline(), Some(Duration::from_millis(250)));
    }
}
