//! Netlist-level performance estimation.
//!
//! For each placed component the estimator derives the op-amp specs its
//! circuit imposes (closed-loop gain × signal bandwidth → UGF; signal
//! swing × bandwidth → slew rate), sizes the op amps with the
//! square-law model, adds passive area, and aggregates area and power.
//! This is the role the branch-and-bound algorithm's `call analog
//! performance estimation tools` plays in paper Fig. 5.

use std::fmt;

use serde::{Deserialize, Serialize};
use vase_library::{ComponentKind, Netlist};

use crate::opamp::{min_opamp_area, size_opamp, OpAmpSpec};
use crate::process::ProcessParams;
use crate::topology::{min_topology_area, select_topology, OpAmpTopology};

/// System-level performance constraints the synthesized netlist must
/// satisfy (derived from VASS frequency/range annotations or supplied
/// directly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerformanceConstraints {
    /// Signal bandwidth the continuous-time path must process, Hz.
    pub bandwidth_hz: f64,
    /// Peak signal amplitude, V.
    pub signal_peak_v: f64,
    /// Maximum total static power, W (`f64::INFINITY` to disable).
    pub max_power_w: f64,
    /// Maximum total area, m² (`f64::INFINITY` to disable).
    pub max_area_m2: f64,
}

impl PerformanceConstraints {
    /// Audio-band defaults (telephone-channel style: 4 kHz, 1 V peak).
    pub fn audio() -> Self {
        PerformanceConstraints {
            bandwidth_hz: 4e3,
            signal_peak_v: 1.0,
            max_power_w: f64::INFINITY,
            max_area_m2: f64::INFINITY,
        }
    }
}

impl Default for PerformanceConstraints {
    fn default() -> Self {
        PerformanceConstraints::audio()
    }
}

/// Per-component estimation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentEstimate {
    /// Area, m².
    pub area_m2: f64,
    /// Static power, W.
    pub power_w: f64,
    /// The op-amp UGF the component's amplifiers were sized for, Hz.
    pub ugf_hz: f64,
    /// The slew rate they were sized for, V/s.
    pub slew_v_per_s: f64,
    /// The op-amp topology component selection bound (None for
    /// op-amp-free components such as switches and logic).
    pub topology: Option<OpAmpTopology>,
    /// Whether some library topology meets the op-amp spec the
    /// component imposes. When false, the mapping is infeasible and
    /// the mapper must pick a different alternative (e.g. the
    /// gain-splitting functional transformation).
    pub spec_met: bool,
}

/// Whole-netlist estimation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistEstimate {
    /// Total area, m².
    pub area_m2: f64,
    /// Total static power, W.
    pub power_w: f64,
    /// Per-component breakdown (same order as the netlist).
    pub components: Vec<ComponentEstimate>,
    /// Constraint violations (empty = feasible).
    pub violations: Vec<String>,
}

impl NetlistEstimate {
    /// Whether all constraints are met.
    pub fn feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for NetlistEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} µm², {:.2} mW, {} component(s){}",
            self.area_m2 * 1e12,
            self.power_w * 1e3,
            self.components.len(),
            if self.feasible() { "" } else { " [INFEASIBLE]" }
        )
    }
}

/// The analog performance estimator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimator {
    /// Process parameters.
    pub process: ProcessParams,
    /// System constraints.
    pub constraints: PerformanceConstraints,
}

impl Estimator {
    /// An estimator for the given constraints in the MOSIS 2 µm
    /// process.
    pub fn new(constraints: PerformanceConstraints) -> Self {
        Estimator { process: ProcessParams::mosis_2um(), constraints }
    }

    /// `MinArea` — the area of a minimum-size op amp across every
    /// library topology, the lower bound the mapper's bounding rule
    /// multiplies op-amp counts by.
    pub fn min_opamp_area(&self) -> f64 {
        min_topology_area(&self.process).min(min_opamp_area(&self.process))
    }

    /// Estimate one component.
    pub fn estimate_component(&self, kind: &ComponentKind) -> ComponentEstimate {
        self.estimate_component_impl(kind, None)
    }

    /// Estimate one component whose *output* is proven never to exceed
    /// `output_swing_v` (volts, absolute).
    ///
    /// [`Estimator::estimate_component`] sizes every op amp for a
    /// full-swing sine — output amplitude `signal_peak_v · gain` — at
    /// the band edge. When a range analysis has proven a tighter bound
    /// on the driven value, the slew requirement (`2π · BW · swing`)
    /// relaxes proportionally. Only the slew term changes: UGF, load,
    /// and DC-gain requirements depend on gain and bandwidth, not
    /// amplitude, so they are sized exactly as before. In the
    /// square-law model the slew sets the bias currents, so a proven
    /// smaller swing lowers the sized op amp's *static power* (device
    /// W/L can grow slightly as gm is held at a lower bias);
    /// feasibility is untouched either way — topology ceilings key on
    /// UGF and DC gain, never on slew — so a component feasible at
    /// full swing stays feasible at any proven swing.
    pub fn estimate_component_at_swing(
        &self,
        kind: &ComponentKind,
        output_swing_v: f64,
    ) -> ComponentEstimate {
        self.estimate_component_impl(kind, Some(output_swing_v))
    }

    fn estimate_component_impl(
        &self,
        kind: &ComponentKind,
        output_swing_v: Option<f64>,
    ) -> ComponentEstimate {
        let n_opamps = kind.opamp_count();
        let gain = kind.max_gain();
        // Closed-loop bandwidth must cover the signal band: the op amp
        // needs UGF ≳ gain · BW with a 10× feedback-accuracy margin.
        let ugf = (gain * self.constraints.bandwidth_hz * 10.0).max(1e5);
        // Full-swing sine at the band edge sets the slew requirement —
        // unless the caller proved a tighter output swing. The default
        // arm keeps the original expression verbatim (float products
        // are order-sensitive and this path must stay bit-identical).
        let slew = match output_swing_v {
            None => (2.0 * std::f64::consts::PI
                * self.constraints.bandwidth_hz
                * self.constraints.signal_peak_v
                * gain.max(1.0))
            .max(1e4),
            Some(swing) => {
                (2.0 * std::f64::consts::PI * self.constraints.bandwidth_hz * swing).max(1e4)
            }
        };
        // Load: on-chip next stage plus the component's own network.
        let mut load = 5e-12;
        let mut extra_area = 0.0;
        let mut extra_power = 0.0;
        match kind {
            ComponentKind::OutputStage { load_ohms, peak_volts, .. } => {
                // Driving an off-chip resistive load costs static power
                // and a bigger output device (modeled as extra load).
                load = 50e-12;
                extra_power = (peak_volts * peak_volts) / load_ohms;
            }
            ComponentKind::Adc { bits } => {
                // Comparator ladder + logic overhead.
                extra_area = (*bits as f64) * 3.0e-9;
                extra_power += (*bits as f64) * 0.1e-3;
            }
            ComponentKind::SampleHold | ComponentKind::MemoryCell => {
                load = 15e-12; // hold capacitor
            }
            _ => {}
        }
        // Precision (closed-loop) components need open-loop gain well
        // above the closed-loop gain; threshold detectors only need to
        // switch hard.
        let dc_gain = if matches!(
            kind,
            ComponentKind::Comparator { .. }
                | ComponentKind::ZeroCrossDetector { .. }
                | ComponentKind::SchmittTrigger { .. }
                | ComponentKind::SampleHold
                | ComponentKind::MemoryCell
                | ComponentKind::Follower
        ) {
            60.0
        } else {
            (60.0 * gain).max(1_000.0)
        };
        let spec = OpAmpSpec { ugf_hz: ugf, slew_v_per_s: slew, load_f: load, dc_gain };
        // Component selection (paper Fig. 1): cheapest topology that
        // meets the spec; fall back to the two-stage baseline when the
        // library has no feasible entry.
        let (design, topology, spec_met) = match select_topology(&spec, &self.process) {
            Some(choice) => (choice.design, Some(choice.topology), true),
            None => (size_opamp(&spec, &self.process), Some(OpAmpTopology::TwoStage), false),
        };
        let topology = (n_opamps > 0).then_some(topology).flatten();
        let spec_met = spec_met || n_opamps == 0;
        // Passive area: poly resistors (~50 squares each) and routing.
        let passive_area = kind.passive_count() as f64 * 50.0 * 16e-12;
        ComponentEstimate {
            area_m2: n_opamps as f64 * design.area_m2 + passive_area + extra_area,
            power_w: n_opamps as f64 * design.power_w + extra_power,
            ugf_hz: design.ugf_hz,
            slew_v_per_s: design.slew_v_per_s,
            topology,
            spec_met,
        }
    }

    /// Estimate a full netlist and check the constraints.
    pub fn estimate_netlist(&self, netlist: &Netlist) -> NetlistEstimate {
        let components: Vec<ComponentEstimate> =
            netlist.components.iter().map(|c| self.estimate_component(&c.kind)).collect();
        let area_m2: f64 = components.iter().map(|c| c.area_m2).sum();
        let power_w: f64 = components.iter().map(|c| c.power_w).sum();
        let mut violations = Vec::new();
        for (i, (c, placed)) in components.iter().zip(&netlist.components).enumerate() {
            if !c.spec_met {
                violations.push(format!(
                    "component {i} ({}) requires an op amp beyond every library topology                      (UGF {:.1} MHz at gain {:.0})",
                    placed.kind,
                    c.ugf_hz / 1e6,
                    placed.kind.max_gain()
                ));
            }
        }
        if area_m2 > self.constraints.max_area_m2 {
            violations.push(format!(
                "area {:.0} µm² exceeds limit {:.0} µm²",
                area_m2 * 1e12,
                self.constraints.max_area_m2 * 1e12
            ));
        }
        if power_w > self.constraints.max_power_w {
            violations.push(format!(
                "power {:.2} mW exceeds limit {:.2} mW",
                power_w * 1e3,
                self.constraints.max_power_w * 1e3
            ));
        }
        NetlistEstimate { area_m2, power_w, components, violations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vase_library::{PlacedComponent, SourceRef};

    fn netlist_of(kinds: Vec<ComponentKind>) -> Netlist {
        let mut n = Netlist::new();
        for kind in kinds {
            let inputs = (0..kind.data_inputs())
                .map(|i| SourceRef::External(format!("in{i}")))
                .chain(kind.has_control_input().then(|| SourceRef::External("ctl".into())))
                .collect();
            n.push(PlacedComponent { kind, inputs, implements: vec![], label: "c".into() });
        }
        n
    }

    #[test]
    fn more_opamps_cost_more_area() {
        let e = Estimator::default();
        let one = e.estimate_netlist(&netlist_of(vec![ComponentKind::Follower]));
        let four = e.estimate_netlist(&netlist_of(vec![ComponentKind::Multiplier]));
        assert!(four.area_m2 > one.area_m2 * 3.0);
    }

    #[test]
    fn higher_gain_needs_bigger_opamp() {
        let e = Estimator::default();
        let low = e.estimate_component(&ComponentKind::InvertingAmp { gain: -2.0 });
        let high = e.estimate_component(&ComponentKind::InvertingAmp { gain: -200.0 });
        assert!(high.area_m2 > low.area_m2);
        assert!(high.ugf_hz > low.ugf_hz);
    }

    #[test]
    fn output_stage_burns_load_power() {
        let e = Estimator::default();
        let plain = e.estimate_component(&ComponentKind::Follower);
        let stage = e.estimate_component(&ComponentKind::OutputStage {
            load_ohms: 270.0,
            peak_volts: 0.285,
            limit: Some(1.5),
        });
        assert!(stage.power_w > plain.power_w);
    }

    #[test]
    fn constraints_flag_violations() {
        let mut c = PerformanceConstraints::audio();
        c.max_area_m2 = 1e-12; // impossible
        let e = Estimator::new(c);
        let est = e.estimate_netlist(&netlist_of(vec![ComponentKind::Follower]));
        assert!(!est.feasible());
        assert!(est.violations[0].contains("area"));

        let e = Estimator::default();
        let est = e.estimate_netlist(&netlist_of(vec![ComponentKind::Follower]));
        assert!(est.feasible());
    }

    #[test]
    fn min_area_below_any_component() {
        let e = Estimator::default();
        let min = e.min_opamp_area();
        let est = e.estimate_component(&ComponentKind::Follower);
        assert!(est.area_m2 >= min);
    }

    #[test]
    fn gain_chain_vs_single_amp_tradeoff() {
        // The functional transformation trades area for bandwidth: the
        // two-stage chain needs lower per-stage UGF but two op amps.
        let e = Estimator::new(PerformanceConstraints {
            bandwidth_hz: 100e3,
            signal_peak_v: 1.0,
            max_power_w: f64::INFINITY,
            max_area_m2: f64::INFINITY,
        });
        let single = e.estimate_component(&ComponentKind::NonInvertingAmp { gain: 100.0 });
        let chain = e.estimate_component(&ComponentKind::AmplifierChain {
            stage_gains: vec![10.0, 10.0],
        });
        // Each chain op amp is sized for gain 10, not 100.
        assert!(chain.ugf_hz < single.ugf_hz);
    }

    #[test]
    fn component_selection_binds_topologies() {
        let e = Estimator::default();
        // Detectors bind to the cheap OTA.
        let zcd = e.estimate_component(&ComponentKind::ZeroCrossDetector {
            level: 0.0,
            hysteresis: 0.01,
        });
        assert_eq!(zcd.topology, Some(OpAmpTopology::Ota));
        // Precision amplifiers bind to the two-stage Miller (the
        // paper's §6 choice).
        let amp = e.estimate_component(&ComponentKind::SummingAmp { weights: vec![4.0, 2.0] });
        assert_eq!(amp.topology, Some(OpAmpTopology::TwoStage));
        // Op-amp-free components bind to nothing.
        let sw = e.estimate_component(&ComponentKind::AnalogSwitch);
        assert_eq!(sw.topology, None);
    }

    #[test]
    fn proven_swing_only_relaxes_the_spec() {
        // A tighter proven output swing lowers the slew requirement:
        // the sized op amp's bias currents (hence power) drop, and
        // feasibility can never get worse — topology ceilings depend
        // on UGF and DC gain only.
        let e = Estimator::new(PerformanceConstraints {
            bandwidth_hz: 250e3,
            signal_peak_v: 1.0,
            max_power_w: f64::INFINITY,
            max_area_m2: f64::INFINITY,
        });
        let kind = ComponentKind::NonInvertingAmp { gain: 20.0 };
        let full = e.estimate_component(&kind);
        let tight = e.estimate_component_at_swing(&kind, 0.25);
        assert!(full.spec_met);
        assert!(tight.spec_met, "relaxed spec must stay feasible");
        assert!(tight.slew_v_per_s <= full.slew_v_per_s);
        assert!(tight.power_w <= full.power_w);
        // UGF sizing depends on gain · bandwidth, not amplitude.
        let huge = e.estimate_component_at_swing(&kind, 1e6);
        assert!(huge.ugf_hz >= full.ugf_hz * 0.99);
        // Passing the full-swing amplitude reproduces the default
        // sizing's requirements.
        let same = e.estimate_component_at_swing(&kind, 20.0);
        assert_eq!(same.spec_met, full.spec_met);
        assert!((same.slew_v_per_s - full.slew_v_per_s).abs() <= full.slew_v_per_s * 1e-9);
    }

    #[test]
    fn display_reports_feasibility() {
        let e = Estimator::default();
        let est = e.estimate_netlist(&netlist_of(vec![ComponentKind::Follower]));
        assert!(est.to_string().contains("µm²"));
    }
}
