//! Two-stage Miller-compensated op-amp sizing from square-law
//! equations.
//!
//! This reproduces the role of the paper's Analog Performance
//! Estimation Tools (\[17\]\[4\]): given the specs a mapped component
//! imposes (unity-gain frequency, slew rate, load), size the
//! transistors of a standard two-stage CMOS op amp and report the
//! resulting area, power, and achieved performance. The procedure is
//! the classical textbook one (Allen & Holberg / Hershenson's
//! square-law formulation):
//!
//! 1. `Cc ≥ 0.22·CL` for ~60° phase margin;
//! 2. tail current `I5 = SR·Cc`;
//! 3. input pair `gm1 = 2π·UGF·Cc`, `(W/L)₁ = gm1²/(kpₙ·I5)`;
//! 4. second stage `gm6 = 2.2·gm1·(CL/Cc)`, `I6` from the output-swing
//!    overdrive, `(W/L)₆ = gm6²/(2·kpₚ·I6)` — sized for the required
//!    output stage drive;
//! 5. DC gain from `gm·ro` products.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::process::ProcessParams;

/// Specs an op amp must meet inside a mapped component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpAmpSpec {
    /// Required unity-gain frequency, Hz.
    pub ugf_hz: f64,
    /// Required slew rate, V/s.
    pub slew_v_per_s: f64,
    /// Capacitive load, F.
    pub load_f: f64,
    /// Required DC open-loop gain (V/V).
    pub dc_gain: f64,
}

impl OpAmpSpec {
    /// A relaxed baseline spec (audio-band amplifier driving an
    /// on-chip load).
    pub fn relaxed() -> Self {
        OpAmpSpec { ugf_hz: 1e6, slew_v_per_s: 1e6, load_f: 5e-12, dc_gain: 5_000.0 }
    }
}

impl Default for OpAmpSpec {
    fn default() -> Self {
        OpAmpSpec::relaxed()
    }
}

/// A sized two-stage op amp and its predicted performance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpAmpDesign {
    /// Compensation capacitor, F.
    pub cc_f: f64,
    /// First-stage tail current, A.
    pub i_tail_a: f64,
    /// Second-stage current, A.
    pub i_out_a: f64,
    /// Input-pair W/L (unitless ratio).
    pub wl_input: f64,
    /// Output-device W/L.
    pub wl_output: f64,
    /// Total active + passive area, m².
    pub area_m2: f64,
    /// Static power, W.
    pub power_w: f64,
    /// Achieved unity-gain frequency, Hz.
    pub ugf_hz: f64,
    /// Achieved slew rate, V/s.
    pub slew_v_per_s: f64,
    /// Achieved DC gain, V/V.
    pub dc_gain: f64,
}

impl fmt::Display for OpAmpDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "2-stage op amp: {:.0} µm², {:.2} mW, UGF {:.2} MHz, SR {:.2} V/µs, A0 {:.0}",
            self.area_m2 * 1e12,
            self.power_w * 1e3,
            self.ugf_hz / 1e6,
            self.slew_v_per_s / 1e6,
            self.dc_gain
        )
    }
}

/// Size a two-stage op amp for `spec` in `process`.
///
/// The returned design always meets or exceeds the requested UGF and
/// slew rate (devices are clamped at minimum dimensions, so very
/// relaxed specs still cost the minimum-area op amp — the basis for
/// the mapper's `MinArea` bounding rule).
pub fn size_opamp(spec: &OpAmpSpec, process: &ProcessParams) -> OpAmpDesign {
    // 1. Compensation capacitor for phase margin.
    let cc = (0.22 * spec.load_f).max(0.5e-12);
    // 2. Slew rate fixes the tail current.
    let i_tail = (spec.slew_v_per_s * cc).max(1e-6);
    // 3. Input pair from the UGF requirement.
    let gm1 = 2.0 * std::f64::consts::PI * spec.ugf_hz * cc;
    let wl_input = (gm1 * gm1 / (process.kp_n * i_tail)).max(1.0);
    // 4. Second stage: gm6 places the output pole beyond 2.2×UGF.
    let gm6 = 2.2 * gm1 * (spec.load_f / cc).max(1.0);
    let i_out = (gm6 * 0.25 / 2.0).max(2.0 * i_tail); // V_ov6 ≈ 0.25 V
    let wl_output = (gm6 * gm6 / (2.0 * process.kp_p * i_out)).max(2.0);

    // Achieved performance.
    let ugf = gm1 / (2.0 * std::f64::consts::PI * cc);
    let slew = i_tail / cc;
    // DC gain: gm1/(go2+go4) · gm6/(go6+go7), go = λ·I.
    let go1 = process.lambda * i_tail / 2.0;
    let go2 = process.lambda * i_out;
    let a1 = gm1 / (2.0 * go1);
    let a2 = gm6 / (2.0 * go2);
    let dc_gain = a1 * a2;

    // Area: 8 transistors (input pair, mirrors, tail, output, bias)
    // with W = WL·L_min, plus the compensation capacitor, plus a 40%
    // routing/well overhead.
    let l = process.l_min;
    let device_area = |wl: f64| (wl * l).max(process.w_min) * l;
    let active = 2.0 * device_area(wl_input)
        + 3.0 * device_area(wl_input * 0.5)
        + device_area(wl_output)
        + 2.0 * device_area(wl_output * 0.3);
    let cap_area = cc / process.cap_density;
    let area = 1.4 * (active + cap_area);
    let power = (i_tail + i_out) * process.vdd;

    OpAmpDesign {
        cc_f: cc,
        i_tail_a: i_tail,
        i_out_a: i_out,
        wl_input,
        wl_output,
        area_m2: area,
        power_w: power,
        ugf_hz: ugf,
        slew_v_per_s: slew,
        dc_gain,
    }
}

/// The area of a minimum-size op amp (all devices at minimum
/// dimensions) — the `MinArea` constant of the paper's bounding rule.
pub fn min_opamp_area(process: &ProcessParams) -> f64 {
    size_opamp(
        &OpAmpSpec { ugf_hz: 1e4, slew_v_per_s: 1e4, load_f: 1e-12, dc_gain: 100.0 },
        process,
    )
    .area_m2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ProcessParams {
        ProcessParams::mosis_2um()
    }

    #[test]
    fn sizing_meets_spec() {
        let spec = OpAmpSpec { ugf_hz: 5e6, slew_v_per_s: 5e6, load_f: 10e-12, dc_gain: 1000.0 };
        let d = size_opamp(&spec, &p());
        assert!(d.ugf_hz >= spec.ugf_hz * 0.99, "UGF {}", d.ugf_hz);
        assert!(d.slew_v_per_s >= spec.slew_v_per_s * 0.99);
        assert!(d.dc_gain > 100.0);
        assert!(d.area_m2 > 0.0 && d.power_w > 0.0);
    }

    #[test]
    fn tighter_specs_cost_more_area_and_power() {
        let relaxed = size_opamp(&OpAmpSpec::relaxed(), &p());
        let tight = size_opamp(
            &OpAmpSpec { ugf_hz: 50e6, slew_v_per_s: 50e6, load_f: 20e-12, dc_gain: 10_000.0 },
            &p(),
        );
        assert!(tight.area_m2 > relaxed.area_m2);
        assert!(tight.power_w > relaxed.power_w);
    }

    #[test]
    fn min_area_is_a_lower_bound() {
        let min = min_opamp_area(&p());
        for ugf in [1e5, 1e6, 1e7] {
            let d = size_opamp(
                &OpAmpSpec { ugf_hz: ugf, slew_v_per_s: 1e6, load_f: 5e-12, dc_gain: 1000.0 },
                &p(),
            );
            assert!(d.area_m2 >= min * 0.999, "area {} < min {min}", d.area_m2);
        }
    }

    #[test]
    fn min_area_is_micrometers_scale() {
        // A 2 µm op amp is thousands of µm², not mm² and not nm².
        let min_um2 = min_opamp_area(&p()) * 1e12;
        assert!(min_um2 > 100.0 && min_um2 < 1e6, "min area {min_um2} µm²");
    }

    #[test]
    fn display_is_readable() {
        let d = size_opamp(&OpAmpSpec::relaxed(), &p());
        let s = d.to_string();
        assert!(s.contains("µm²"));
        assert!(s.contains("MHz"));
    }
}
