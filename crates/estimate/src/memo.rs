//! Memoized per-kind component estimation.
//!
//! [`Estimator::estimate_component`] re-runs square-law op-amp sizing
//! on every call, but its result depends only on the [`ComponentKind`]
//! (and the estimator's fixed process/constraints). The mapper asks for
//! the same kinds over and over — every feasibility pre-check and every
//! guided-search bound touches one — so [`EstimateMemo`] caches results
//! keyed by a bit-exact byte encoding of the kind.
//!
//! The key encoding is exact (no float rounding): two kinds collide
//! only when they are equal, so a memoized estimate is bitwise
//! identical to a fresh one and memoization can never change a search
//! result.

use std::collections::HashMap;

use vase_library::ComponentKind;

use crate::estimator::{ComponentEstimate, Estimator};

/// A cache of [`ComponentEstimate`]s keyed by the exact component kind.
///
/// One memo is intended to live for one mapping run against one
/// [`Estimator`]; it does not record which estimator filled it, so do
/// not share a memo across estimators with different constraints.
#[derive(Debug, Default)]
pub struct EstimateMemo {
    table: HashMap<Vec<u8>, ComponentEstimate>,
    hits: u64,
    misses: u64,
}

impl EstimateMemo {
    /// An empty memo.
    pub fn new() -> Self {
        EstimateMemo::default()
    }

    /// The memoized equivalent of `estimator.estimate_component(kind)`.
    pub fn estimate(&mut self, estimator: &Estimator, kind: &ComponentKind) -> ComponentEstimate {
        let key = encode_kind(kind);
        if let Some(e) = self.table.get(&key) {
            self.hits += 1;
            return e.clone();
        }
        let e = estimator.estimate_component(kind);
        self.misses += 1;
        self.table.insert(key, e.clone());
        e
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the sizing model (one per distinct kind).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct kinds estimated so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no kind has been estimated yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Byte-exact encoding of a [`ComponentKind`]: a variant tag followed
/// by every numeric field's little-endian bytes (`f64::to_bits` for
/// floats, lengths prefixed for vectors) — injective, so it is safe as
/// a memo key.
fn encode_kind(kind: &ComponentKind) -> Vec<u8> {
    use ComponentKind::*;
    let mut out = Vec::with_capacity(16);
    let f = |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_bits().to_le_bytes());
    let n = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
    match kind {
        InvertingAmp { gain } => {
            out.push(0);
            f(&mut out, *gain);
        }
        NonInvertingAmp { gain } => {
            out.push(1);
            f(&mut out, *gain);
        }
        Follower => out.push(2),
        AmplifierChain { stage_gains } => {
            out.push(3);
            n(&mut out, stage_gains.len() as u64);
            for g in stage_gains {
                f(&mut out, *g);
            }
        }
        SummingAmp { weights } => {
            out.push(4);
            n(&mut out, weights.len() as u64);
            for w in weights {
                f(&mut out, *w);
            }
        }
        DifferenceAmp { gain } => {
            out.push(5);
            f(&mut out, *gain);
        }
        SwitchedGainAmp { gains } => {
            out.push(6);
            n(&mut out, gains.len() as u64);
            for g in gains {
                f(&mut out, *g);
            }
        }
        Integrator { weights, initial } => {
            out.push(7);
            n(&mut out, weights.len() as u64);
            for w in weights {
                f(&mut out, *w);
            }
            f(&mut out, *initial);
        }
        Differentiator { gain } => {
            out.push(8);
            f(&mut out, *gain);
        }
        LogAmp => out.push(9),
        AntilogAmp => out.push(10),
        Multiplier => out.push(11),
        Divider => out.push(12),
        PrecisionRectifier => out.push(13),
        Comparator { threshold } => {
            out.push(14);
            f(&mut out, *threshold);
        }
        ZeroCrossDetector { level, hysteresis } => {
            out.push(15);
            f(&mut out, *level);
            f(&mut out, *hysteresis);
        }
        SchmittTrigger { low, high } => {
            out.push(16);
            f(&mut out, *low);
            f(&mut out, *high);
        }
        SampleHold => out.push(17),
        AnalogSwitch => out.push(18),
        AnalogMux { inputs } => {
            out.push(19);
            n(&mut out, *inputs as u64);
        }
        Adc { bits } => {
            out.push(20);
            n(&mut out, u64::from(*bits));
        }
        LogicGate => out.push(21),
        MemoryCell => out.push(22),
        VoltageRef { level } => {
            out.push(23);
            f(&mut out, *level);
        }
        Limiter { level } => {
            out.push(24);
            f(&mut out, *level);
        }
        OutputStage { load_ohms, peak_volts, limit } => {
            out.push(25);
            f(&mut out, *load_ohms);
            f(&mut out, *peak_volts);
            match limit {
                Some(l) => {
                    out.push(1);
                    f(&mut out, *l);
                }
                None => out.push(0),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoized_estimate_is_bitwise_identical() {
        let estimator = Estimator::default();
        let mut memo = EstimateMemo::new();
        let kinds = [
            ComponentKind::InvertingAmp { gain: -2.0 },
            ComponentKind::SummingAmp { weights: vec![1.0, 1.5] },
            ComponentKind::Integrator { weights: vec![0.5], initial: 0.0 },
            ComponentKind::Multiplier,
            ComponentKind::OutputStage { load_ohms: 270.0, peak_volts: 0.285, limit: Some(1.5) },
        ];
        for kind in &kinds {
            let fresh = estimator.estimate_component(kind);
            let cached_cold = memo.estimate(&estimator, kind);
            let cached_warm = memo.estimate(&estimator, kind);
            assert_eq!(fresh, cached_cold, "{kind}");
            assert_eq!(fresh, cached_warm, "{kind}");
            assert_eq!(fresh.area_m2.to_bits(), cached_warm.area_m2.to_bits());
        }
        assert_eq!(memo.misses(), kinds.len() as u64);
        assert_eq!(memo.hits(), kinds.len() as u64);
        assert_eq!(memo.len(), kinds.len());
    }

    #[test]
    fn key_encoding_is_injective_on_close_kinds() {
        // Kinds that agree in most bytes must not collide.
        assert_ne!(
            encode_kind(&ComponentKind::InvertingAmp { gain: 2.0 }),
            encode_kind(&ComponentKind::NonInvertingAmp { gain: 2.0 })
        );
        assert_ne!(
            encode_kind(&ComponentKind::SummingAmp { weights: vec![1.0, 2.0] }),
            encode_kind(&ComponentKind::SummingAmp { weights: vec![1.0] })
        );
        assert_ne!(
            encode_kind(&ComponentKind::Limiter { level: 1.0 }),
            encode_kind(&ComponentKind::VoltageRef { level: 1.0 })
        );
        assert_ne!(
            encode_kind(&ComponentKind::OutputStage {
                load_ohms: 1.0,
                peak_volts: 1.0,
                limit: None
            }),
            encode_kind(&ComponentKind::OutputStage {
                load_ohms: 1.0,
                peak_volts: 1.0,
                limit: Some(1.0)
            })
        );
    }

    #[test]
    fn distinct_gains_get_distinct_entries() {
        let estimator = Estimator::default();
        let mut memo = EstimateMemo::new();
        memo.estimate(&estimator, &ComponentKind::InvertingAmp { gain: -2.0 });
        memo.estimate(&estimator, &ComponentKind::InvertingAmp { gain: -3.0 });
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.hits(), 0);
    }
}
