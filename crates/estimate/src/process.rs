//! CMOS process parameters.
//!
//! Defaults model the MOSIS SCN 2.0 µm process the paper's experiment
//! used (Section 6: "we selected 2-stage operational amplifiers, in the
//! MOSIS SCN-2.0um technology"), with first-order square-law device
//! parameters taken from standard textbook tables for that node.

use serde::{Deserialize, Serialize};

/// First-order (square-law) CMOS process parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessParams {
    /// NMOS transconductance parameter µₙC_ox, A/V².
    pub kp_n: f64,
    /// PMOS transconductance parameter µₚC_ox, A/V².
    pub kp_p: f64,
    /// NMOS threshold voltage, V.
    pub vth_n: f64,
    /// PMOS threshold voltage magnitude, V.
    pub vth_p: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Minimum channel length, m.
    pub l_min: f64,
    /// Minimum channel width, m.
    pub w_min: f64,
    /// Supply voltage (single rail magnitude; the design uses ±vdd/2), V.
    pub vdd: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Poly-poly capacitor density, F/m² (for compensation caps).
    pub cap_density: f64,
    /// Poly sheet resistance, Ω/□ (for resistor area).
    pub r_sheet: f64,
}

impl ProcessParams {
    /// The MOSIS SCN 2.0 µm parameters used throughout the
    /// reproduction.
    pub fn mosis_2um() -> Self {
        ProcessParams {
            kp_n: 50e-6,
            kp_p: 17e-6,
            vth_n: 0.8,
            vth_p: 0.9,
            lambda: 0.05,
            l_min: 2e-6,
            w_min: 3e-6,
            vdd: 5.0,
            cox: 0.9e-3,       // ~0.9 fF/µm²
            cap_density: 0.5e-3,
            r_sheet: 25.0,
        }
    }
}

impl Default for ProcessParams {
    fn default() -> Self {
        ProcessParams::mosis_2um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosis_2um_is_physical() {
        let p = ProcessParams::mosis_2um();
        assert!(p.kp_n > p.kp_p, "electrons are faster than holes");
        assert!(p.vth_n > 0.0 && p.vth_p > 0.0);
        assert!(p.l_min == 2e-6);
        assert!(p.vdd == 5.0);
    }

    #[test]
    fn default_is_mosis() {
        assert_eq!(ProcessParams::default(), ProcessParams::mosis_2um());
    }
}
