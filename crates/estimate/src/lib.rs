//! # vase-estimate
//!
//! Analog performance estimation for the VASE synthesis flow — the
//! reproduction of the paper's Analog Performance Estimation Tools
//! (Dhanwada et al. \[17\], Nunez & Vemuri \[4\]).
//!
//! Given an op-amp-level netlist from the architecture generator, the
//! [`Estimator`] instantiates each component's op amps as two-stage
//! Miller-compensated CMOS designs ([`opamp::size_opamp`]) in the MOSIS
//! SCN 2.0 µm process ([`ProcessParams::mosis_2um`]), and reports
//! area, power, UGF, and slew rate. The branch-and-bound mapper calls
//! it to rank complete mappings and uses [`Estimator::min_opamp_area`]
//! (`MinArea`) in its bounding rule.
//!
//! # Examples
//!
//! ```
//! use vase_estimate::{Estimator, PerformanceConstraints};
//! use vase_library::{ComponentKind, Netlist, PlacedComponent, SourceRef};
//!
//! let estimator = Estimator::new(PerformanceConstraints::audio());
//! let mut netlist = Netlist::new();
//! netlist.push(PlacedComponent {
//!     kind: ComponentKind::SummingAmp { weights: vec![0.5, 0.25] },
//!     inputs: vec![
//!         SourceRef::External("line".into()),
//!         SourceRef::External("local".into()),
//!     ],
//!     implements: vec![],
//!     label: "block1".into(),
//! });
//! let estimate = estimator.estimate_netlist(&netlist);
//! assert!(estimate.feasible());
//! assert!(estimate.area_m2 > 0.0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod estimator;
pub mod memo;
pub mod opamp;
pub mod process;
pub mod topology;

pub use estimator::{ComponentEstimate, Estimator, NetlistEstimate, PerformanceConstraints};
pub use memo::EstimateMemo;
pub use opamp::{min_opamp_area, size_opamp, OpAmpDesign, OpAmpSpec};
pub use process::ProcessParams;
pub use topology::{min_topology_area, select_topology, size_with_topology, OpAmpTopology, TopologyChoice};
