//! Op-amp topology selection — the *Component Selection* step of the
//! VASE flow (paper Fig. 1): after architecture synthesis decides the
//! op-amp-level structure, each op amp is bound to a concrete circuit
//! topology from the cell library. This module models the three
//! classic CMOS choices and picks, per spec, the cheapest feasible
//! one.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::opamp::{size_opamp, OpAmpDesign, OpAmpSpec};
use crate::process::ProcessParams;

/// Available op-amp circuit topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpAmpTopology {
    /// Single-stage OTA: smallest and cheapest, limited DC gain
    /// (~100 V/V) — comparators, buffers, S/H front ends.
    Ota,
    /// Two-stage Miller op amp: high gain, rail-to-rail output — the
    /// paper's choice for the receiver experiment.
    TwoStage,
    /// Folded cascode: the fastest (highest UGF per compensation
    /// capacitance) at a larger area/power footprint.
    FoldedCascode,
}

impl OpAmpTopology {
    /// All topologies in ascending typical-area order.
    pub fn all() -> [OpAmpTopology; 3] {
        [OpAmpTopology::Ota, OpAmpTopology::TwoStage, OpAmpTopology::FoldedCascode]
    }

    /// The maximum DC gain the topology can realistically provide.
    pub fn max_dc_gain(&self) -> f64 {
        match self {
            OpAmpTopology::Ota => 100.0,
            OpAmpTopology::TwoStage => 20_000.0,
            OpAmpTopology::FoldedCascode => 5_000.0,
        }
    }

    /// The maximum unity-gain frequency achievable in the process, Hz.
    pub fn max_ugf_hz(&self) -> f64 {
        match self {
            OpAmpTopology::Ota => 20e6,
            OpAmpTopology::TwoStage => 50e6,
            OpAmpTopology::FoldedCascode => 150e6,
        }
    }

    /// Area multiplier relative to the two-stage baseline.
    fn area_factor(&self) -> f64 {
        match self {
            OpAmpTopology::Ota => 0.45,
            OpAmpTopology::TwoStage => 1.0,
            OpAmpTopology::FoldedCascode => 1.6,
        }
    }

    /// Power multiplier relative to the two-stage baseline.
    fn power_factor(&self) -> f64 {
        match self {
            OpAmpTopology::Ota => 0.5,
            OpAmpTopology::TwoStage => 1.0,
            OpAmpTopology::FoldedCascode => 1.3,
        }
    }
}

impl fmt::Display for OpAmpTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpAmpTopology::Ota => "single-stage OTA",
            OpAmpTopology::TwoStage => "2-stage Miller",
            OpAmpTopology::FoldedCascode => "folded cascode",
        })
    }
}

/// The outcome of binding one op amp to a topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyChoice {
    /// The selected topology.
    pub topology: OpAmpTopology,
    /// The sized design under that topology.
    pub design: OpAmpDesign,
}

/// Size `spec` under a specific topology.
///
/// Returns `None` when the topology cannot meet the spec (gain or UGF
/// ceiling exceeded).
pub fn size_with_topology(
    spec: &OpAmpSpec,
    topology: OpAmpTopology,
    process: &ProcessParams,
) -> Option<OpAmpDesign> {
    if spec.dc_gain > topology.max_dc_gain() || spec.ugf_hz > topology.max_ugf_hz() {
        return None;
    }
    let mut design = size_opamp(spec, process);
    design.area_m2 *= topology.area_factor();
    design.power_w *= topology.power_factor();
    design.dc_gain = design.dc_gain.min(topology.max_dc_gain());
    Some(design)
}

/// Select the minimum-area topology that meets `spec` — the component
/// selection policy.
///
/// Returns `None` if no topology in the library can meet the spec (the
/// mapper treats this as an infeasible solution point).
pub fn select_topology(spec: &OpAmpSpec, process: &ProcessParams) -> Option<TopologyChoice> {
    OpAmpTopology::all()
        .into_iter()
        .filter_map(|t| size_with_topology(spec, t, process).map(|design| TopologyChoice {
            topology: t,
            design,
        }))
        .min_by(|a, b| {
            a.design
                .area_m2
                .partial_cmp(&b.design.area_m2)
                .expect("areas are finite")
        })
}

/// The smallest op-amp area any library topology can realize — the
/// sound `MinArea` constant for the mapper's bounding rule once
/// component selection may bind cheap OTAs.
pub fn min_topology_area(process: &ProcessParams) -> f64 {
    let spec = OpAmpSpec { ugf_hz: 1e4, slew_v_per_s: 1e4, load_f: 1e-12, dc_gain: 50.0 };
    OpAmpTopology::all()
        .into_iter()
        .filter_map(|t| size_with_topology(&spec, t, process))
        .map(|d| d.area_m2)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process() -> ProcessParams {
        ProcessParams::mosis_2um()
    }

    #[test]
    fn low_gain_buffer_picks_the_ota() {
        // A comparator/buffer spec: low gain, modest speed.
        let spec = OpAmpSpec { ugf_hz: 1e6, slew_v_per_s: 1e6, load_f: 2e-12, dc_gain: 50.0 };
        let choice = select_topology(&spec, &process()).expect("feasible");
        assert_eq!(choice.topology, OpAmpTopology::Ota);
    }

    #[test]
    fn precision_amp_needs_the_two_stage() {
        // High closed-loop accuracy → high open-loop gain.
        let spec =
            OpAmpSpec { ugf_hz: 2e6, slew_v_per_s: 2e6, load_f: 5e-12, dc_gain: 10_000.0 };
        let choice = select_topology(&spec, &process()).expect("feasible");
        assert_eq!(choice.topology, OpAmpTopology::TwoStage);
    }

    #[test]
    fn very_fast_amp_needs_the_folded_cascode() {
        let spec = OpAmpSpec { ugf_hz: 100e6, slew_v_per_s: 50e6, load_f: 2e-12, dc_gain: 500.0 };
        let choice = select_topology(&spec, &process()).expect("feasible");
        assert_eq!(choice.topology, OpAmpTopology::FoldedCascode);
    }

    #[test]
    fn impossible_spec_is_rejected() {
        let spec =
            OpAmpSpec { ugf_hz: 1e9, slew_v_per_s: 1e9, load_f: 10e-12, dc_gain: 100_000.0 };
        assert!(select_topology(&spec, &process()).is_none());
    }

    #[test]
    fn selection_is_minimum_area_among_feasible() {
        // A spec all three can meet → the OTA (smallest) wins.
        let spec = OpAmpSpec { ugf_hz: 1e5, slew_v_per_s: 1e5, load_f: 1e-12, dc_gain: 50.0 };
        let choice = select_topology(&spec, &process()).expect("feasible");
        let two_stage = size_with_topology(&spec, OpAmpTopology::TwoStage, &process())
            .expect("feasible");
        assert!(choice.design.area_m2 <= two_stage.area_m2);
        assert_eq!(choice.topology, OpAmpTopology::Ota);
    }

    #[test]
    fn gain_is_capped_at_topology_ceiling() {
        let spec = OpAmpSpec { ugf_hz: 1e6, slew_v_per_s: 1e6, load_f: 2e-12, dc_gain: 50.0 };
        let d = size_with_topology(&spec, OpAmpTopology::Ota, &process()).expect("feasible");
        assert!(d.dc_gain <= OpAmpTopology::Ota.max_dc_gain());
    }

    #[test]
    fn min_topology_area_is_global_lower_bound() {
        let p = process();
        let min = min_topology_area(&p);
        for t in OpAmpTopology::all() {
            for ugf in [1e5, 1e6, 1e7] {
                let spec =
                    OpAmpSpec { ugf_hz: ugf, slew_v_per_s: 1e6, load_f: 5e-12, dc_gain: 50.0 };
                if let Some(d) = size_with_topology(&spec, t, &p) {
                    assert!(d.area_m2 >= min * 0.999, "{t}: {} < {min}", d.area_m2);
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(OpAmpTopology::TwoStage.to_string(), "2-stage Miller");
        assert_eq!(OpAmpTopology::Ota.to_string(), "single-stage OTA");
        assert_eq!(OpAmpTopology::FoldedCascode.to_string(), "folded cascode");
    }
}
