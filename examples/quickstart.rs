//! Quickstart: run the whole VASE flow on a small VHDL-AMS (VASS)
//! specification and print every intermediate artifact.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vase::flow::{synthesize_source, FlowOptions};

const SOURCE: &str = r#"
  -- A gain stage with a mode switch: amplify by 8 normally, attenuate
  -- to 0.5 when the input exceeds 0.9 V.
  entity agc is
    port (quantity vin  : in  real is voltage range -1.0 to 1.0;
          quantity vout : out real is voltage limited at 1.5 v);
  end entity;

  architecture behavioral of agc is
    quantity gain : real;
    signal loud : bit;
    constant g_hi : real := 8.0;
    constant g_lo : real := 0.5;
    constant vth  : real := 0.9;
  begin
    vout == gain * vin;
    if (loud = '1') use
      gain == g_lo;
    else
      gain == g_hi;
    end use;
    process (vin'above(vth)) is
    begin
      if (vin'above(vth) = true) then
        loud <= '1';
      else
        loud <= '0';
      end if;
    end process;
  end architecture;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== VASE quickstart ===\n");
    println!("--- VASS source ---{SOURCE}");

    let designs = synthesize_source(SOURCE, &FlowOptions::default())?;
    let design = &designs[0];

    println!("--- VASS statistics (Table 1 columns 2-5) ---");
    println!("{}\n", design.vass_stats);

    println!("--- VHIF intermediate representation ---");
    println!("{}", design.vhif);

    println!("--- DAE solver alternatives ---");
    for (eq, n) in &design.dae_alternatives {
        println!("  {eq}: {n} candidate signal-flow solver(s)");
    }
    println!();

    println!("--- Synthesized op-amp netlist ---");
    println!("{}", design.synthesis.netlist);
    println!(
        "\nsearch: {} nodes visited, {} pruned, {} complete mappings",
        design.synthesis.stats.visited_nodes,
        design.synthesis.stats.pruned_nodes,
        design.synthesis.stats.complete_mappings
    );
    println!("estimate: {}", design.synthesis.estimate);
    println!(
        "components: {}",
        design
            .synthesis
            .netlist
            .report_summary()
            .iter()
            .map(|(c, n)| format!("{n} {c}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}
