-- Deliberately invalid: two statements reference names that were never
-- declared, so lint reports one V010 per statement.
entity amp is
  port (
    quantity vin  : in  real is voltage;
    quantity vout : out real is voltage;
    quantity vaux : out real is voltage
  );
end entity;

architecture bad of amp is
begin
  vout == gain * vin;
  vaux == offset + vin;
end architecture;
