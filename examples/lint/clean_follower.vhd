-- A well-formed specification: annotated ranges stay consistent, so
-- `vase lint --deny warnings` accepts it with an empty listing.
entity follower is
  port (
    quantity vin  : in  real is voltage range -1.0 to 1.0;
    quantity vout : out real is voltage range -2.0 to 2.0
  );
end entity;

architecture good of follower is
begin
  vout == vin * 1.5;
end architecture;
