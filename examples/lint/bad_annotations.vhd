-- Warnings only: the design synthesizes, but interval propagation over
-- the `range` annotations flags a divisor that can reach zero (A200),
-- a drive that can leave its declared range (A201), and a degenerate
-- range annotation (A202). Exits clean normally, nonzero under
-- `--deny warnings`.
entity scaler is
  port (
    quantity num : in  real is voltage range -1.0 to 1.0;
    quantity den : in  real is voltage range -0.5 to 0.5;
    quantity q   : out real is voltage;
    quantity w   : out real is voltage range -0.1 to 0.1;
    quantity z   : out real is voltage range 1.0 to -1.0
  );
end entity;

architecture warn of scaler is
begin
  q == num / den;
  w == num * 3.0;
  z == num;
end architecture;
