-- Deliberately invalid: the port list is never closed, so parsing
-- fails (V002) and lint exits nonzero.
entity broken is
  port (
    quantity x : in real is voltage
end entity;
