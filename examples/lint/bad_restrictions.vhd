-- Deliberately invalid: breaks three VASS restrictions (paper §3) in
-- one process — a `wait` statement, a signal read after it was
-- assigned, and a for-loop whose bound is not statically known.
entity ctrl is
  port (
    quantity x : in real is voltage;
    signal trigger : in bit;
    signal y : out bit
  );
end entity;

architecture bad of ctrl is
  signal s : bit;
begin
  process (trigger) is
    variable v : real;
    variable k : integer;
  begin
    s <= '1';
    y <= s;
    for i in 1 to k loop
      v := v + x;
    end loop;
    wait;
  end process;
end architecture;
