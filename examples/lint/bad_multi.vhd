-- Deliberately invalid in three separate places. The recovering
-- parser resynchronizes after each error, so `vase lint` reports all
-- three V002 diagnostics (and still analyzes what did parse) instead
-- of stopping at the first.
entity multi is
  port (quantity a : in real is voltage;
        quantity b : bad_type;
        quantity y : out real is voltage);
end entity;

architecture arch of multi is
  quantity q1 : real
begin
  y == a + ;
  y == a * 2.0;
end architecture;
