//! Design-space exploration across all five Table 1 benchmarks:
//! branch-and-bound vs the greedy heuristic, and ablations of the
//! algorithm's ingredients (bounding, sequencing, sharing, multi-block
//! patterns, functional transformations).
//!
//! ```sh
//! cargo run --example design_space
//! ```

use vase::archgen::{map_graph, map_graph_greedy, MapperConfig};
use vase::estimate::Estimator;
use vase::flow::compile_source;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let estimator = Estimator::default();
    println!(
        "{:<20} {:>8} {:>8} {:>10} {:>10} {:>9} {:>8}",
        "benchmark", "bnb amps", "greedy", "bnb µm²", "greedy µm²", "visited", "pruned"
    );
    for benchmark in vase::benchmarks::all() {
        let compiled = compile_source(benchmark.source)?;
        let (_, vhif, _) = &compiled[0];
        let graph = &vhif.graphs[0];
        let config = MapperConfig::default();
        let bnb = map_graph(graph, &estimator, &config)?;
        let greedy = map_graph_greedy(graph, &estimator, &config)?;
        println!(
            "{:<20} {:>8} {:>8} {:>10.0} {:>10.0} {:>9} {:>8}",
            benchmark.name,
            bnb.netlist.opamp_count(),
            greedy.netlist.opamp_count(),
            bnb.estimate.area_m2 * 1e12,
            greedy.estimate.area_m2 * 1e12,
            bnb.stats.visited_nodes,
            bnb.stats.pruned_nodes,
        );
    }

    println!("\n--- Ablations (receiver module, continuous-time part) ---");
    let compiled = compile_source(vase::benchmarks::RECEIVER.source)?;
    let graph = &compiled[0].1.graphs[0];
    let variants: [(&str, MapperConfig); 5] = [
        ("full algorithm", MapperConfig::default()),
        ("no bounding", MapperConfig { bounding: false, ..MapperConfig::default() }),
        ("no sequencing", MapperConfig { sequencing: false, ..MapperConfig::default() }),
        ("no sharing", MapperConfig { sharing: false, ..MapperConfig::default() }),
        ("single-block only", {
            let mut c = MapperConfig::default();
            c.match_options.multi_block = false;
            c.match_options.transforms = false;
            c
        }),
    ];
    println!("{:<20} {:>8} {:>10} {:>9} {:>8}", "variant", "op amps", "area µm²", "visited", "pruned");
    for (name, config) in variants {
        let result = map_graph(graph, &estimator, &config)?;
        println!(
            "{:<20} {:>8} {:>10.0} {:>9} {:>8}",
            name,
            result.netlist.opamp_count(),
            result.estimate.area_m2 * 1e12,
            result.stats.visited_nodes,
            result.stats.pruned_nodes,
        );
    }
    Ok(())
}
