//! The paper's Section 6 case study: synthesize the telephone-receiver
//! module (Fig. 2 → Fig. 7) and reproduce the Fig. 8 transient
//! simulation showing the output-limiting behavior (earph clipped at
//! 1.5 V under a deliberately large input).
//!
//! ```sh
//! cargo run --example telephone_receiver
//! ```

use std::collections::BTreeMap;

use vase::flow::{synthesize_source, FlowOptions};
use vase::sim::{render_ascii, simulate_netlist, SimConfig, Stimulus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = vase::benchmarks::RECEIVER;
    println!("=== {} (paper Fig. 2 / Fig. 7 / Fig. 8) ===\n", benchmark.name);

    let designs = synthesize_source(benchmark.source, &FlowOptions::default())?;
    let design = &designs[0];

    println!("--- Compiled signal-flow graph + FSM (paper Fig. 7a) ---");
    println!("{}", design.vhif);

    println!("--- Mapped circuit (paper Fig. 7b) ---");
    println!("{}", design.synthesis.netlist);
    println!(
        "paper reports: {}\nwe synthesize:  {}\n",
        benchmark.paper.components,
        design
            .synthesis
            .netlist
            .report_summary()
            .iter()
            .map(|(c, n)| format!("{n} {c}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Fig. 8: "We deliberately considered an input signal with a high
    // amplitude, so that we could observe the signal limiting
    // capability of the output stage. Signal v(9) was clipped at 1.5V."
    let mut stimuli = BTreeMap::new();
    stimuli.insert("line".to_string(), Stimulus::sine(0.8, 1_000.0));
    stimuli.insert("local".to_string(), Stimulus::sine(0.2, 1_000.0));
    let result = simulate_netlist(
        &design.synthesis.netlist,
        &stimuli,
        &design.synthesis.control_bindings,
        &SimConfig::new(1e-6, 3e-3),
    )?;

    println!("--- Transient simulation (paper Fig. 8) ---");
    println!("{}", render_ascii(&result, "line", 72, 10));
    println!("{}", render_ascii(&result, "earph", 72, 14));
    let (lo, hi) = result.range("earph").expect("earph simulated");
    println!("earph range: [{lo:.3}, {hi:.3}] V");
    println!(
        "fraction of samples clipped at +1.5 V: {:.1}%",
        100.0 * result.fraction_at_level("earph", 1.5, 1e-6)
    );
    assert!(hi <= 1.5 + 1e-9, "output must be limited at 1.5 V");
    println!("\n=> output limiting at 1.5 V reproduced (paper: v(9) clipped at 1.5V)");
    Ok(())
}
