//! The function-generator benchmark: a triangle-wave generator whose
//! event-driven part flips the integrator slope at the two rails.
//! Synthesizes to the paper's "1 integ., 1 MUX, 1 Schmitt trigger" and
//! is simulated at the behavioral (VHIF) level to show the oscillation.
//!
//! ```sh
//! cargo run --example function_generator
//! ```

use std::collections::BTreeMap;

use vase::flow::{compile_source, synthesize_source, FlowOptions};
use vase::sim::{render_ascii, simulate_design, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = vase::benchmarks::FUNCTION_GENERATOR;
    println!("=== {} ===\n", benchmark.name);

    // Compile only: look at the intermediate representation.
    let compiled = compile_source(benchmark.source)?;
    let (_, vhif, stats) = &compiled[0];
    println!("--- VASS stats: {stats}");
    println!("--- VHIF ---\n{vhif}");

    // Behavioral simulation of the VHIF design: the FSM flips `dir`
    // each time `ramp` hits ±1 V, so the output is a triangle wave.
    let result = simulate_design(vhif, &BTreeMap::new(), &SimConfig::new(1e-5, 8e-3))?;
    println!("--- Behavioral transient (triangle oscillation) ---");
    println!("{}", render_ascii(&result, "ramp", 72, 14));
    let (lo, hi) = result.range("ramp").expect("ramp simulated");
    println!("ramp range: [{lo:.3}, {hi:.3}] V");
    assert!(hi > 0.9 && lo < -0.9, "expected full-swing triangle oscillation");

    // Full synthesis: the paper's component mix.
    let designs = synthesize_source(benchmark.source, &FlowOptions::default())?;
    println!("\n--- Synthesized netlist ---\n{}", designs[0].synthesis.netlist);
    println!(
        "paper reports: {}\nwe synthesize:  {}",
        benchmark.paper.components,
        designs[0]
            .synthesis
            .netlist
            .report_summary()
            .iter()
            .map(|(c, n)| format!("{n} {c}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}
