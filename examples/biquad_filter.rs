//! A state-variable (biquad) filter specified as a DAE set — the
//! filter-synthesis use case the paper's Section 3 motivates ("we could
//! describe signal properties along the signal path ... and let the
//! synthesis tool infer an appropriate filter type").
//!
//! The spec writes the textbook state-variable form; the compiler's
//! DAE solver selection turns it into two integrator feedback loops,
//! and the mapper emits the classic two-integrator-loop filter. The
//! example then measures the frequency response by sweeping sine
//! inputs through the behavioral simulator.
//!
//! ```sh
//! cargo run --example biquad_filter
//! ```

use std::collections::BTreeMap;

use vase::flow::{synthesize_source, FlowOptions};
use vase::sim::frequency_response;

const SOURCE: &str = r#"
  entity biquad is
    port (quantity vin      : in  real is voltage frequency 10.0 to 10.0 khz;
          quantity lowpass  : out real is voltage;
          quantity bandpass : out real is voltage);
  end entity;

  architecture behavioral of biquad is
    quantity highpass : real;
    constant w0   : real := 6283.0;  -- 2*pi*1kHz
    constant qinv : real := 1.414;   -- 1/Q (Butterworth)
  begin
    highpass == vin - lowpass - qinv * bandpass;
    bandpass'dot == w0 * highpass;
    lowpass'dot == w0 * bandpass;
  end architecture;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== State-variable biquad filter ===\n");
    let designs = synthesize_source(SOURCE, &FlowOptions::default())?;
    let d = &designs[0];

    println!("--- VHIF ---\n{}", d.vhif);
    println!("--- Synthesized netlist ---\n{}", d.synthesis.netlist);
    println!(
        "components: {}\n",
        d.synthesis
            .netlist
            .report_summary()
            .iter()
            .map(|(c, n)| format!("{n} {c}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!("--- Frequency response (measured by transient sweep) ---");
    println!("{:>9} {:>12} {:>12}", "f [Hz]", "lowpass [dB]", "bandpass [dB]");
    let freqs = [100.0, 300.0, 1_000.0, 3_000.0, 10_000.0];
    let lp_points =
        frequency_response(&d.vhif, "vin", "lowpass", 1.0, &freqs, &BTreeMap::new())?;
    let bp_points =
        frequency_response(&d.vhif, "vin", "bandpass", 1.0, &freqs, &BTreeMap::new())?;
    for (lp, bp) in lp_points.iter().zip(&bp_points) {
        println!("{:>9.0} {:>12.1} {:>12.1}", lp.frequency_hz, lp.gain_db(), bp.gain_db());
    }
    let lp_at_100 = lp_points[0].gain;
    let lp_at_10k = lp_points[4].gain;
    println!();
    assert!(lp_at_100 > 0.9, "lowpass passband should be ~unity, got {lp_at_100}");
    assert!(
        lp_at_10k < 0.05,
        "lowpass should attenuate a decade above cutoff, got {lp_at_10k}"
    );
    println!(
        "=> lowpass passes 100 Hz at {:.2} V/V and rejects 10 kHz at {:.3} V/V —\n   \
         the two-integrator-loop filter behaves as specified.",
        lp_at_100, lp_at_10k
    );
    Ok(())
}
