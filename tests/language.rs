//! VASS language coverage: end-to-end exercises of subset constructs
//! the five benchmarks don't touch — packages, vectors, nested mode
//! selection, sequential case, for-loops over vectors, terminal
//! facets, and user functions — plus diagnostics quality checks.

use vase::flow::{compile_source, synthesize_source, FlowError, FlowOptions};
use vase::library::ComponentKind;
use vase::vhif::BlockKind;

fn synth(source: &str) -> vase::flow::SynthesizedDesign {
    synthesize_source(source, &FlowOptions::default())
        .expect("synthesizes")
        .into_iter()
        .next()
        .expect("one architecture")
}

#[test]
fn package_constants_and_functions_cross_design_units() {
    let d = synth(
        "package lib is
           constant gain : real := 5.0;
           function db_double(x : real) return real is
           begin
             return x * 2.0;
           end function;
         end package;
         entity uses_pkg is
           port (quantity a : in real is voltage;
                 quantity y : out real is voltage);
         end entity;
         architecture arch of uses_pkg is
         begin
           y == db_double(gain * a);
         end architecture;",
    );
    // db_double(gain·a) inlines to 2·5·a → folded into one amplifier.
    assert_eq!(d.synthesis.netlist.opamp_count(), 1);
    match &d.synthesis.netlist.components[0].kind {
        ComponentKind::NonInvertingAmp { gain } => assert_eq!(*gain, 10.0),
        other => panic!("expected a gain-10 amp, got {other:?}"),
    }
}

#[test]
fn real_vector_indexed_in_unrolled_loop() {
    let d = synth(
        "entity vec is
           port (quantity x : in real is voltage;
                 quantity y : out real is voltage);
         end entity;
         architecture a of vec is
           constant taps : integer := 3;
         begin
           procedural is
             variable w : real_vector(0 to 2);
             variable acc : real;
           begin
             for i in 0 to taps - 1 loop
               w(i) := x * 0.25;
             end loop;
             acc := 0.0;
             for i in 0 to taps - 1 loop
               acc := acc + w(i);
             end loop;
             y := acc;
           end procedural;
         end architecture;",
    );
    d.synthesis.netlist.validate().expect("valid");
    assert!(d.vhif.stats().blocks >= 2);
}

#[test]
fn nested_simultaneous_if_selects_among_four_modes() {
    let d = synth(
        "entity modes is
           port (quantity x : in real is voltage;
                 quantity y : out real is voltage;
                 signal s1 : in bit;
                 signal s2 : in bit);
         end entity;
         architecture a of modes is
         begin
           if (s1 = '1') use
             if (s2 = '1') use
               y == 4.0 * x;
             else
               y == 3.0 * x;
             end use;
           else
             if (s2 = '1') use
               y == 2.0 * x;
             else
               y == 1.0 * x;
             end use;
           end use;
         end architecture;",
    );
    // Three 2-way muxes select among the four gain paths.
    let muxes = d.vhif.graphs[0]
        .iter()
        .filter(|(_, b)| matches!(b.kind, BlockKind::Mux { .. }))
        .count();
    assert_eq!(muxes, 3, "{}", d.vhif.graphs[0]);
    d.synthesis.netlist.validate().expect("valid");
}

#[test]
fn simultaneous_case_over_bit_signal() {
    let d = synth(
        "entity sel is
           port (quantity x : in real is voltage;
                 quantity y : out real is voltage;
                 signal mode : in bit);
         end entity;
         architecture a of sel is
         begin
           case mode use
             when '1' => y == 0.5 * x;
             when others => y == 2.0 * x;
           end case;
         end architecture;",
    );
    assert!(d.vhif.graphs[0]
        .iter()
        .any(|(_, b)| matches!(b.kind, BlockKind::Mux { arity: 2 })));
}

#[test]
fn sequential_case_in_procedural() {
    let d = synth(
        "entity seqcase is
           port (quantity x : in real is voltage;
                 quantity y : out real is voltage;
                 signal mode : in bit);
         end entity;
         architecture a of seqcase is
         begin
           procedural is
             variable v : real;
           begin
             case mode is
               when '0' => v := x;
               when others => v := 0.0 - x;
             end case;
             y := v;
           end procedural;
         end architecture;",
    );
    d.synthesis.netlist.validate().expect("valid");
}

#[test]
fn terminal_across_facet_flows_through() {
    let d = synth(
        "entity term is
           port (terminal t1 : electrical is impedance 50 ohm;
                 quantity y : out real is voltage);
         end entity;
         architecture a of term is
         begin
           y == 3.0 * t1'across;
         end architecture;",
    );
    // The facet becomes an external input named after it.
    let g = &d.vhif.graphs[0];
    assert!(
        g.iter().any(|(_, b)| matches!(&b.kind, BlockKind::Input { name } if name.contains("across"))),
        "{g}"
    );
    assert_eq!(d.synthesis.netlist.opamp_count(), 1);
}

#[test]
fn abs_maps_to_precision_rectifier() {
    let d = synth(
        "entity rect is
           port (quantity x : in real is voltage;
                 quantity y : out real is voltage);
         end entity;
         architecture a of rect is
         begin
           y == abs x;
         end architecture;",
    );
    assert!(d
        .synthesis
        .netlist
        .components
        .iter()
        .any(|c| matches!(c.kind, ComponentKind::PrecisionRectifier)));
}

#[test]
fn division_of_quantities_maps_to_divider() {
    let d = synth(
        "entity ratio is
           port (quantity a : in real is voltage range 0.1 to 1.0;
                 quantity b : in real is voltage range 0.1 to 1.0;
                 quantity y : out real is voltage);
         end entity;
         architecture arch of ratio is
         begin
           y == a / b;
         end architecture;",
    );
    assert!(d
        .synthesis
        .netlist
        .components
        .iter()
        .any(|c| matches!(c.kind, ComponentKind::Divider)));
}

#[test]
fn differentiator_from_dot_on_rhs() {
    let d = synth(
        "entity deriv is
           port (quantity x : in real is voltage;
                 quantity y : out real is voltage);
         end entity;
         architecture a of deriv is
         begin
           y == 0.001 * x'dot;
         end architecture;",
    );
    assert!(d
        .synthesis
        .netlist
        .components
        .iter()
        .any(|c| matches!(c.kind, ComponentKind::Differentiator { .. })));
}

#[test]
fn power_operator_synthesizes_multiplier_chain() {
    let d = synth(
        "entity square is
           port (quantity x : in real is voltage;
                 quantity y : out real is voltage);
         end entity;
         architecture a of square is
         begin
           y == x ** 2;
         end architecture;",
    );
    assert!(d
        .synthesis
        .netlist
        .components
        .iter()
        .any(|c| matches!(c.kind, ComponentKind::Multiplier)));
}

// ------------------------------------------------------- diagnostics

#[test]
fn unsolvable_dae_reports_the_stuck_variable() {
    let err = synthesize_source(
        "entity bad is
           port (quantity y : out real is voltage);
         end entity;
         architecture a of bad is
           quantity w : real;
         begin
           y == w * w;
           w == y + 1.0;
         end architecture;",
        &FlowOptions::default(),
    )
    .unwrap_err();
    let message = err.to_string();
    assert!(matches!(err, FlowError::Compile(_)));
    assert!(message.contains("signal-flow"), "{message}");
}

#[test]
fn sema_errors_carry_source_locations() {
    let err = synthesize_source(
        "entity loc is
           port (quantity y : out real is voltage);
         end entity;
         architecture a of loc is
         begin
           y == 2.0 * ghost;
         end architecture;",
        &FlowOptions::default(),
    )
    .unwrap_err();
    let message = err.to_string();
    assert!(message.contains("ghost"), "{message}");
    assert!(message.contains("6:"), "expected a line number in: {message}");
}

#[test]
fn parse_errors_point_at_the_offending_token() {
    let err = compile_source("entity broken is port (quantity : in real); end entity;")
        .unwrap_err();
    let message = err.to_string();
    assert!(message.contains("expected identifier"), "{message}");
}

#[test]
fn wait_statement_rejected_with_explanation() {
    let err = synthesize_source(
        "entity w is end entity;
         architecture a of w is
           signal s : bit;
         begin
           process (s) is begin wait; end process;
         end architecture;",
        &FlowOptions::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("wait"), "{err}");
    assert!(err.to_string().contains("sensitivity"), "{err}");
}

#[test]
fn multiple_architectures_in_one_file() {
    let designs = synthesize_source(
        "entity first is
           port (quantity x : in real is voltage;
                 quantity y : out real is voltage);
         end entity;
         architecture a of first is begin y == 2.0 * x; end architecture;
         entity second is
           port (quantity u : in real is voltage;
                 quantity v : out real is voltage);
         end entity;
         architecture b of second is begin v == u - 0.5 * u; end architecture;",
        &FlowOptions::default(),
    )
    .expect("flow");
    assert_eq!(designs.len(), 2);
    assert_eq!(designs[0].entity, "first");
    assert_eq!(designs[1].entity, "second");
    for d in &designs {
        d.synthesis.netlist.validate().expect("valid");
    }
}

#[test]
fn annotation_statement_attaches_to_local_quantity() {
    // `quantity <name> is <annots>;` in the statement part merges
    // annotations into an architecture-local quantity — here driving a
    // wider derived bandwidth than the ports alone imply.
    let designs = synthesize_source(
        "entity ann is
           port (quantity x : in real is voltage;
                 quantity y : out real is voltage);
         end entity;
         architecture a of ann is
           quantity mid : real;
         begin
           quantity mid is frequency 0.0 to 50.0 khz range -2.0 to 2.0;
           mid == 5.0 * x;
           y == mid + x;
         end architecture;",
        &FlowOptions::default(),
    )
    .expect("flow");
    // The derived constraints picked up the 50 kHz band: the amplifiers
    // were sized for it (UGF well above the audio default).
    let est = &designs[0].synthesis.estimate;
    assert!(
        est.components.iter().any(|c| c.ugf_hz >= 1e6),
        "expected wide-band sizing, got {est:?}"
    );
}

#[test]
fn while_loop_flows_to_netlist_with_sample_holds() {
    let d = synth(
        "entity halver is
           port (quantity x : in real is voltage range 0.0 to 2.0;
                 quantity y : out real is voltage);
         end entity;
         architecture a of halver is
         begin
           procedural is
             variable acc : real;
           begin
             acc := x;
             while acc > 0.5 loop
               acc := acc / 2.0;
             end loop;
             y := acc;
           end procedural;
         end architecture;",
    );
    let summary = d.synthesis.netlist.report_summary();
    let count = |cat: &str| {
        summary.iter().find(|(c, _)| c == cat).map(|(_, n)| *n).unwrap_or(0)
    };
    // Fig. 4's inventory survives mapping: 2 S/H, a switch, the two
    // conditionals (zero-cross + Schmitt), and the routing muxes.
    assert_eq!(count("S/H"), 2, "{summary:?}");
    assert_eq!(count("Schmitt trigger"), 1, "{summary:?}");
    assert_eq!(count("zero-cross det."), 1, "{summary:?}");
    assert!(count("MUX") >= 2, "{summary:?}");
    assert_eq!(count("switch"), 1, "{summary:?}");
}
