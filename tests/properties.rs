//! Property-style tests over the core data structures and algorithms:
//! parser/printer round-trips, DAE-isolation numerical inverses,
//! signal-flow graph invariants, and branch-and-bound admissibility on
//! random workloads.
//!
//! The cases are generated from seed-driven SplitMix64 streams instead
//! of proptest (unavailable in the offline build environment); failures
//! print the case seed so any run is reproducible bit-for-bit.

use vase::archgen::{map_graph, MapperConfig};
use vase::estimate::Estimator;
use vase::frontend::ast::{BinaryOp, Expr, ExprKind, UnaryOp};
use vase::frontend::parse_expression;
use vase::frontend::span::Span;
use vase::sim::Stimulus;
use vase::vhif::{BlockKind, SignalFlowGraph};

// ----------------------------------------------------------------- rng

/// Deterministic SplitMix64 stream used by every generator below.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..len` (len > 0).
    fn index(&mut self, len: usize) -> usize {
        (self.next_u64() % len as u64) as usize
    }

    /// Uniform integer in `lo..hi`.
    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform float in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Per-case seeds for a named suite: decorrelated, reproducible.
fn case_seeds(suite: u64, cases: usize) -> impl Iterator<Item = u64> {
    (0..cases as u64).map(move |i| suite ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

// ---------------------------------------------------------------- expr

/// A well-formed analog expression over a fixed name set, with
/// recursion bounded by `depth` (mirrors the old proptest strategy:
/// leaves are small ints, reals, or one of `a b c x`).
fn random_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.index(3) == 0 {
        return match rng.index(3) {
            0 => Expr::new(ExprKind::Int(rng.int_in(1, 100)), Span::synthetic()),
            1 => Expr::new(ExprKind::Real(rng.f64_in(0.1, 100.0)), Span::synthetic()),
            _ => Expr::name(["a", "b", "c", "x"][rng.index(4)]),
        };
    }
    match rng.index(3) {
        0 => {
            let op = [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div]
                [rng.index(4)];
            let lhs = Box::new(random_expr(rng, depth - 1));
            let rhs = Box::new(random_expr(rng, depth - 1));
            Expr::new(ExprKind::Binary { op, lhs, rhs }, Span::synthetic())
        }
        1 => Expr::new(
            ExprKind::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(random_expr(rng, depth - 1)),
            },
            Span::synthetic(),
        ),
        _ => Expr::new(
            ExprKind::Unary {
                op: UnaryOp::Abs,
                operand: Box::new(random_expr(rng, depth - 1)),
            },
            Span::synthetic(),
        ),
    }
}

/// Printing an expression and re-parsing it yields the same expression
/// (up to spans), so `Display` is a faithful surface syntax.
#[test]
fn expr_print_parse_roundtrip() {
    for seed in case_seeds(0x000e_0001, 256) {
        let e = random_expr(&mut Rng::new(seed), 4);
        let printed = e.to_string();
        let reparsed = parse_expression(&printed).unwrap_or_else(|err| {
            panic!("seed={seed:#x}: printed form `{printed}` failed to parse: {err}")
        });
        assert_eq!(reparsed.to_string(), printed, "seed={seed:#x}");
    }
}

/// Constant folding agrees with direct evaluation for closed
/// expressions.
#[test]
fn const_fold_matches_evaluation() {
    fn eval(e: &Expr) -> Option<f64> {
        match &e.kind {
            ExprKind::Int(v) => Some(*v as f64),
            ExprKind::Real(v) => Some(*v),
            ExprKind::Name(_) => None,
            ExprKind::Unary { op, operand } => {
                let v = eval(operand)?;
                match op {
                    UnaryOp::Neg => Some(-v),
                    UnaryOp::Plus => Some(v),
                    UnaryOp::Abs => Some(v.abs()),
                    UnaryOp::Not => None,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let a = eval(lhs)?;
                let b = eval(rhs)?;
                match op {
                    BinaryOp::Add => Some(a + b),
                    BinaryOp::Sub => Some(a - b),
                    BinaryOp::Mul => Some(a * b),
                    BinaryOp::Div => Some(a / b),
                    _ => None,
                }
            }
            _ => None,
        }
    }
    for seed in case_seeds(0x000e_0002, 256) {
        let e = random_expr(&mut Rng::new(seed), 4);
        match (e.const_fold(), eval(&e)) {
            (Some(f), Some(direct)) => {
                let ok = (f - direct).abs() <= 1e-9 * direct.abs().max(1.0)
                    || (f.is_nan() && direct.is_nan())
                    || (f.is_infinite() && direct.is_infinite());
                assert!(ok, "seed={seed:#x}: fold {f} vs eval {direct}");
            }
            (None, None) => {}
            // const_fold may be more conservative but never *more*
            // aggressive than direct evaluation on supported ops.
            (None, Some(_)) => panic!("seed={seed:#x}: fold missed a closed expression"),
            (Some(_), None) => panic!("seed={seed:#x}: fold invented a value"),
        }
    }
}

// -------------------------------------------------------------- solver

/// An invertible expression path around the unknown `x`: wrap x in 1-4
/// random invertible operations with nonzero consts in [0.5, 4.0).
fn random_solvable_rhs(rng: &mut Rng) -> Expr {
    let wraps = 1 + rng.index(4);
    let mut e = Expr::name("x");
    for _ in 0..wraps {
        let k = rng.f64_in(0.5, 4.0);
        let konst = Expr::new(ExprKind::Real(k), Span::synthetic());
        let kind = match rng.index(4) {
            0 => ExprKind::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(e),
                rhs: Box::new(konst),
            },
            1 => ExprKind::Binary {
                op: BinaryOp::Sub,
                lhs: Box::new(e),
                rhs: Box::new(konst),
            },
            2 => ExprKind::Binary {
                op: BinaryOp::Mul,
                lhs: Box::new(konst),
                rhs: Box::new(e),
            },
            _ => ExprKind::Binary {
                op: BinaryOp::Div,
                lhs: Box::new(e),
                rhs: Box::new(konst),
            },
        };
        e = Expr::new(kind, Span::synthetic());
    }
    e
}

fn eval_with_var(e: &Expr, var: &str, value: f64) -> f64 {
    match &e.kind {
        ExprKind::Int(v) => *v as f64,
        ExprKind::Real(v) => *v,
        ExprKind::Name(id) if id.name == var => value,
        ExprKind::Name(_) => f64::NAN,
        ExprKind::Unary { op, operand } => {
            let v = eval_with_var(operand, var, value);
            match op {
                UnaryOp::Neg => -v,
                UnaryOp::Plus => v,
                UnaryOp::Abs => v.abs(),
                UnaryOp::Not => f64::NAN,
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let a = eval_with_var(lhs, var, value);
            let b = eval_with_var(rhs, var, value);
            match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => a / b,
                _ => f64::NAN,
            }
        }
        _ => f64::NAN,
    }
}

/// Isolating `x` from `y == f(x)` yields a true inverse: for any x₀,
/// evaluating the isolated expression at y = f(x₀) returns x₀.
#[test]
fn isolation_is_numerical_inverse() {
    use vase::compiler::solver::{isolate, Equation, Solution};
    for seed in case_seeds(0x50_1ce2, 256) {
        let mut rng = Rng::new(seed);
        let rhs = random_solvable_rhs(&mut rng);
        let x0 = rng.f64_in(0.5, 8.0);
        let eq = Equation {
            lhs: Expr::name("y"),
            rhs: rhs.clone(),
            span: Span::synthetic(),
        };
        let sol = isolate(&eq, "x").expect("single-occurrence x is isolatable");
        let Solution::Direct(inverse) = sol else {
            panic!("seed={seed:#x}: expected a direct solution");
        };
        let y0 = eval_with_var(&rhs, "x", x0);
        if !y0.is_finite() {
            continue; // mirrors the old prop_assume!
        }
        let recovered = eval_with_var(&inverse, "y", y0);
        assert!(
            (recovered - x0).abs() <= 1e-6 * x0.abs().max(1.0),
            "seed={seed:#x}: f(x0)={y0}, recovered {recovered} != {x0} via {inverse}"
        );
    }
}

// --------------------------------------------------------------- graph

/// A random layered combinational signal-flow graph with one output:
/// 1-3 inputs, 1-9 ops from Scale/Add/Sub/Mul, deterministic wiring.
fn random_graph(rng: &mut Rng) -> SignalFlowGraph {
    let n_inputs = 1 + rng.index(3);
    let n_ops = 1 + rng.index(9);
    let mut g = SignalFlowGraph::new("random");
    let mut pool = Vec::new();
    for i in 0..n_inputs {
        pool.push(g.add(BlockKind::Input { name: format!("in{i}") }));
    }
    for i in 0..n_ops {
        let op = rng.index(4);
        let gain = rng.f64_in(0.25, 8.0);
        let a = pool[i % pool.len()];
        let b = pool[(i * 7 + 1) % pool.len()];
        let id = match op {
            0 => {
                let id = g.add(BlockKind::Scale { gain });
                g.connect(a, id, 0).expect("wire");
                id
            }
            1 => {
                let id = g.add(BlockKind::Add { arity: 2 });
                g.connect(a, id, 0).expect("wire");
                g.connect(b, id, 1).expect("wire");
                id
            }
            2 => {
                let id = g.add(BlockKind::Sub);
                g.connect(a, id, 0).expect("wire");
                g.connect(b, id, 1).expect("wire");
                id
            }
            _ => {
                let id = g.add(BlockKind::Mul);
                g.connect(a, id, 0).expect("wire");
                g.connect(b, id, 1).expect("wire");
                id
            }
        };
        pool.push(id);
    }
    let out = g.add(BlockKind::Output { name: "y".into() });
    let last = *pool.last().expect("nonempty");
    g.connect(last, out, 0).expect("wire");
    g
}

/// Random layered graphs are valid-by-construction except for
/// possibly-unconsumed blocks; topo order covers every block once and
/// respects data edges.
#[test]
fn topo_order_respects_edges() {
    for seed in case_seeds(0x9_0001, 256) {
        let g = random_graph(&mut Rng::new(seed));
        let order = g.topo_order().expect("layered graphs are acyclic");
        assert_eq!(order.len(), g.len(), "seed={seed:#x}");
        let position: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        for (id, block) in g.iter() {
            if block.kind.is_stateful() {
                continue;
            }
            for driver in g.block_inputs(id).iter().flatten() {
                assert!(
                    position[driver] < position[&id],
                    "seed={seed:#x}: {driver} must precede {id}"
                );
            }
        }
    }
}

/// The upstream cone of the output is closed under taking drivers.
#[test]
fn upstream_cone_is_closed() {
    for seed in case_seeds(0x9_0002, 256) {
        let g = random_graph(&mut Rng::new(seed));
        let out = g.outputs()[0];
        let cone = g.upstream_cone(out);
        for &b in &cone {
            for driver in g.block_inputs(b).iter().flatten() {
                assert!(cone.contains(driver), "seed={seed:#x}");
            }
        }
    }
}

/// Branch-and-bound with the bounding rule finds the same optimum as
/// the exhaustive search on random workloads (the bound is admissible),
/// and never visits more nodes.
#[test]
fn bounding_is_admissible_on_random_graphs() {
    for seed in case_seeds(0x9_0003, 64) {
        let g = random_graph(&mut Rng::new(seed));
        let estimator = Estimator::default();
        let bounded = map_graph(&g, &estimator, &MapperConfig::default());
        // `exhaustive_memoized` (not the truly exhaustive search) keeps
        // the no-bounding baseline tractable across many random cases.
        let exhaustive = map_graph(&g, &estimator, &MapperConfig::exhaustive_memoized());
        match (bounded, exhaustive) {
            (Ok(b), Ok(e)) => {
                assert_eq!(
                    b.netlist.opamp_count(),
                    e.netlist.opamp_count(),
                    "seed={seed:#x}: bounding changed the optimum"
                );
                assert!(
                    b.stats.visited_nodes <= e.stats.visited_nodes,
                    "seed={seed:#x}"
                );
                b.netlist.validate().expect("valid netlist");
                // Every operation block is implemented by exactly one
                // component.
                let mut covered = std::collections::HashSet::new();
                for c in &b.netlist.components {
                    for blk in &c.implements {
                        assert!(covered.insert(*blk), "seed={seed:#x}: block covered twice");
                    }
                }
                let ops = g.iter().filter(|(_, b)| !b.kind.is_interface()).count();
                assert_eq!(covered.len(), ops, "seed={seed:#x}: not all blocks covered");
            }
            (Err(b), Err(e)) => assert_eq!(b, e, "seed={seed:#x}"),
            (b, e) => panic!("seed={seed:#x}: disagreement: {b:?} vs {e:?}"),
        }
    }
}

// ------------------------------------------------------------ stimulus

/// Stimuli are total functions: finite time in, finite value out.
#[test]
fn stimuli_are_finite() {
    for seed in case_seeds(0x57_1b01, 256) {
        let mut rng = Rng::new(seed);
        let t = rng.f64_in(0.0, 10.0);
        let amp = rng.f64_in(0.0, 10.0);
        let freq = rng.f64_in(0.1, 1e6);
        let period = rng.f64_in(1e-6, 1.0);
        let duty = rng.f64_in(0.01, 0.99);
        let stimuli = [
            Stimulus::Constant { level: amp },
            Stimulus::sine(amp, freq),
            Stimulus::Step { before: -amp, after: amp, at: period },
            Stimulus::Ramp { from: -amp, to: amp, duration: period },
            Stimulus::Pulse { low: -amp, high: amp, period, duty },
        ];
        for s in stimuli {
            assert!(s.at(t).is_finite(), "seed={seed:#x}: {s:?} at {t}");
        }
    }
}

/// Random string from a charset, length `0..=max_len`.
fn random_string(rng: &mut Rng, charset: &[char], max_len: usize) -> String {
    let len = rng.index(max_len + 1);
    (0..len).map(|_| charset[rng.index(charset.len())]).collect()
}

/// Lexing arbitrary input never panics.
#[test]
fn lexer_is_total() {
    // Printable ASCII plus whitespace/control and some multibyte chars,
    // standing in for proptest's arbitrary `.{0,200}` strings.
    let mut charset: Vec<char> = (' '..='~').collect();
    charset.extend(['\n', '\t', '\r', '\0', 'é', 'Ω', '∿', '🦀']);
    for seed in case_seeds(0x1e_0001, 256) {
        let mut rng = Rng::new(seed);
        let src = random_string(&mut rng, &charset, 200);
        let _ = vase::frontend::lexer::lex(&src);
    }
}

/// Parsing arbitrary token soup never panics.
#[test]
fn parser_is_total() {
    let charset: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789+*/()=<>;:., '"
        .chars()
        .collect();
    for seed in case_seeds(0x9a_0001, 256) {
        let mut rng = Rng::new(seed);
        let src = random_string(&mut rng, &charset, 120);
        let _ = vase::frontend::parse_design_file(&src);
        let _ = parse_expression(&src);
    }
}
