//! Property-based tests over the core data structures and algorithms:
//! parser/printer round-trips, DAE-isolation numerical inverses,
//! signal-flow graph invariants, and branch-and-bound admissibility on
//! random workloads.

use proptest::prelude::*;

use vase::archgen::{map_graph, MapperConfig};
use vase::estimate::Estimator;
use vase::frontend::ast::{BinaryOp, Expr, ExprKind, UnaryOp};
use vase::frontend::parse_expression;
use vase::frontend::span::Span;
use vase::sim::Stimulus;
use vase::vhif::{BlockKind, SignalFlowGraph};

// ---------------------------------------------------------------- expr

/// A strategy for well-formed analog expressions over a fixed name set.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (1i64..100).prop_map(|v| Expr::new(ExprKind::Int(v), Span::synthetic())),
        (0.1f64..100.0).prop_map(|v| Expr::new(ExprKind::Real(v), Span::synthetic())),
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("x")].prop_map(Expr::name),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r)
                },
                Span::synthetic(),
            )),
            inner.clone().prop_map(|e| Expr::new(
                ExprKind::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(e)
                },
                Span::synthetic(),
            )),
            inner.prop_map(|e| Expr::new(
                ExprKind::Unary {
                    op: UnaryOp::Abs,
                    operand: Box::new(e)
                },
                Span::synthetic(),
            )),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
    ]
}

proptest! {
    /// Printing an expression and re-parsing it yields the same
    /// expression (up to spans), so `Display` is a faithful surface
    /// syntax.
    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expression(&printed)
            .unwrap_or_else(|err| panic!("printed form `{printed}` failed to parse: {err}"));
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// Constant folding agrees with direct evaluation for closed
    /// expressions.
    #[test]
    fn const_fold_matches_evaluation(e in arb_expr()) {
        fn eval(e: &Expr) -> Option<f64> {
            match &e.kind {
                ExprKind::Int(v) => Some(*v as f64),
                ExprKind::Real(v) => Some(*v),
                ExprKind::Name(_) => None,
                ExprKind::Unary { op, operand } => {
                    let v = eval(operand)?;
                    match op {
                        UnaryOp::Neg => Some(-v),
                        UnaryOp::Plus => Some(v),
                        UnaryOp::Abs => Some(v.abs()),
                        UnaryOp::Not => None,
                    }
                }
                ExprKind::Binary { op, lhs, rhs } => {
                    let a = eval(lhs)?;
                    let b = eval(rhs)?;
                    match op {
                        BinaryOp::Add => Some(a + b),
                        BinaryOp::Sub => Some(a - b),
                        BinaryOp::Mul => Some(a * b),
                        BinaryOp::Div => Some(a / b),
                        _ => None,
                    }
                }
                _ => None,
            }
        }
        match (e.const_fold(), eval(&e)) {
            (Some(f), Some(direct)) => {
                let ok = (f - direct).abs() <= 1e-9 * direct.abs().max(1.0)
                    || (f.is_nan() && direct.is_nan())
                    || (f.is_infinite() && direct.is_infinite());
                prop_assert!(ok, "fold {f} vs eval {direct}");
            }
            (None, None) => {}
            // const_fold may be more conservative but never *more*
            // aggressive than direct evaluation on supported ops.
            (None, Some(_)) => prop_assert!(false, "fold missed a closed expression"),
            (Some(_), None) => prop_assert!(false, "fold invented a value"),
        }
    }
}

// -------------------------------------------------------------- solver

/// Strategy: an invertible expression path around the unknown `x`.
fn arb_solvable_rhs() -> impl Strategy<Value = Expr> {
    // Wrap x in 1..5 random invertible operations with nonzero consts.
    (
        1usize..5,
        proptest::collection::vec((0.5f64..4.0, 0u8..4), 1..5),
    )
        .prop_map(|(_, wraps)| {
            let mut e = Expr::name("x");
            for (k, op) in wraps {
                let konst = Expr::new(ExprKind::Real(k), Span::synthetic());
                let kind = match op {
                    0 => ExprKind::Binary {
                        op: BinaryOp::Add,
                        lhs: Box::new(e),
                        rhs: Box::new(konst),
                    },
                    1 => ExprKind::Binary {
                        op: BinaryOp::Sub,
                        lhs: Box::new(e),
                        rhs: Box::new(konst),
                    },
                    2 => ExprKind::Binary {
                        op: BinaryOp::Mul,
                        lhs: Box::new(konst),
                        rhs: Box::new(e),
                    },
                    _ => ExprKind::Binary {
                        op: BinaryOp::Div,
                        lhs: Box::new(e),
                        rhs: Box::new(konst),
                    },
                };
                e = Expr::new(kind, Span::synthetic());
            }
            e
        })
}

fn eval_with_var(e: &Expr, var: &str, value: f64) -> f64 {
    match &e.kind {
        ExprKind::Int(v) => *v as f64,
        ExprKind::Real(v) => *v,
        ExprKind::Name(id) if id.name == var => value,
        ExprKind::Name(_) => f64::NAN,
        ExprKind::Unary { op, operand } => {
            let v = eval_with_var(operand, var, value);
            match op {
                UnaryOp::Neg => -v,
                UnaryOp::Plus => v,
                UnaryOp::Abs => v.abs(),
                UnaryOp::Not => f64::NAN,
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let a = eval_with_var(lhs, var, value);
            let b = eval_with_var(rhs, var, value);
            match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => a / b,
                _ => f64::NAN,
            }
        }
        _ => f64::NAN,
    }
}

proptest! {
    /// Isolating `x` from `y == f(x)` yields a true inverse: for any
    /// x₀, evaluating the isolated expression at y = f(x₀) returns x₀.
    #[test]
    fn isolation_is_numerical_inverse(rhs in arb_solvable_rhs(), x0 in 0.5f64..8.0) {
        use vase::compiler::solver::{isolate, Equation, Solution};
        let eq = Equation {
            lhs: Expr::name("y"),
            rhs: rhs.clone(),
            span: Span::synthetic(),
        };
        let sol = isolate(&eq, "x").expect("single-occurrence x is isolatable");
        let Solution::Direct(inverse) = sol else {
            prop_assert!(false, "expected a direct solution");
            return Ok(());
        };
        let y0 = eval_with_var(&rhs, "x", x0);
        prop_assume!(y0.is_finite());
        let recovered = eval_with_var(&inverse, "y", y0);
        prop_assert!(
            (recovered - x0).abs() <= 1e-6 * x0.abs().max(1.0),
            "f(x0)={y0}, recovered {recovered} != {x0} via {inverse}"
        );
    }
}

// --------------------------------------------------------------- graph

/// Strategy: a random layered combinational signal-flow graph with one
/// output.
fn arb_graph() -> impl Strategy<Value = SignalFlowGraph> {
    (
        1usize..4,                                                // inputs
        proptest::collection::vec((0u8..4, 0.25f64..8.0), 1..10), // ops
    )
        .prop_map(|(n_inputs, ops)| {
            let mut g = SignalFlowGraph::new("random");
            let mut pool = Vec::new();
            for i in 0..n_inputs {
                pool.push(g.add(BlockKind::Input {
                    name: format!("in{i}"),
                }));
            }
            for (i, (op, gain)) in ops.into_iter().enumerate() {
                let a = pool[i % pool.len()];
                let b = pool[(i * 7 + 1) % pool.len()];
                let id = match op {
                    0 => {
                        let id = g.add(BlockKind::Scale { gain });
                        g.connect(a, id, 0).expect("wire");
                        id
                    }
                    1 => {
                        let id = g.add(BlockKind::Add { arity: 2 });
                        g.connect(a, id, 0).expect("wire");
                        g.connect(b, id, 1).expect("wire");
                        id
                    }
                    2 => {
                        let id = g.add(BlockKind::Sub);
                        g.connect(a, id, 0).expect("wire");
                        g.connect(b, id, 1).expect("wire");
                        id
                    }
                    _ => {
                        let id = g.add(BlockKind::Mul);
                        g.connect(a, id, 0).expect("wire");
                        g.connect(b, id, 1).expect("wire");
                        id
                    }
                };
                pool.push(id);
            }
            let out = g.add(BlockKind::Output { name: "y".into() });
            let last = *pool.last().expect("nonempty");
            g.connect(last, out, 0).expect("wire");
            g
        })
}

proptest! {
    /// Random layered graphs are valid-by-construction except for
    /// possibly-unconsumed blocks; topo order covers every block once
    /// and respects data edges.
    #[test]
    fn topo_order_respects_edges(g in arb_graph()) {
        let order = g.topo_order().expect("layered graphs are acyclic");
        prop_assert_eq!(order.len(), g.len());
        let position: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        for (id, block) in g.iter() {
            if block.kind.is_stateful() {
                continue;
            }
            for driver in g.block_inputs(id).iter().flatten() {
                prop_assert!(
                    position[driver] < position[&id],
                    "{driver} must precede {id}"
                );
            }
        }
    }

    /// The upstream cone of the output is closed under taking drivers.
    #[test]
    fn upstream_cone_is_closed(g in arb_graph()) {
        let out = g.outputs()[0];
        let cone = g.upstream_cone(out);
        for &b in &cone {
            for driver in g.block_inputs(b).iter().flatten() {
                prop_assert!(cone.contains(driver));
            }
        }
    }

    /// Branch-and-bound with the bounding rule finds the same optimum
    /// as the exhaustive search on random workloads (the bound is
    /// admissible), and never visits more nodes.
    #[test]
    fn bounding_is_admissible_on_random_graphs(g in arb_graph()) {
        let estimator = Estimator::default();
        let bounded = map_graph(&g, &estimator, &MapperConfig::default());
        // `exhaustive_memoized` (not the truly exhaustive search) keeps
        // the no-bounding baseline tractable across many random cases.
        let exhaustive = map_graph(&g, &estimator, &MapperConfig::exhaustive_memoized());
        match (bounded, exhaustive) {
            (Ok(b), Ok(e)) => {
                prop_assert_eq!(
                    b.netlist.opamp_count(),
                    e.netlist.opamp_count(),
                    "bounding changed the optimum"
                );
                prop_assert!(b.stats.visited_nodes <= e.stats.visited_nodes);
                b.netlist.validate().expect("valid netlist");
                // Every operation block is implemented by exactly one
                // component.
                let mut covered = std::collections::HashSet::new();
                for c in &b.netlist.components {
                    for blk in &c.implements {
                        prop_assert!(covered.insert(*blk), "block covered twice");
                    }
                }
                let ops = g.iter().filter(|(_, b)| !b.kind.is_interface()).count();
                prop_assert_eq!(covered.len(), ops, "not all blocks covered");
            }
            (Err(b), Err(e)) => prop_assert_eq!(b, e),
            (b, e) => prop_assert!(false, "disagreement: {b:?} vs {e:?}"),
        }
    }
}

// ------------------------------------------------------------ stimulus

proptest! {
    /// Stimuli are total functions: finite time in, finite value out.
    #[test]
    fn stimuli_are_finite(
        t in 0.0f64..10.0,
        amp in 0.0f64..10.0,
        freq in 0.1f64..1e6,
        period in 1e-6f64..1.0,
        duty in 0.01f64..0.99,
    ) {
        let stimuli = [
            Stimulus::Constant { level: amp },
            Stimulus::sine(amp, freq),
            Stimulus::Step { before: -amp, after: amp, at: period },
            Stimulus::Ramp { from: -amp, to: amp, duration: period },
            Stimulus::Pulse { low: -amp, high: amp, period, duty },
        ];
        for s in stimuli {
            prop_assert!(s.at(t).is_finite(), "{s:?} at {t}");
        }
    }

    /// Lexing arbitrary input never panics.
    #[test]
    fn lexer_is_total(src in ".{0,200}") {
        let _ = vase::frontend::lexer::lex(&src);
    }

    /// Parsing arbitrary token soup never panics.
    #[test]
    fn parser_is_total(src in "[a-z0-9+*/()=<>;:., ']{0,120}") {
        let _ = vase::frontend::parse_design_file(&src);
        let _ = parse_expression(&src);
    }
}
