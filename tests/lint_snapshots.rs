//! Golden lint snapshots: run `vase lint` over every VASS file the
//! repository ships — the example specifications in `crates/core/specs`
//! and the fixtures in `examples/lint` (including the deliberately
//! invalid `bad_*` ones) — and compare the full rendered listing
//! (codes, spans, messages, notes) against checked-in snapshots in
//! `tests/snapshots/lint`.
//!
//! Regenerate after an intentional diagnostics change with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p vase --test lint_snapshots
//! ```

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

/// Every `.vhd` file under the two shipped directories, sorted for a
/// deterministic run order.
fn vhd_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut out = Vec::new();
    for dir in ["crates/core/specs", "examples/lint"] {
        for entry in fs::read_dir(root.join(dir)).expect(dir) {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "vhd") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// The full lint listing for one file, rendered against the bare file
/// name so snapshots are machine-independent.
fn listing(path: &Path) -> String {
    let source = fs::read_to_string(path).expect("fixture readable");
    let name = path.file_name().expect("file name").to_string_lossy();
    let diags = vase::lint_source(&source);
    vase::diag::render_all(&diags, &source, &name)
}

#[test]
fn lint_snapshots_match() {
    let snap_dir = repo_root().join("tests/snapshots/lint");
    let update = std::env::var_os("UPDATE_SNAPSHOTS").is_some();
    if update {
        fs::create_dir_all(&snap_dir).expect("snapshot dir");
    }
    let files = vhd_files();
    assert!(
        files.len() >= 16,
        "expected the 11 specs plus the lint fixtures, found {}",
        files.len()
    );
    let mut failures = Vec::new();
    for file in &files {
        let got = listing(file);
        let stem = file.file_stem().expect("stem").to_string_lossy();
        let snap = snap_dir.join(format!("{stem}.txt"));
        if update {
            fs::write(&snap, &got).expect("write snapshot");
            continue;
        }
        match fs::read_to_string(&snap) {
            Ok(want) if want == got => {}
            Ok(want) => failures.push(format!(
                "{stem}: listing changed\n--- expected\n{want}\n--- got\n{got}"
            )),
            Err(_) => failures.push(format!(
                "{stem}: missing snapshot {}; run with UPDATE_SNAPSHOTS=1",
                snap.display()
            )),
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn shipped_specs_lint_clean() {
    for file in vhd_files() {
        let in_specs = file.parent().is_some_and(|p| p.ends_with("specs"));
        let is_bad = file
            .file_name()
            .is_some_and(|n| n.to_string_lossy().starts_with("bad_"));
        if in_specs || !is_bad {
            assert_eq!(listing(&file), "", "{} should lint clean", file.display());
        }
    }
}

#[test]
fn bad_fixtures_all_report() {
    let mut bad = 0;
    for file in vhd_files() {
        if !file.file_name().is_some_and(|n| n.to_string_lossy().starts_with("bad_")) {
            continue;
        }
        bad += 1;
        let source = fs::read_to_string(&file).expect("fixture readable");
        let mut diags = vase::lint_source(&source);
        assert!(!diags.is_empty(), "{} should report", file.display());
        // Every bad fixture fails under --deny warnings.
        vase::diag::deny_warnings(&mut diags);
        assert!(vase::diag::has_errors(&diags), "{}", file.display());
    }
    assert!(bad >= 3, "need at least 3 invalid fixtures, found {bad}");
}
