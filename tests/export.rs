//! Export-format tests at the flow level: SPICE decks (the paper's §6
//! output format) and DOT visualizations for every benchmark.

use vase::flow::{compile_source, synthesize_source, FlowOptions};
use vase::library::to_spice;
use vase::vhif::{design_to_dot, fsm_to_dot, graph_to_dot};

#[test]
fn every_benchmark_exports_a_spice_deck() {
    for b in vase::benchmarks::all() {
        let designs = synthesize_source(b.source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let deck = to_spice(&designs[0].synthesis.netlist, b.name, 3e-3);
        assert!(deck.contains(".subckt opamp"), "{}: missing macromodel", b.name);
        assert!(deck.contains(".tran"), "{}: missing analysis", b.name);
        assert!(deck.trim_end().ends_with(".end"), "{}: missing .end", b.name);
        // One instance comment per component.
        for i in 0..designs[0].synthesis.netlist.components.len() {
            assert!(deck.contains(&format!("* c{i}:")), "{}: c{i} missing", b.name);
        }
        // Every output is tapped.
        for (name, _) in &designs[0].synthesis.netlist.outputs {
            assert!(deck.contains(&format!(" {name}")), "{}: output {name} untapped", b.name);
        }
    }
}

#[test]
fn receiver_deck_reflects_annotations() {
    let designs =
        synthesize_source(vase::benchmarks::RECEIVER.source, &FlowOptions::default())
            .expect("flow");
    let deck = to_spice(&designs[0].synthesis.netlist, "receiver", 3e-3);
    // The 1.5 V limit from the `limited` annotation appears in the
    // output-stage behavioral source.
    assert!(deck.contains("-1.5, 1.5"), "{deck}");
    // The detector threshold from the process appears as a schmitt model.
    assert!(deck.contains("schmitt(vt_low="), "{deck}");
}

#[test]
fn every_benchmark_exports_dot() {
    for b in vase::benchmarks::all() {
        let compiled = compile_source(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let (_, vhif, _) = &compiled[0];
        let dot = design_to_dot(vhif);
        assert!(dot.starts_with("digraph"), "{}", b.name);
        assert!(dot.trim_end().ends_with('}'), "{}", b.name);
        // Balanced braces (clusters included).
        let open = dot.matches('{').count();
        let close = dot.matches('}').count();
        assert_eq!(open, close, "{}: unbalanced DOT braces", b.name);
        for g in &vhif.graphs {
            let gd = graph_to_dot(g);
            assert!(gd.contains("rankdir=LR"));
        }
        for f in &vhif.fsms {
            let fd = fsm_to_dot(f);
            assert!(fd.contains("doublecircle"), "{}: start state unmarked", b.name);
        }
    }
}
