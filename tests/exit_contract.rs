//! E2e exit-code contract of the `vase` binary: `0` ok, `1` hard
//! failure, `3` degraded-but-usable — asserted over mixed CLI batches
//! (per-design JSON statuses included) and over a spawned `vase serve`
//! daemon round trip, warm cache and all.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use vase::diag::json::Json;

const VASE: &str = env!("CARGO_BIN_EXE_vase");

fn spec(name: &str) -> String {
    format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vase-exit-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Run `vase synth --format json` over the given inputs; return
/// (exit code, per-file statuses).
fn synth_json(args: &[&str]) -> (i32, Vec<String>) {
    let output = Command::new(VASE)
        .arg("synth")
        .args(["--format", "json"])
        .args(args)
        .output()
        .expect("vase synth runs");
    let stdout = String::from_utf8(output.stdout).expect("UTF-8 output");
    let reports = Json::parse(stdout.trim()).expect("synth JSON parses");
    let statuses = reports
        .as_arr()
        .expect("report array")
        .iter()
        .map(|r| r.get("status").and_then(Json::as_str).expect("status").to_owned())
        .collect();
    (output.status.code().expect("exit code"), statuses)
}

#[test]
fn clean_batch_exits_zero_with_all_ok() {
    let (code, statuses) = synth_json(&[&spec("receiver.vhd"), &spec("biquad.vhd")]);
    assert_eq!(code, 0);
    assert_eq!(statuses, ["ok", "ok"]);
}

#[test]
fn budget_exhausted_batch_degrades_to_exit_three() {
    // --max-nodes 1 cannot finish any branch-and-bound search, so the
    // second design keeps a best-so-far incumbent and the whole batch
    // reports degraded success.
    let (code, statuses) =
        synth_json(&[&spec("receiver.vhd"), &spec("funcgen.vhd"), "--max-nodes", "1"]);
    assert_eq!(code, 3, "degraded success must exit 3");
    assert!(statuses.iter().any(|s| s == "budget-exhausted"), "statuses: {statuses:?}");
    assert!(!statuses.iter().any(|s| s == "error" || s == "panicked"));
}

#[test]
fn a_hard_failure_anywhere_in_the_batch_exits_one() {
    let dir = scratch_dir("hard");
    let broken = dir.join("broken.vhd");
    std::fs::write(&broken, "entity broken is port(q: quantity").expect("write");
    let (code, statuses) = synth_json(&[
        &spec("receiver.vhd"),
        broken.to_str().expect("path"),
        &spec("biquad.vhd"),
        "--max-nodes",
        "1",
    ]);
    assert_eq!(code, 1, "a hard failure outranks degraded statuses");
    assert!(statuses.contains(&"error".to_owned()), "statuses: {statuses:?}");
    assert!(statuses.contains(&"ok".to_owned()) || statuses.contains(&"budget-exhausted".to_owned()));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawn `vase serve`, feed it request lines on stdin, and collect the
/// parsed response lines plus the daemon's exit code.
fn serve_round_trip(requests: &[String], cache: &std::path::Path) -> (i32, Vec<Json>) {
    let mut child = Command::new(VASE)
        .args(["serve", "--workers", "2", "--cache-file"])
        .arg(cache)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("vase serve spawns");
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for line in requests {
            writeln!(stdin, "{line}").expect("request written");
        }
    }
    let output = child.wait_with_output().expect("daemon exits");
    let responses = String::from_utf8(output.stdout)
        .expect("UTF-8 responses")
        .lines()
        .map(|l| Json::parse(l).expect("response line parses"))
        .collect();
    (output.status.code().expect("exit code"), responses)
}

#[test]
fn serve_round_trip_mixes_statuses_and_warms_the_cache() {
    let dir = scratch_dir("serve");
    let cache = dir.join("covers.bin");
    let broken = dir.join("broken.vhd");
    std::fs::write(&broken, "entity broken is port(q: quantity").expect("write");
    let requests = vec![
        r#"{"id": 1, "op": "ping"}"#.to_owned(),
        format!(r#"{{"id": 2, "op": "synth", "path": "{}"}}"#, spec("receiver.vhd")),
        format!(r#"{{"id": 3, "op": "synth", "path": "{}"}}"#, broken.display()),
        "not even json".to_owned(),
        r#"{"id": 5, "op": "shutdown"}"#.to_owned(),
    ];

    let (code, responses) = serve_round_trip(&requests, &cache);
    assert_eq!(code, 0, "a clean shutdown exits 0 whatever the per-request outcomes");
    assert_eq!(responses.len(), 5);
    let status_of = |id: i128| {
        responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_int) == Some(id))
            .map(|r| r.get("status").and_then(Json::as_str).expect("status").to_owned())
    };
    assert_eq!(status_of(1).as_deref(), Some("ok"));
    assert_eq!(status_of(2).as_deref(), Some("ok"));
    assert_eq!(status_of(3).as_deref(), Some("error"));
    assert_eq!(status_of(5).as_deref(), Some("ok"));
    assert!(
        responses.iter().any(|r| r.get("status").and_then(Json::as_str) == Some("malformed")),
        "the garbage line answers malformed"
    );
    // Per-request exit codes follow the CLI contract.
    for r in &responses {
        let status = r.get("status").and_then(Json::as_str).expect("status");
        let exit = r.get("exit").and_then(Json::as_int).expect("exit");
        let expected = match status {
            "ok" => 0,
            "budget-exhausted" | "deadline-exceeded" | "overloaded" => 3,
            _ => 1,
        };
        assert_eq!(exit, expected, "status {status}");
    }
    assert!(cache.exists(), "shutdown snapshot persisted the warm cache");

    // Restart the daemon over the persisted cache: the same design
    // must now hit warm covers and say so with A211.
    let requests = vec![
        format!(r#"{{"id": 1, "op": "synth", "path": "{}"}}"#, spec("receiver.vhd")),
        r#"{"id": 2, "op": "shutdown"}"#.to_owned(),
    ];
    let (code, responses) = serve_round_trip(&requests, &cache);
    assert_eq!(code, 0);
    let diags = responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_int) == Some(1))
        .and_then(|r| r.get("diagnostics"))
        .and_then(Json::as_arr)
        .expect("diagnostics");
    assert!(
        diags.iter().any(|d| d.get("code").and_then(Json::as_str) == Some("A211")),
        "warm-cache serve round trip must report A211 hits"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_deadline_and_timings_ride_the_wire() {
    let dir = scratch_dir("deadline");
    let requests = vec![
        format!(
            r#"{{"id": 1, "op": "synth", "path": "{}", "deadline_ms": 120000}}"#,
            spec("receiver.vhd")
        ),
        r#"{"id": 2, "op": "shutdown"}"#.to_owned(),
    ];
    let (code, responses) = serve_round_trip(&requests, &dir.join("covers.bin"));
    assert_eq!(code, 0);
    let r = responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_int) == Some(1))
        .expect("synth response");
    assert_eq!(r.get("status").and_then(Json::as_str), Some("ok"));
    let timings = r.get("timings").expect("timings");
    for phase in ["parse_ms", "opt_ms", "verify_ms", "synth_ms", "sim_ms", "total_ms"] {
        assert!(timings.get(phase).and_then(Json::as_f64).is_some(), "missing {phase}");
    }
    assert!(r.get("elapsed_ms").and_then(Json::as_f64).expect("elapsed") > 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}
