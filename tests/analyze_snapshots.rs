//! Golden `vase analyze` snapshots: run the fixed-point range analysis
//! over every VASS file the repository ships — the example
//! specifications in `crates/core/specs` and the fixtures in
//! `examples/lint` that compile — and compare the full rendered
//! analysis listing (convergence, per-block bounds, verdicts) against
//! checked-in snapshots in `tests/snapshots/analyze`.
//!
//! Regenerate after an intentional analysis change with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p vase --test analyze_snapshots
//! ```

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

/// Every `.vhd` file under the two shipped directories, sorted for a
/// deterministic run order.
fn vhd_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut out = Vec::new();
    for dir in ["crates/core/specs", "examples/lint"] {
        for entry in fs::read_dir(root.join(dir)).expect(dir) {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "vhd") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// The rendered analysis for one file; files that do not reach the
/// compiler (the parse/sema `bad_*` fixtures) render as an error line
/// so they still have a stable snapshot.
fn listing(path: &Path) -> String {
    let source = fs::read_to_string(path).expect("fixture readable");
    match vase::analyze_source(&source) {
        Ok(analyses) => vase::analysis::render_analysis_text(&analyses),
        Err(e) => format!("error: {e}\n"),
    }
}

#[test]
fn analyze_snapshots_match() {
    let snap_dir = repo_root().join("tests/snapshots/analyze");
    let update = std::env::var_os("UPDATE_SNAPSHOTS").is_some();
    if update {
        fs::create_dir_all(&snap_dir).expect("snapshot dir");
    }
    let files = vhd_files();
    assert!(
        files.len() >= 16,
        "expected the 11 specs plus the lint fixtures, found {}",
        files.len()
    );
    let mut failures = Vec::new();
    for file in &files {
        let got = listing(file);
        let stem = file.file_stem().expect("stem").to_string_lossy();
        let snap = snap_dir.join(format!("{stem}.txt"));
        if update {
            fs::write(&snap, &got).expect("write snapshot");
            continue;
        }
        match fs::read_to_string(&snap) {
            Ok(want) if want == got => {}
            Ok(want) => failures.push(format!(
                "{stem}: analysis changed\n--- expected\n{want}\n--- got\n{got}"
            )),
            Err(_) => failures.push(format!(
                "{stem}: missing snapshot {}; run with UPDATE_SNAPSHOTS=1",
                snap.display()
            )),
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn shipped_specs_analyze_clean_and_converged() {
    for file in vhd_files() {
        let in_specs = file.parent().is_some_and(|p| p.ends_with("specs"));
        if !in_specs {
            continue;
        }
        let source = fs::read_to_string(&file).expect("spec readable");
        let analyses = vase::analyze_source(&source)
            .unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        for a in &analyses {
            assert!(a.result.converged, "{} did not converge", file.display());
            assert!(
                a.result.diagnostics.is_empty(),
                "{} should analyze clean: {:#?}",
                file.display(),
                a.result.diagnostics
            );
            // The fixed point must actually prove something on every
            // shipped spec — no silent skip path remains.
            let proven: usize =
                a.result.bounds.iter().map(|b| b.proven_count()).sum();
            assert!(proven > 0, "{}: no bounds proven", file.display());
        }
    }
}
