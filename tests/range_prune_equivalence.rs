//! Equivalence gate for the range-analysis → mapper feedback path.
//!
//! The fixed-point range analysis attaches proven per-block bounds to
//! every verified design (`VhifDesign::bounds`); the mapper consumes
//! them only when `MapperConfig::range_prune` is on. This suite proves
//! the contract over the full 11-spec corpus:
//!
//! * **Off (the default) is bit-identical**: a flow run that attaches
//!   bounds but leaves pruning off produces byte-for-byte the same
//!   netlist and estimate as a run that never attaches bounds at all —
//!   the feature cannot perturb existing results.
//! * **On is safe**: with pruning enabled every spec still synthesizes
//!   a structurally valid netlist.
//! * **Cache keys separate**: a shared cover cache warmed by a
//!   pruning-on run never serves its entries to a pruning-off run.

use vase::flow::{synthesize_source, synthesize_source_with_cache, FlowOptions};
use vase_archgen::CoverCache;

/// Debug formatting round-trips f64 bit patterns (shortest-roundtrip
/// printing, `-0.0` included), so string equality here is bit identity
/// for every float in the netlist and estimate.
fn fingerprint(designs: &[vase::flow::SynthesizedDesign]) -> String {
    designs
        .iter()
        .map(|d| {
            format!("{}\n{:?}\n{:?}\n", d.entity, d.synthesis.netlist, d.synthesis.estimate)
        })
        .collect()
}

#[test]
fn pruning_off_is_bit_identical_with_or_without_bounds() {
    for (name, _entity, source) in vase::benchmarks::corpus() {
        // verify: true runs the range analysis and attaches bounds.
        let with_bounds = synthesize_source(source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{name}: flow with bounds failed: {e}"));
        // verify: false never attaches bounds; the mapper sees none.
        let options = FlowOptions { verify: false, ..FlowOptions::default() };
        let without_bounds = synthesize_source(source, &options)
            .unwrap_or_else(|e| panic!("{name}: flow without bounds failed: {e}"));
        assert_eq!(
            fingerprint(&with_bounds),
            fingerprint(&without_bounds),
            "{name}: attaching bounds with range_prune off changed the mapping"
        );
        for d in &with_bounds {
            assert_eq!(
                d.synthesis.stats.range_pruned, 0,
                "{name}/{}: pruned with range_prune off",
                d.entity
            );
        }
    }
}

#[test]
fn pruning_on_synthesizes_every_spec() {
    let mut options = FlowOptions::default();
    options.mapper.range_prune = true;
    for (name, _entity, source) in vase::benchmarks::corpus() {
        let designs = synthesize_source(source, &options)
            .unwrap_or_else(|e| panic!("{name}: flow with range_prune failed: {e}"));
        assert!(!designs.is_empty(), "{name}: no designs");
        for d in &designs {
            d.synthesis
                .netlist
                .validate()
                .unwrap_or_else(|e| panic!("{name}/{}: invalid netlist: {e}", d.entity));
            assert!(
                d.synthesis.estimate.area_m2.is_finite() && d.synthesis.estimate.area_m2 > 0.0,
                "{name}/{}: degenerate area",
                d.entity
            );
        }
    }
}

#[test]
fn shared_cache_keeps_pruned_and_unpruned_runs_apart() {
    let cache = CoverCache::new();
    let mut pruned = FlowOptions::default();
    pruned.mapper.range_prune = true;
    let source = vase::benchmarks::RECEIVER.source;
    // Warm the shared cache with a pruning-on run first …
    let _ = synthesize_source_with_cache(source, &pruned, Some(&cache))
        .expect("pruned run succeeds");
    // … then a pruning-off run through the same cache must match a
    // cache-free run exactly: its keys never collide with the warmed
    // entries.
    let through_cache =
        synthesize_source_with_cache(source, &FlowOptions::default(), Some(&cache))
            .expect("cached run succeeds");
    let fresh = synthesize_source(source, &FlowOptions::default()).expect("fresh run succeeds");
    assert_eq!(fingerprint(&through_cache), fingerprint(&fresh));
}
