//! Cross-level simulation tests: the behavioral (VHIF) simulation and
//! the macromodel (netlist) simulation of the same specification must
//! agree on the qualitative behavior — the validation the paper did by
//! simulating the synthesized SPICE netlist (Section 6, Fig. 8).

use std::collections::BTreeMap;

use vase::flow::{synthesize_source, FlowOptions};
use vase::sim::{simulate_design, simulate_netlist, SimConfig, Stimulus};

fn stimuli(entries: &[(&str, Stimulus)]) -> BTreeMap<String, Stimulus> {
    entries.iter().map(|(n, s)| (n.to_string(), *s)).collect()
}

#[test]
fn receiver_fig8_clipping_at_both_levels() {
    // Paper Fig. 8: a deliberately high-amplitude input shows the
    // output stage clipping earph at 1.5 V.
    let designs =
        synthesize_source(vase::benchmarks::RECEIVER.source, &FlowOptions::default())
            .expect("flow");
    let d = &designs[0];
    let input = stimuli(&[
        ("line", Stimulus::sine(0.8, 1_000.0)),
        ("local", Stimulus::sine(0.2, 1_000.0)),
    ]);
    let result = simulate_netlist(
        &d.synthesis.netlist,
        &input,
        &d.synthesis.control_bindings,
        &SimConfig::new(1e-6, 3e-3),
    )
    .expect("simulates");
    let (lo, hi) = result.range("earph").expect("earph");
    assert!((hi - 1.5).abs() < 1e-9, "positive clip at 1.5, got {hi}");
    assert!((lo + 1.5).abs() < 1e-9, "negative clip at -1.5, got {lo}");
    assert!(result.fraction_at_level("earph", 1.5, 1e-6) > 0.05);
    assert!(result.fraction_at_level("earph", -1.5, 1e-6) > 0.05);
}

#[test]
fn receiver_behavioral_and_netlist_sims_agree() {
    let designs =
        synthesize_source(vase::benchmarks::RECEIVER.source, &FlowOptions::default())
            .expect("flow");
    let d = &designs[0];
    // Small signal (no clipping anywhere): both levels must track the
    // same waveform.
    let input = stimuli(&[
        ("line", Stimulus::sine(0.05, 1_000.0)),
        ("local", Stimulus::Constant { level: 0.0 }),
    ]);
    let config = SimConfig::new(1e-6, 2e-3);
    let behavioral = simulate_design(&d.vhif, &input, &config).expect("behavioral");
    let netlist = simulate_netlist(
        &d.synthesis.netlist,
        &input,
        &d.synthesis.control_bindings,
        &config,
    )
    .expect("netlist");
    let b = behavioral.trace("earph").expect("behavioral earph");
    let n = netlist.trace("earph").expect("netlist earph");
    // Compare after a settle prefix; tolerate the detectors' hysteresis
    // differences around the switching instants.
    let mut max_err: f64 = 0.0;
    let mut errs = Vec::new();
    for i in 100..b.len().min(n.len()) {
        errs.push((b[i] - n[i]).abs());
        max_err = max_err.max((b[i] - n[i]).abs());
    }
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p95 = errs[(errs.len() as f64 * 0.95) as usize];
    assert!(p95 < 0.05, "95th-percentile level mismatch {p95} (max {max_err})");
}

#[test]
fn function_generator_oscillates_at_both_levels() {
    let designs =
        synthesize_source(vase::benchmarks::FUNCTION_GENERATOR.source, &FlowOptions::default())
            .expect("flow");
    let d = &designs[0];
    let result = simulate_design(&d.vhif, &BTreeMap::new(), &SimConfig::new(1e-5, 8e-3))
        .expect("behavioral");
    let ramp = result.trace("ramp").expect("ramp");
    let (lo, hi) = result.range("ramp").expect("range");
    assert!(hi >= 1.0 && lo <= -1.0, "triangle must span the rails, got [{lo}, {hi}]");
    // Count direction changes: a 1 kHz-ish triangle over 8 ms turns
    // several times.
    let mut turns = 0;
    let mut prev_up = ramp[1] > ramp[0];
    for w in ramp.windows(2).skip(1) {
        let up = w[1] > w[0];
        if up != prev_up && (w[1] - w[0]).abs() > 1e-9 {
            turns += 1;
            prev_up = up;
        }
    }
    assert!(turns >= 4, "expected sustained oscillation, saw {turns} turns");
}

#[test]
fn missile_solver_reaches_terminal_velocity() {
    // With constant thrust, velocity must settle where drag balances
    // thrust: exp(2 ln v)·k = thrust → v = sqrt(thrust/k).
    let designs =
        synthesize_source(vase::benchmarks::MISSILE.source, &FlowOptions::default())
            .expect("flow");
    let d = &designs[0];
    let thrust = 1.0;
    let k = 0.5;
    let input = stimuli(&[
        ("thrust", Stimulus::Constant { level: thrust }),
        ("dragk", Stimulus::Constant { level: k }),
    ]);
    let result = simulate_design(&d.vhif, &input, &SimConfig::new(1e-3, 20.0))
        .expect("behavioral");
    let vel = result.trace("vel").expect("vel");
    let expected = (thrust / k).sqrt();
    let settled = *vel.last().expect("samples");
    assert!(
        (settled - expected).abs() < 0.05,
        "terminal velocity {settled} vs analytic {expected}"
    );
    // Altitude grows monotonically once moving.
    let alt = result.trace("alt").expect("alt");
    assert!(alt.last().expect("samples") > &1.0);
}

#[test]
fn iterative_solver_settles_to_target() {
    // x''' + 2x'' + 2x' + x = target with unit DC gain: x settles to
    // the target level.
    let designs =
        synthesize_source(vase::benchmarks::ITERATIVE.source, &FlowOptions::default())
            .expect("flow");
    let d = &designs[0];
    let input = stimuli(&[("target", Stimulus::Constant { level: 0.5 })]);
    let result = simulate_design(&d.vhif, &input, &SimConfig::new(1e-3, 30.0))
        .expect("behavioral");
    let x = result.trace("xout").expect("xout");
    assert!(
        (x.last().expect("samples") - 0.5).abs() < 0.02,
        "settled to {}, expected 0.5",
        x.last().expect("samples")
    );
    // The done flag ends high (residual below tolerance).
    let done = result.trace("done").expect("done");
    assert_eq!(*done.last().expect("samples"), 1.0);
}

#[test]
fn power_meter_computes_product_and_samples() {
    let designs =
        synthesize_source(vase::benchmarks::POWER_METER.source, &FlowOptions::default())
            .expect("flow");
    let d = &designs[0];
    let input = stimuli(&[
        ("vsens", Stimulus::Constant { level: 1.0 }),
        ("isens", Stimulus::Constant { level: 0.25 }),
        ("clk", Stimulus::Pulse { low: 0.0, high: 0.5, period: 1e-3, duty: 0.5 }),
    ]);
    let result = simulate_design(&d.vhif, &input, &SimConfig::new(1e-5, 5e-3))
        .expect("behavioral");
    // pout = (0.5·1.0)·(2.0·0.25) = 0.25.
    let pout = result.trace("pout").expect("pout");
    assert!((pout.last().expect("samples") - 0.25).abs() < 1e-6);
    // The digital outputs carry the quantized conditioned values.
    let dv = result.trace("dv").expect("dv");
    assert!((dv.last().expect("samples") - 0.5).abs() < 0.02, "dv = {:?}", dv.last());
}

#[test]
fn quickstart_agc_switches_gain_modes() {
    // The example's AGC: gain 8 for small inputs, 0.5 above 0.9 V.
    let source = r#"
      entity agc is
        port (quantity vin  : in  real is voltage;
              quantity vout : out real is voltage limited at 1.5 v);
      end entity;
      architecture behavioral of agc is
        quantity gain : real;
        signal loud : bit;
        constant vth : real := 0.9;
      begin
        vout == gain * vin;
        if (loud = '1') use
          gain == 0.5;
        else
          gain == 8.0;
        end use;
        process (vin'above(vth)) is
        begin
          if (vin'above(vth) = true) then
            loud <= '1';
          else
            loud <= '0';
          end if;
        end process;
      end architecture;
    "#;
    let designs = synthesize_source(source, &FlowOptions::default()).expect("flow");
    let d = &designs[0];
    let input = stimuli(&[(
        "vin",
        Stimulus::Step { before: 0.1, after: 1.0, at: 5e-3 },
    )]);
    let result = simulate_netlist(
        &d.synthesis.netlist,
        &input,
        &d.synthesis.control_bindings,
        &SimConfig::new(1e-5, 1e-2),
    )
    .expect("simulates");
    let vout = result.trace("vout").expect("vout");
    // Before the step: 0.1 × 8 = 0.8. After: 1.0 × 0.5 = 0.5.
    let before = vout[vout.len() / 4];
    let after = *vout.last().expect("samples");
    assert!((before - 0.8).abs() < 0.05, "low-mode output {before}");
    assert!((after - 0.5).abs() < 0.05, "loud-mode output {after}");
}
