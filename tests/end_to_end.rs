//! End-to-end integration tests: every Table 1 benchmark through the
//! full parse → analyze → compile → map flow, with shape assertions
//! against the paper's reported results.

use vase::archgen::MapperConfig;
use vase::flow::{synthesize_source, FlowOptions};
use vase::library::ComponentKind;
use vase::{benchmarks, table1_row};

fn count(row: &vase::Table1Row, category: &str) -> usize {
    row.components
        .iter()
        .find(|(c, _)| c == category)
        .map(|(_, n)| *n)
        .unwrap_or(0)
}

#[test]
fn receiver_module_full_flow() {
    let row = table1_row(&benchmarks::RECEIVER, &FlowOptions::default()).expect("flow");
    // Paper: CT 4 / quantities 4 / ED 4 (signals: ours declares 1, the
    // paper's fuller source had 2).
    assert_eq!(row.vass.continuous_lines, 4);
    assert_eq!(row.vass.quantities, 4);
    assert_eq!(row.vass.event_driven_lines, 4);
    // Paper: 4 FSM states.
    assert_eq!(row.vhif.states, 4);
    // Paper: "2 amplif., 1 zero-cross det." (+ our explicit output stage).
    assert_eq!(count(&row, "amplif."), 2);
    assert_eq!(count(&row, "zero-cross det."), 1);
    assert_eq!(count(&row, "output stage"), 1);
}

#[test]
fn power_meter_full_flow() {
    let row = table1_row(&benchmarks::POWER_METER, &FlowOptions::default()).expect("flow");
    assert_eq!(row.vass.quantities, 6);
    // Paper: "2 zero-cross det., 2 S/H, 2 ADC" for the acquisition part.
    assert_eq!(count(&row, "zero-cross det."), 2);
    assert_eq!(count(&row, "S/H"), 2);
    assert_eq!(count(&row, "ADC"), 2);
    // Two FSMs, each start + one working state.
    assert_eq!(row.vhif.states, 4);
    assert_eq!(row.vhif.datapath_ops, 2);
}

#[test]
fn missile_solver_full_flow() {
    let row = table1_row(&benchmarks::MISSILE, &FlowOptions::default()).expect("flow");
    // Paper: "2 integ., 1 anti-log.amplif., 4 amplif., 1 log.amplif."
    assert_eq!(count(&row, "integ."), 2);
    assert_eq!(count(&row, "anti-log.amplif."), 1);
    assert!(count(&row, "log.amplif.") >= 1);
    // Purely continuous-time: no FSM at all.
    assert_eq!(row.vhif.states, 0);
    assert_eq!(row.vass.event_driven_lines, 0);
}

#[test]
fn iterative_solver_full_flow() {
    let row = table1_row(&benchmarks::ITERATIVE, &FlowOptions::default()).expect("flow");
    // Paper: "3 integ., 1 S/H, 1 diff. amplif."
    assert_eq!(count(&row, "integ."), 3);
    assert_eq!(count(&row, "S/H"), 1);
    assert_eq!(count(&row, "diff. amplif."), 1);
    assert_eq!(row.vass.signals, 2);
}

#[test]
fn function_generator_full_flow() {
    let row = table1_row(&benchmarks::FUNCTION_GENERATOR, &FlowOptions::default()).expect("flow");
    // Paper: "1 integ., 1 MUX, 1 Schmitt trigger" — exact match (plus
    // the two slope-reference levels the mux selects between).
    assert_eq!(count(&row, "integ."), 1);
    assert_eq!(count(&row, "MUX"), 1);
    assert_eq!(count(&row, "Schmitt trigger"), 1);
    assert_eq!(row.vass.quantities, 2);
    // Paper: 4 VHIF blocks.
    assert_eq!(row.vhif.blocks, 4);
}

#[test]
fn every_benchmark_netlist_is_valid_and_feasible() {
    for b in benchmarks::all() {
        let designs = synthesize_source(b.source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        for d in &designs {
            d.synthesis
                .netlist
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(d.synthesis.estimate.feasible(), "{} infeasible", b.name);
            for graph in &d.vhif.graphs {
                graph
                    .validate()
                    .unwrap_or_else(|e| panic!("{} graph: {e}", b.name));
            }
            for fsm in &d.vhif.fsms {
                fsm.validate()
                    .unwrap_or_else(|e| panic!("{} fsm: {e}", b.name));
            }
        }
    }
}

#[test]
fn bounding_rule_never_changes_the_optimum() {
    // The bounding rule is an admissible prune: with and without it the
    // same minimum-area netlist must be found, on every benchmark.
    for b in benchmarks::all() {
        let bounded = synthesize_source(b.source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        // The memoized no-bounding search keeps this tractable on the
        // larger benchmarks (the truly exhaustive search is exercised
        // on small graphs in vase-archgen's own tests).
        let exhaustive = synthesize_source(
            b.source,
            &FlowOptions {
                mapper: MapperConfig::exhaustive_memoized(),
                ..FlowOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            bounded[0].synthesis.netlist.opamp_count(),
            exhaustive[0].synthesis.netlist.opamp_count(),
            "{}",
            b.name
        );
        assert!(
            bounded[0].synthesis.stats.visited_nodes <= exhaustive[0].synthesis.stats.visited_nodes,
            "{}",
            b.name
        );
    }
}

#[test]
fn parallel_flow_matches_sequential_on_every_benchmark() {
    // The parallel mapper is a pure performance optimization: the full
    // flow must synthesize the same-size architecture on every Table 1
    // benchmark at any worker count.
    for b in benchmarks::all() {
        let sequential = synthesize_source(b.source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let parallel = synthesize_source(
            b.source,
            &FlowOptions {
                mapper: MapperConfig::parallel(),
                ..FlowOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            sequential[0].synthesis.netlist.opamp_count(),
            parallel[0].synthesis.netlist.opamp_count(),
            "{}",
            b.name
        );
        let seq_area = sequential[0].synthesis.estimate.area_m2;
        let par_area = parallel[0].synthesis.estimate.area_m2;
        assert!(
            (seq_area - par_area).abs() <= seq_area * 1e-9,
            "{}: {seq_area} vs {par_area}",
            b.name
        );
    }
}

#[test]
fn multi_block_patterns_reduce_opamps_everywhere() {
    for b in benchmarks::all() {
        let full = synthesize_source(b.source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mut mapper = MapperConfig::default();
        mapper.match_options.multi_block = false;
        mapper.match_options.transforms = false;
        let single = synthesize_source(
            b.source,
            &FlowOptions {
                mapper,
                ..FlowOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(
            full[0].synthesis.netlist.opamp_count() <= single[0].synthesis.netlist.opamp_count(),
            "{}: multi-block should never be worse",
            b.name
        );
    }
}

#[test]
fn receiver_output_stage_parameters_come_from_annotations() {
    let designs =
        synthesize_source(benchmarks::RECEIVER.source, &FlowOptions::default()).expect("flow");
    let stage = designs[0]
        .synthesis
        .netlist
        .components
        .iter()
        .find(|c| matches!(c.kind, ComponentKind::OutputStage { .. }))
        .expect("inferred output stage");
    match &stage.kind {
        ComponentKind::OutputStage {
            load_ohms,
            peak_volts,
            limit,
        } => {
            assert_eq!(*load_ohms, 270.0);
            assert!((peak_volts - 0.285).abs() < 1e-12);
            assert_eq!(*limit, Some(1.5));
        }
        _ => unreachable!(),
    }
}

#[test]
fn dae_alternatives_reported_for_simultaneous_statements() {
    let designs =
        synthesize_source(benchmarks::MISSILE.source, &FlowOptions::default()).expect("flow");
    // Every equation of the missile solver admits at least one solver;
    // several admit more than one rearrangement.
    let alts = &designs[0].dae_alternatives;
    assert_eq!(alts.len(), 6);
    assert!(alts.iter().any(|(_, n)| *n > 1), "{alts:?}");
}

#[test]
fn paper_vs_measured_table_renders() {
    static BENCHMARKS: [benchmarks::Benchmark; 5] = [
        benchmarks::RECEIVER,
        benchmarks::POWER_METER,
        benchmarks::MISSILE,
        benchmarks::ITERATIVE,
        benchmarks::FUNCTION_GENERATOR,
    ];
    let rows: Vec<(vase::Table1Row, Option<&benchmarks::Benchmark>)> = BENCHMARKS
        .iter()
        .map(|b| {
            let row = table1_row(b, &FlowOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            (row, Some(b))
        })
        .collect();
    let table = vase::format_table1(&rows);
    for b in &BENCHMARKS {
        assert!(table.contains(b.name), "missing {} in:\n{table}", b.name);
    }
    assert!(table.contains("(paper)"));
}

#[test]
fn gain_split_transformation_forced_by_bandwidth() {
    // The paper's functional transformation: "for improving bandwidth,
    // an op amp is replaced by a chain of two op amps with lower
    // gains". A gain-200 stage over a 100 kHz band needs more
    // gain-bandwidth than any library topology provides, so the only
    // feasible mapping splits the gain across a two-stage chain.
    let wide = "
        entity wide is
          port (quantity x : in real is voltage frequency 0.0 to 100.0 khz;
                quantity y : out real is voltage);
        end entity;
        architecture a of wide is begin y == 200.0 * x; end architecture;
    ";
    let designs = synthesize_source(wide, &FlowOptions::default()).expect("flow");
    let netlist = &designs[0].synthesis.netlist;
    assert!(
        netlist
            .components
            .iter()
            .any(|c| matches!(c.kind, ComponentKind::AmplifierChain { .. })),
        "expected the gain-split chain under wide-band constraints: {netlist}"
    );
    assert!(designs[0].synthesis.estimate.feasible());

    // At audio bandwidth the single amplifier is feasible and cheaper,
    // so the transformation is *not* applied.
    let narrow = "
        entity narrow is
          port (quantity x : in real is voltage frequency 0.0 to 3.4 khz;
                quantity y : out real is voltage);
        end entity;
        architecture a of narrow is begin y == 200.0 * x; end architecture;
    ";
    let designs = synthesize_source(narrow, &FlowOptions::default()).expect("flow");
    let netlist = &designs[0].synthesis.netlist;
    assert!(
        !netlist
            .components
            .iter()
            .any(|c| matches!(c.kind, ComponentKind::AmplifierChain { .. })),
        "no chain expected at audio bandwidth: {netlist}"
    );
    assert_eq!(netlist.opamp_count(), 1);
}

#[test]
fn full_eleven_example_corpus_synthesizes() {
    // Paper §3: "We successfully specified in VASS a set of 11
    // real-life examples [3]" — the whole corpus goes through the full
    // flow to valid, feasible netlists.
    let corpus = benchmarks::corpus();
    assert_eq!(corpus.len(), 11);
    for (name, entity, source) in corpus {
        let designs = synthesize_source(source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let d = designs
            .iter()
            .find(|d| d.entity == entity)
            .unwrap_or_else(|| panic!("{name}: entity {entity} not synthesized"));
        d.synthesis
            .netlist
            .validate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(d.synthesis.estimate.feasible(), "{name} infeasible");
        for graph in &d.vhif.graphs {
            graph
                .validate()
                .unwrap_or_else(|e| panic!("{name} graph: {e}"));
        }
    }
}
