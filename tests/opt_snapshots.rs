//! Golden VHIF snapshots of every shipped benchmark spec before and
//! after the optimization pipeline: the `-O0` dump is the compiler's
//! raw output, the `-O2` dump is the same design after the full pass
//! pipeline. Any change to lowering or to a pass that alters the
//! produced structure fails these tests.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p vase --test opt_snapshots
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use vase::vhif::{PassManager, VhifDesign};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

/// Compile one corpus entry to its VHIF design.
fn compile_entity(entity: &str, source: &str) -> VhifDesign {
    let designs = vase::compile_source(source)
        .unwrap_or_else(|e| panic!("{entity} fails to compile: {e}"));
    designs
        .into_iter()
        .find(|(e, _, _)| e == entity)
        .map(|(_, vhif, _)| vhif)
        .unwrap_or_else(|| panic!("{entity} not among compiled designs"))
}

/// The `-O2`-optimized form of a design.
fn optimize(mut vhif: VhifDesign) -> VhifDesign {
    PassManager::for_opt_level(2).run(&mut vhif);
    vhif
}

#[test]
fn vhif_snapshots_match_at_o0_and_o2() {
    let snap_dir = repo_root().join("tests/snapshots/opt");
    let update = std::env::var_os("UPDATE_SNAPSHOTS").is_some();
    if update {
        fs::create_dir_all(&snap_dir).expect("snapshot dir");
    }
    let mut failures = Vec::new();
    for (name, entity, source) in vase::benchmarks::corpus() {
        let raw = compile_entity(entity, source);
        let opt = optimize(raw.clone());
        for (suffix, design) in [("O0", &raw), ("O2", &opt)] {
            let got = design.to_string();
            let snap = snap_dir.join(format!("{entity}-{suffix}.txt"));
            if update {
                fs::write(&snap, &got).expect("write snapshot");
                continue;
            }
            match fs::read_to_string(&snap) {
                Ok(want) if want == got => {}
                Ok(want) => failures.push(format!(
                    "{name} ({entity}, -{suffix}): VHIF changed\n--- expected\n{want}\n--- got\n{got}"
                )),
                Err(_) => failures.push(format!(
                    "{name}: missing snapshot {}; run with UPDATE_SNAPSHOTS=1",
                    snap.display()
                )),
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Every pass is semantics-preserving as far as the verifier can tell:
/// the optimized design of every shipped spec still passes the VHIF
/// verifier with no errors, and optimization never grows a design.
#[test]
fn optimized_corpus_verifies_clean_and_never_grows() {
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    for (name, entity, source) in vase::benchmarks::corpus() {
        let design = vase::frontend::parse_design_file(source)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let analyzed =
            vase::frontend::analyze(&design).unwrap_or_else(|e| panic!("{name}: {e}"));
        let arch = analyzed.architecture_of(entity).expect("architecture");
        let ctx = vase::lint::verify_context(arch);

        let raw = compile_entity(entity, source);
        let opt = optimize(raw.clone());
        let diags = vase::vhif::verify::verify_design(&opt, &ctx);
        assert!(
            !vase::diag::has_errors(&diags),
            "{name}: optimized design fails the verifier: {diags:#?}"
        );

        let before: usize = raw.graphs.iter().map(|g| g.len()).sum();
        let after: usize = opt.graphs.iter().map(|g| g.len()).sum();
        assert!(after <= before, "{name}: optimization grew the design");
        total_before += before;
        total_after += after;
    }
    assert!(
        total_after < total_before,
        "expected a nonzero total block reduction across the corpus \
         ({total_before} -> {total_after})"
    );
}
