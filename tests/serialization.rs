//! Exchange-format tests: the textual formats downstream tools consume
//! (CSV traces, JSON bench reports) must stay well-formed and faithful
//! to the in-memory data.
//!
//! The original JSON round-trip suite (VHIF designs, netlists,
//! estimates through `serde_json`) is inactive in the offline build:
//! the workspace's `serde` resolves to a vendored marker-trait stand-in
//! (see `vendor/serde`), so reflective serialization is unavailable.
//! The `#[derive(Serialize, Deserialize)]` annotations remain on every
//! exchange type, and pointing the workspace dependency back at
//! crates.io restores the round-trip property without code changes.
//! What CAN be checked offline is checked here.

use std::collections::BTreeMap;

use vase::flow::{compile_source, synthesize_source, FlowOptions};
use vase::sim::{simulate_design, SimConfig};

/// CSV export: one header plus one row per sample, requested columns
/// in order, every cell a finite float that parses back.
#[test]
fn sim_results_export_faithful_csv() {
    let compiled = compile_source(vase::benchmarks::FUNCTION_GENERATOR.source).expect("flow");
    let (_, vhif, _) = &compiled[0];
    let result = simulate_design(vhif, &BTreeMap::new(), &SimConfig::new(1e-4, 2e-3))
        .expect("simulates");

    let csv = result.to_csv(&["ramp"]);
    let mut lines = csv.lines();
    let header = lines.next().expect("header row");
    assert_eq!(header, "time,ramp");
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), result.time.len(), "one row per sample");

    let trace = result.trace("ramp").expect("ramp trace exists");
    for (i, row) in rows.iter().enumerate() {
        let mut cells = row.split(',');
        let t: f64 = cells.next().expect("t cell").parse().expect("t parses");
        let v: f64 = cells.next().expect("value cell").parse().expect("value parses");
        assert!(cells.next().is_none(), "row {i} has extra cells");
        assert!(
            (t - result.time[i]).abs() <= 1e-12 * result.time[i].abs().max(1.0),
            "row {i}: time {t} vs {}",
            result.time[i]
        );
        assert!(
            (v - trace[i]).abs() <= 1e-9 * trace[i].abs().max(1.0),
            "row {i}: value {v} vs {}",
            trace[i]
        );
    }
}

/// Every benchmark's VHIF design survives compilation and stays
/// structurally equal across repeated compiles — the equality relation
/// the JSON round-trip property builds on.
#[test]
fn vhif_designs_are_stable_across_compiles() {
    for b in vase::benchmarks::all() {
        let first = compile_source(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let second = compile_source(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            first[0].1, second[0].1,
            "{}: VHIF differs across compiles",
            b.name
        );
    }
}

/// Synthesized netlists and estimates are structurally equal across
/// repeated syntheses and remain valid — again the substrate for the
/// (offline-gated) JSON round-trip.
#[test]
fn netlists_and_estimates_are_stable_across_syntheses() {
    for b in vase::benchmarks::all() {
        let a = synthesize_source(b.source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let c = synthesize_source(b.source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            a[0].synthesis.netlist, c[0].synthesis.netlist,
            "{}: netlist differs",
            b.name
        );
        assert_eq!(
            a[0].synthesis.estimate, c[0].synthesis.estimate,
            "{}: estimate differs",
            b.name
        );
        a[0].synthesis.netlist.validate().expect("valid netlist");
    }
}

/// The AST parse result is stable across repeated parses of the same
/// source — the equality relation the AST JSON round-trip builds on.
#[test]
fn ast_parse_is_stable() {
    let a = vase::frontend::parse_design_file(vase::benchmarks::RECEIVER.source)
        .expect("parses");
    let b = vase::frontend::parse_design_file(vase::benchmarks::RECEIVER.source)
        .expect("parses");
    assert_eq!(a, b);
}
