//! Serialization tests: VHIF designs, netlists, and simulation results
//! are data structures (C-SERDE) — they must round-trip through JSON
//! unchanged, so downstream tools can persist and exchange them.

use vase::flow::{compile_source, synthesize_source, FlowOptions};

#[test]
fn vhif_designs_roundtrip_through_json() {
    for b in vase::benchmarks::all() {
        let compiled = compile_source(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let (_, vhif, _) = &compiled[0];
        let json = serde_json::to_string(vhif).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let back: vase::vhif::VhifDesign =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(&back, vhif, "{} VHIF changed across JSON", b.name);
    }
}

#[test]
fn netlists_roundtrip_through_json() {
    for b in vase::benchmarks::all() {
        let designs = synthesize_source(b.source, &FlowOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let netlist = &designs[0].synthesis.netlist;
        let json = serde_json::to_string_pretty(netlist).expect("serializes");
        let back: vase::library::Netlist = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(&back, netlist, "{} netlist changed across JSON", b.name);
        back.validate().expect("still valid");
    }
}

#[test]
fn estimates_serialize_with_topology_bindings() {
    let designs = synthesize_source(vase::benchmarks::RECEIVER.source, &FlowOptions::default())
        .expect("flow");
    let estimate = &designs[0].synthesis.estimate;
    let json = serde_json::to_string(estimate).expect("serializes");
    assert!(json.contains("TwoStage") || json.contains("Ota"), "{json}");
    let back: vase::estimate::NetlistEstimate =
        serde_json::from_str(&json).expect("deserializes");
    assert_eq!(&back, estimate);
}

#[test]
fn sim_results_roundtrip_and_csv_agree() {
    use std::collections::BTreeMap;
    use vase::sim::{simulate_design, SimConfig};

    let compiled = compile_source(vase::benchmarks::FUNCTION_GENERATOR.source).expect("flow");
    let (_, vhif, _) = &compiled[0];
    let result = simulate_design(vhif, &BTreeMap::new(), &SimConfig::new(1e-4, 2e-3))
        .expect("simulates");
    let json = serde_json::to_string(&result).expect("serializes");
    let back: vase::sim::SimResult = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, result);

    // The CSV export carries the same sample count.
    let csv = result.to_csv(&["ramp"]);
    assert_eq!(csv.lines().count(), result.time.len() + 1);
}

#[test]
fn ast_serializes() {
    let design =
        vase::frontend::parse_design_file(vase::benchmarks::RECEIVER.source).expect("parses");
    let json = serde_json::to_string(&design).expect("serializes");
    let back: vase::frontend::ast::DesignFile =
        serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, design);
}
