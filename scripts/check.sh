#!/usr/bin/env bash
# Tier-1 gate for the VASE reproduction: build + tests must pass before
# any change lands. Formatting and lint gates run when their tools are
# usable offline (they need no network; skip gracefully if absent).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier 1: cargo build --release =="
cargo build --release

echo "== tier 1: cargo test -q =="
cargo test -q

echo "== tier 1: sim_bench --smoke =="
./target/release/sim_bench --smoke

echo "== tier 1: opt_bench --smoke =="
./target/release/opt_bench --smoke

echo "== tier 1: archgen_bench --smoke =="
./target/release/archgen_bench --smoke

echo "== tier 1: cover-cache round trip (vase synth --cache-file) =="
# Synthesize twice against the same cache file: the first run populates
# it, the second must be served from it (nonzero hit count reported).
cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"' EXIT
./target/release/vase synth crates/core/specs/funcgen.vhd \
    --cache-file "$cache_dir/covers.cache" >/dev/null
warm_out=$(./target/release/vase synth crates/core/specs/funcgen.vhd \
    --cache-file "$cache_dir/covers.cache")
if ! printf '%s\n' "$warm_out" | grep -Eq 'cover cache: [1-9][0-9]* hit\(s\)'; then
    echo "second --cache-file run reported no cover-cache hits:" >&2
    printf '%s\n' "$warm_out" >&2
    exit 1
fi

echo "== tier 1: opt equivalence suite =="
cargo test -q -p vase-sim --test opt_equivalence
cargo test -q -p vase --test opt_snapshots

echo "== tier 1: sim fault-injection suite =="
cargo test -q -p vase-sim --test fault_injection

echo "== tier 1: wide-simulation equivalence + no-alloc suites =="
cargo test -q -p vase-sim --test lane_equivalence
cargo test -q -p vase-sim --test no_alloc
cargo test -q -p vase --test lane_corpus

echo "== tier 1: Monte Carlo yield smoke (lane-batched) =="
# A small sample count exercises the whole batched MC path: netlist
# perturbation, lane batching, range scoring, and the yield report.
./target/release/vase sim crates/core/specs/funcgen.vhd \
    --input ramp=sine:0.5,1000 --monte-carlo 16 --tolerance 2 >/dev/null
# A poisoned lane must degrade (exit 3), not fail the batch.
set +e
./target/release/vase sim crates/core/specs/funcgen.vhd \
    --input ramp=sine:0.5,1000 --monte-carlo 16 --tolerance 2 \
    --inject-lane 0:50 >/dev/null
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "injected-lane Monte Carlo run exited $rc, expected 3 (degraded)" >&2
    exit 1
fi

echo "== tier 1: vase-fuzz --smoke =="
./target/release/vase-fuzz --smoke

echo "== tier 1: vase serve smoke over shipped specs =="
# One daemon, one synth request per shipped spec, then shutdown: every
# response must come back ok on a single long-lived process.
serve_req="$cache_dir/serve-requests.ndjson"
: > "$serve_req"
i=0
for f in crates/core/specs/*.vhd; do
    i=$((i + 1))
    printf '{"id": %d, "op": "synth", "path": "%s"}\n' "$i" "$f" >> "$serve_req"
done
printf '{"id": 0, "op": "shutdown"}\n' >> "$serve_req"
serve_out=$(./target/release/vase serve --workers 2 \
    --cache-file "$cache_dir/serve-covers.cache" < "$serve_req")
n_ok=$(printf '%s\n' "$serve_out" | grep -c '"status":"ok"')
if [ "$n_ok" -ne $((i + 1)) ]; then
    echo "serve smoke: expected $((i + 1)) ok responses, got $n_ok:" >&2
    printf '%s\n' "$serve_out" >&2
    exit 1
fi

echo "== tier 1: vase-fuzz --soak (fault-injected service) =="
# Two full passes (clean + injected panics/timeouts/malformed lines)
# asserting zero hangs, daemon deaths, or out-of-contract statuses.
./target/release/vase-fuzz --soak

echo "== tier 1: serve crash safety (kill -9 during snapshots) =="
# Flood a daemon that snapshots after every job, kill -9 it mid-run,
# and prove the write-temp-then-rename protocol left the cache either
# loadable or cleanly ignored — never a hard failure.
crash_cache="$cache_dir/crash-covers.cache"
./target/release/vase synth crates/core/specs/funcgen.vhd \
    --cache-file "$crash_cache" >/dev/null
crash_req="$cache_dir/crash-requests.ndjson"
: > "$crash_req"
for i in $(seq 1 4000); do
    printf '{"id": %d, "op": "synth", "path": "crates/core/specs/funcgen.vhd"}\n' "$i"
done > "$crash_req"
./target/release/vase serve --queue-depth 100000 --snapshot-every 1 \
    --cache-file "$crash_cache" < "$crash_req" >/dev/null 2>&1 &
serve_pid=$!
sleep 0.5
if ! kill -9 "$serve_pid" 2>/dev/null; then
    echo "serve drained 4000 requests before kill -9; crash gate was vacuous" >&2
    exit 1
fi
wait "$serve_pid" 2>/dev/null || true
if ! ./target/release/vase synth crates/core/specs/funcgen.vhd \
    --cache-file "$crash_cache" >/dev/null; then
    echo "cover cache unusable after kill -9 during snapshot" >&2
    exit 1
fi

echo "== tier 1: vase opt smoke over shipped specs =="
for f in crates/core/specs/*.vhd; do
    # Every spec must survive the full -O2 pipeline with clean stats.
    ./target/release/vase opt --print-stats "$f" >/dev/null
done

echo "== tier 1: vase analyze over shipped specs =="
for f in crates/core/specs/*.vhd; do
    # The range analysis must converge and prove no violation on any
    # shipped design (exit 0; proven violations exit nonzero).
    ./target/release/vase analyze "$f" >/dev/null
done

echo "== tier 1: analyze snapshot suite =="
cargo test -q -p vase --test analyze_snapshots

echo "== tier 1: range-prune equivalence gate =="
# Attaching proven bounds with range_prune off must stay bit-identical
# to the mapper's pre-analysis output; pruning on must stay valid.
cargo test -q -p vase --test range_prune_equivalence

echo "== tier 1: vase lint over shipped specs and fixtures =="
for f in crates/core/specs/*.vhd examples/lint/clean_*.vhd; do
    # Every shipped design must lint clean, warnings included.
    ./target/release/vase lint --deny warnings "$f" >/dev/null
done
for f in examples/lint/bad_*.vhd; do
    # Every deliberately-invalid fixture must be rejected.
    if ./target/release/vase lint --deny warnings "$f" >/dev/null 2>&1; then
        echo "lint accepted invalid fixture $f" >&2
        exit 1
    fi
done

# Advisory only: the seed predates a formatting gate and is not
# fmt-clean, so drift is reported without failing the check.
if cargo fmt --version >/dev/null 2>&1; then
    echo "== tier 2 (advisory): cargo fmt --check =="
    cargo fmt --all --check || echo "formatting drift (non-fatal)"
else
    echo "== tier 2: cargo fmt unavailable; skipped =="
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "== tier 2: cargo clippy -D warnings =="
    cargo clippy -p vase-diag --all-targets -- -D warnings
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== tier 2: cargo clippy unavailable; skipped =="
fi

echo "== all checks passed =="
