//! Offline stand-in for `serde`.
//!
//! See `vendor/serde_derive` for the rationale. `Serialize` and
//! `Deserialize` are marker traits satisfied by every type through
//! blanket impls, and the re-exported derive macros expand to nothing,
//! so `#[derive(Serialize, Deserialize)]` plus `#[serde(...)]` helper
//! attributes compile exactly as with the real crate. Nothing in-tree
//! serializes reflectively — JSON reports are written explicitly by the
//! bench binaries — so no data model is needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that the real serde could serialize.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that the real serde could deserialize.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker for types deserializable without borrowing, mirroring
/// `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}
