//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this repository cannot reach crates.io,
//! so the real serde machinery is replaced by a minimal vendored pair
//! (`vendor/serde`, `vendor/serde_derive`). Types across the workspace
//! keep their `#[derive(Serialize, Deserialize)]` and `#[serde(...)]`
//! annotations — they document the serialization contract and switch
//! back to the real implementation by flipping the workspace dependency
//! — but nothing in-tree performs reflective serialization (the bench
//! reports write JSON explicitly), so the derives here expand to
//! nothing and the traits are satisfied by blanket impls in `serde`.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helper
/// attributes) and expands to nothing; the blanket impl in the vendored
/// `serde` crate already covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
