//! Offline stand-in for `criterion`.
//!
//! The build environment for this repository cannot reach crates.io,
//! so the Criterion benches run against this minimal harness instead:
//! the same surface API (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `Bencher::iter`), a
//! plain mean-of-samples measurement, and text output. It has no
//! statistical analysis, HTML reports, or CLI filtering — swap the
//! workspace dependency back to the real crate for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for API compatibility.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_one(id, sample_size, measurement_time, &mut f);
        self
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement budget (advisory: this harness always runs
    /// exactly `sample_size` samples but caps none by time).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Record the per-iteration workload size (accepted, printed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let _ = t;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Benchmark a closure that receives a shared input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, _budget: Duration, f: &mut F) {
    // One untimed warm-up sample.
    let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
    f(&mut bencher);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples {
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        total += bencher.elapsed;
        iters += bencher.iters;
    }
    let per_iter = if iters == 0 { Duration::ZERO } else { total / iters as u32 };
    println!("bench {label:<48} {:>12.3} µs/iter ({iters} iters)", per_iter.as_secs_f64() * 1e6);
}

/// Times the closures a benchmark hands to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` once, timed. (The real criterion batches iterations; a
    /// single timed call per sample keeps this stand-in simple.)
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Conversion into a printable benchmark id (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Workload size per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.sample_size(3).throughput(Throughput::Elements(1)).bench_function(
            BenchmarkId::new("f", 1),
            |b| {
                b.iter(|| {
                    runs += 1;
                });
            },
        );
        group.finish();
        // 1 warm-up + 3 samples, one iter each.
        assert_eq!(runs, 4);
    }
}
